"""The :class:`Database` facade: the public entry point of the engine.

A Database owns the catalog, the per-table storages and the statement
cache, and exposes ``execute``/``query`` plus explicit transactions.
Connections are thin cursors over one database, mirroring the way the
ODBIS data layer hands JDBC-style connections to the services above it.
"""

from __future__ import annotations

import copy
import os
import pickle
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.executor import Executor, ResultSet
from repro.engine.locking import EXCLUSIVE, SHARED, ReadWriteLock
from repro.engine.parser import (
    CompoundSelect,
    DeleteStatement,
    ExplainStatement,
    InsertStatement,
    SelectStatement,
    TransactionStatement,
    UpdateStatement,
    parse_sql,
)
from repro.engine.schema import Catalog, TableSchema
from repro.engine.storage import TableStorage
from repro.engine.transactions import Transaction
from repro.engine.wal import (
    MAGIC,
    WriteAheadLog,
    _fsync_directory,
    committed_transactions,
    read_log,
)
from repro.errors import (
    CatalogError,
    EngineError,
    SnapshotError,
    TransactionError,
    WalError,
)


class Snapshot:
    """An immutable read view pinned at one WAL commit number.

    Opened by :meth:`Database.open_snapshot` (or implicitly per
    read-only statement), a snapshot sees exactly the row versions
    whose ``(created_cn, deleted_cn)`` lifetime covers its commit
    number — no lock is held while it is read, so writers appending
    new versions under the exclusive lock never block it and it never
    observes them.  Closing the snapshot (it is a context manager)
    unpins it, letting the version garbage collector reclaim the
    superseded versions it was holding alive.
    """

    def __init__(self, database: "Database", handle: int, cn: int):
        self._db = database
        self._handle = handle
        #: The commit number this snapshot is pinned at.
        self.cn = cn
        self._closed = False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Snapshot cn={self.cn} {state}>"

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._db._release_snapshot(self._handle)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class Database:
    """An embedded SQL database.

    Safe for concurrent use from many threads, with MVCC snapshot
    isolation on the read side: committed transactions stamp their row
    effects with the WAL's monotone commit number, and a read-only
    statement (SELECT/EXPLAIN, including ``EXPLAIN <dml>``) runs
    lock-free against a :class:`Snapshot` pinned at the current
    committed number — readers never block on writers.  Anything that
    may mutate takes the per-database lock's (now write-only)
    exclusive side; an explicit transaction holds it from BEGIN to
    COMMIT/ROLLBACK, and statements *inside* a transaction read the
    live uncommitted state under that hold.  Statements are parsed
    once and cached by SQL text.

    ``sanitize`` opts this database into the runtime concurrency
    sanitizer (``repro.analysis.concurrency``): the lock is swapped
    for a recording variant and storage access is checked against it.
    ``None`` (the default) defers to the ``REPRO_SANITIZE``
    environment variable, so whole test batteries can run sanitized
    without touching call sites.
    """

    def __init__(self, name: str = "main", compile: bool = True,
                 sanitize: Optional[bool] = None):
        self.name = name
        self.catalog = Catalog()
        self._storages: Dict[str, TableStorage] = {}  # guarded-by: _lock
        self.views: Dict[str, Any] = {}  # name -> SelectStatement
        self._executor = Executor(self)
        self._transaction: Optional[Transaction] = None  # guarded-by: _lock
        self._statement_cache: Dict[str, Any] = {}  # guarded-by: _state_lock
        # Compiled plans keyed by statement identity; each entry keeps a
        # strong reference to its statement so ids cannot be recycled.
        # ``compile=False`` is the ablation knob: plans are never used
        # and every SELECT runs through the interpreted executor.
        self._compile_enabled = bool(compile)
        self._plan_cache: Dict[int, Any] = {}  # guarded-by: _state_lock
        self.statistics = {"statements": 0, "rows_returned": 0}  # guarded-by: _state_lock
        if sanitize is None:
            sanitize = os.environ.get(
                "REPRO_SANITIZE", "").strip().lower() in (
                    "1", "true", "yes", "on")
        # Statement-level reader-writer lock plus a short mutex over
        # the statement/plan caches and the statistics counters.
        if sanitize:
            from repro.analysis.concurrency.sanitizer import (
                SanitizedReadWriteLock,
                StorageMonitor,
                default_sanitizer,
            )
            self._sanitizer = default_sanitizer()
            self._lock = SanitizedReadWriteLock(
                f"db:{name}", self._sanitizer)
            self._storage_monitor = StorageMonitor(
                self, self._sanitizer)
        else:
            self._sanitizer = None
            self._lock = ReadWriteLock()
            self._storage_monitor = None
        self._state_lock = threading.Lock()
        self._plan_generation = 0  # guarded-by: _state_lock
        # MVCC: the highest *published* commit number.  Writers stamp
        # their effects with committed + 1 (they are serialized by the
        # exclusive lock, so the number is known before commit) and
        # publish under _state_lock, atomically with the snapshot
        # registry below — so a snapshot can never open in the gap
        # between a commit and the GC horizon moving past it.
        self._committed_cn = 0  # guarded-by: _state_lock
        self._open_snapshots: Dict[int, int] = {}  # guarded-by: _state_lock
        self._snapshot_counter = 0  # guarded-by: _state_lock
        # Durability: a WriteAheadLog attached via attach_wal (or
        # recover) receives one commit record per transaction.  The
        # autocommit buffer collects redo ops of a single statement
        # outside any explicit transaction; _suppress_redo silences
        # recording while recovery replays the log into this database.
        self._wal: Optional[WriteAheadLog] = None
        self._snapshot_path: Optional[Path] = None
        self._autocommit_redo: List[Any] = []  # guarded-by: _lock
        self._suppress_redo = False
        self._checkpoints = 0
        # Highest WAL commit number already contained in the snapshot
        # this database was loaded from (0 = everything must replay).
        self._snapshot_wal_number = 0
        self.recovery_info: Optional[Dict[str, Any]] = None

    def __repr__(self) -> str:
        return f"<Database {self.name!r} tables={self.catalog.table_names()}>"

    # -- storage management ------------------------------------------------------

    def create_storage(self, schema: TableSchema) -> TableStorage:  # requires: _lock
        if schema.name.lower() in self.views:
            raise CatalogError(
                f"a view named {schema.name!r} already exists")
        self.catalog.add_table(schema)
        storage = TableStorage(schema)
        storage.attach_clock(self._stamp_cn)
        if self._storage_monitor is not None:
            storage.attach_monitor(self._storage_monitor)
        self._storages[schema.name.lower()] = storage
        self.record_undo(("create_table", schema.name))
        # Deep-copy the schema into the redo record: a later ALTER in
        # the same transaction mutates the live schema in place, and
        # replay must see the table as it was at CREATE time.
        self.record_redo(("create_table", copy.deepcopy(schema)))
        self.invalidate_plans()
        return storage

    def drop_storage(self, name: str, record: bool = True) -> None:  # requires: _lock
        self.catalog.drop_table(name)
        storage = self._storages.pop(name.lower())
        if record:
            self.record_undo(("drop_table", name, storage))
            self.record_redo(("drop_table", name))
        self.invalidate_plans()

    def attach_storage(self, storage: TableStorage) -> None:  # requires: _lock
        """Re-attach a previously dropped storage (transaction rollback)."""
        self.catalog.add_table(storage.schema)
        storage.attach_clock(self._stamp_cn)
        if self._storage_monitor is not None:
            storage.attach_monitor(self._storage_monitor)
        self._storages[storage.schema.name.lower()] = storage
        self.invalidate_plans()

    def storage(self, name: str) -> TableStorage:
        storage = self._storages.get(name.lower())
        if storage is None:
            raise CatalogError(f"no such table: {name!r}")
        return storage

    def table_names(self) -> List[str]:
        return self.catalog.table_names()

    def view_names(self) -> List[str]:
        return sorted(self.views)

    def row_count(self, table: str) -> int:
        return len(self.storage(table))

    # -- MVCC snapshots -----------------------------------------------------------

    def _stamp_cn(self) -> int:
        """The commit number the in-flight writer's effects commit as.

        Writers are serialized by the exclusive lock, so the next
        commit number is known before the commit happens; every effect
        of the current statement/transaction is stamped with it.
        """
        return self._committed_cn + 1

    def _publish_commit(self) -> None:  # requires: _lock
        """Make the just-committed effects visible to new snapshots."""
        with self._state_lock:
            self._committed_cn += 1

    @property
    def committed_cn(self) -> int:
        """The highest published commit number (new snapshots pin it)."""
        return self._committed_cn

    def open_snapshot(self) -> Snapshot:
        """Pin a read view at the current committed commit number.

        Lock-free with respect to writers; registration happens under
        the same mutex that publishes commits, so the garbage
        collector's horizon can never pass a snapshot mid-open.
        """
        with self._state_lock:
            self._snapshot_counter += 1
            handle = self._snapshot_counter
            cn = self._committed_cn
            self._open_snapshots[handle] = cn
        return Snapshot(self, handle, cn)

    def _release_snapshot(self, handle: int) -> None:
        with self._state_lock:
            self._open_snapshots.pop(handle, None)

    def open_snapshot_count(self) -> int:
        with self._state_lock:
            return len(self._open_snapshots)

    def version_horizon(self) -> int:
        """The oldest commit number any live (or future) snapshot may
        read at — versions dead at or before it are reclaimable."""
        with self._state_lock:
            if self._open_snapshots:
                return min(min(self._open_snapshots.values()),
                           self._committed_cn)
            return self._committed_cn

    def collect_versions(self) -> int:  # requires: _lock
        """Reclaim row versions older than the oldest live snapshot.

        Returns the number of versions collected.  Runs as part of
        :meth:`checkpoint` and :meth:`vacuum`.
        """
        horizon = self.version_horizon()
        reclaimed = 0
        for storage in list(self._storages.values()):
            reclaimed += storage.collect(horizon)
        return reclaimed

    def vacuum(self) -> int:
        """Run version garbage collection under the exclusive lock."""
        with self._lock.exclusive():
            if self.in_transaction:
                raise TransactionError(
                    "cannot vacuum during a transaction")
            return self.collect_versions()

    def version_count(self, table: str) -> int:
        """Retained versions for one table (GC observability)."""
        return self.storage(table).version_count()

    # -- statement execution ------------------------------------------------------

    def _parse(self, sql: str):
        with self._state_lock:
            statement = self._statement_cache.get(sql)
        if statement is None:
            # Parse outside the mutex (parsing is pure); on a race the
            # first inserted statement wins so every thread shares one
            # object — the plan cache is keyed by statement identity.
            parsed = parse_sql(sql)
            with self._state_lock:
                statement = self._statement_cache.setdefault(sql, parsed)
        return statement

    def _lock_mode(self, statement: Any) -> str:
        """Shared for reads, exclusive for anything that may mutate.

        Classification happens on the *outermost* statement class:
        ``EXPLAIN <anything>`` is read-only because it only renders a
        plan (or a typed error) — it never runs the wrapped DML, so it
        must not take (or wait for) the exclusive path.
        """
        if isinstance(statement, (SelectStatement, CompoundSelect,
                                  ExplainStatement)):
            return SHARED
        return EXCLUSIVE

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        """Run any statement.

        Returns a :class:`ResultSet` for SELECT (and EXPLAIN), the
        affected row count for DML, and 0 for DDL and transaction
        control.
        """
        statement = self._parse(sql)
        with self._state_lock:
            self.statistics["statements"] += 1
        if isinstance(statement, TransactionStatement):
            return self._execute_transaction(statement.action)
        if self._lock_mode(statement) == SHARED \
                and not self._lock.owned_exclusively():
            # MVCC read path: no lock at all.  The statement runs
            # against a snapshot pinned at the committed commit
            # number, so an in-flight writer (even a long open
            # transaction on another thread) never delays it.  A
            # thread that *is* inside its own transaction falls
            # through to the live path below and reads its own
            # uncommitted effects under the reentrant exclusive hold.
            with self.open_snapshot() as snapshot:
                if isinstance(statement, ExplainStatement):
                    result: Any = self._explain(statement.statement)
                else:
                    result = self._run_read(statement, tuple(params),
                                            snapshot)
        else:
            with self._lock.held(self._lock_mode(statement)):
                try:
                    if isinstance(statement, ExplainStatement):
                        result = self._explain(statement.statement)
                    else:
                        result = self._executor.execute(
                            statement, tuple(params))
                        if not isinstance(statement, (
                                SelectStatement, CompoundSelect,
                                InsertStatement, UpdateStatement,
                                DeleteStatement)):
                            # DDL (CREATE/DROP/ALTER, CTAS, views,
                            # indexes) may change schemas or indexes
                            # any cached plan relies on.
                            self.invalidate_plans()
                finally:
                    # Outside an explicit transaction every statement
                    # is its own commit: flush whatever redo it
                    # produced as one WAL commit record — and publish
                    # its commit number — before the lock is released,
                    # even on error, so the log and the snapshot
                    # visibility horizon mirror the in-memory effects
                    # of a partially applied statement.
                    self._flush_autocommit_redo()
        if isinstance(result, ResultSet):
            with self._state_lock:
                self.statistics["rows_returned"] += len(result)
        return result

    def _run_read(self, statement: Any, params: Sequence[Any],
                  snapshot: Snapshot) -> ResultSet:
        """Run a SELECT or UNION against a pinned snapshot."""
        if isinstance(statement, SelectStatement):
            return self._run_select(statement, params, snapshot)
        return self._executor.execute_compound(statement, params,
                                               snapshot)

    # -- compiled plans ----------------------------------------------------------

    def invalidate_plans(self) -> None:
        """Drop all compiled plans (called on any DDL)."""
        with self._state_lock:
            self._plan_generation += 1
            self._plan_cache.clear()

    def plan_for(self, statement: SelectStatement):
        """The cached ``(plan, reason)`` pair for one parsed SELECT.

        ``plan`` is None when the statement must run interpreted, in
        which case ``reason`` says why.
        """
        with self._state_lock:
            entry = self._plan_cache.get(id(statement))
            generation = self._plan_generation
        if entry is None:
            from repro.engine.planner import plan_select

            plan, reason = plan_select(self, statement)
            fresh = (statement, plan, reason)
            with self._state_lock:
                if self._plan_generation != generation:
                    # DDL invalidated the cache while we planned; the
                    # plan may reference dropped schema state, so hand
                    # it to the caller but do not cache it.
                    return plan, reason
                entry = self._plan_cache.setdefault(id(statement), fresh)
        return entry[1], entry[2]

    def _run_select(self, statement: SelectStatement,
                    params: Sequence[Any],
                    snapshot: Optional[Snapshot] = None) -> ResultSet:
        """Execute one SELECT: compiled when possible, else interpreted.

        ``snapshot`` pins every scan to one commit number; None means
        the live read path (inside a transaction, under the exclusive
        lock).  Compiled plans stay valid across concurrent DML — the
        snapshot is a per-execution argument, and the plan cache's
        invalidation generation only moves on DDL.
        """
        if self._compile_enabled:
            plan, _reason = self.plan_for(statement)
            if plan is not None:
                return plan.execute(params, snapshot)
        return self._executor.execute_select(statement, params, snapshot)

    def _explain(self, statement: Any) -> ResultSet:
        """Render the plan of a SELECT/UNION as a one-column result."""
        if isinstance(statement, SelectStatement):
            lines = self._plan_lines(statement)
        elif isinstance(statement, CompoundSelect):
            lines = []
            for position, part in enumerate(statement.parts):
                lines.append(f"union part {position + 1}:")
                lines.extend(
                    "  " + line for line in self._plan_lines(part))
        else:
            raise EngineError("EXPLAIN supports SELECT statements only")
        return ResultSet(["plan"], [(line,) for line in lines])

    def _plan_lines(self, statement: SelectStatement) -> List[str]:
        plan, reason = self.plan_for(statement)
        if plan is None:
            return [f"interpreted execution: {reason}"]
        return plan.explain_lines()

    def query(self, sql: str, params: Sequence[Any] = ()) \
            -> List[Dict[str, Any]]:
        """Run a SELECT and return its rows as dictionaries."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise EngineError("query() requires a SELECT statement")
        return result.to_dicts()

    def query_value(self, sql: str, params: Sequence[Any] = ()) -> Any:
        """Run a SELECT that yields exactly one value and return it."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise EngineError("query_value() requires a SELECT statement")
        return result.scalar()

    def executemany(self, sql: str,
                    param_rows: Sequence[Sequence[Any]]) -> int:
        """Run one parameterized DML statement for each parameter row.

        The batch is atomic: when no transaction is open, one is begun
        and committed around the rows, and rolled back on the first
        failure — a constraint violation on row N no longer leaves
        rows 1..N-1 applied.  Inside a caller's transaction the rows
        simply join it, so the caller keeps control of the boundary.
        """
        if self.in_transaction:
            return self._executemany_rows(sql, param_rows)
        with self.transaction():
            return self._executemany_rows(sql, param_rows)

    def _executemany_rows(self, sql: str,
                          param_rows: Sequence[Sequence[Any]]) -> int:
        total = 0
        for params in param_rows:
            result = self.execute(sql, params)
            if isinstance(result, int):
                total += result
        return total

    # -- transactions ----------------------------------------------------------------

    def _execute_transaction(self, action: str) -> int:
        if action == "BEGIN":
            self.begin()
        elif action == "COMMIT":
            self.commit()
        else:
            self.rollback()
        return 0

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None and self._transaction.active

    def begin(self) -> None:
        # The transaction scope holds the exclusive lock from BEGIN to
        # COMMIT/ROLLBACK so no other thread can observe (or disturb)
        # uncommitted state; statements inside the scope re-acquire it
        # reentrantly.
        self._lock.acquire_write()
        started = False
        try:
            if self.in_transaction:
                raise TransactionError("transaction already in progress")
            self._transaction = Transaction()
            started = True
        finally:
            if not started:
                self._lock.release_write()

    def commit(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        try:
            redo = self._transaction.take_redo()
            self._transaction.commit()
            self._transaction = None
            if redo:
                if self._wal is not None:
                    # One atomic commit record for the whole scope,
                    # while the exclusive lock still serializes the
                    # log; the commit number published below is the
                    # one the WAL just assigned.
                    self._wal.commit(redo)
                self._publish_commit()
        finally:
            self._lock.release_write()

    def rollback(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        try:
            self._transaction.rollback(self)
            self._transaction = None
        finally:
            self._lock.release_write()

    def record_undo(self, entry) -> None:
        if self.in_transaction:
            self._transaction.record(entry)

    def record_redo(self, entry) -> None:  # requires: _lock
        """Queue the forward image of one mutation for the WAL.

        Recorded even without a WAL attached: a non-empty redo list is
        also how commit publication knows the statement/transaction
        had effects and must advance the MVCC commit number.
        """
        if self._suppress_redo:
            return
        if self.in_transaction:
            self._transaction.record_redo(entry)
        else:
            self._autocommit_redo.append(entry)

    def _flush_autocommit_redo(self) -> None:
        if self.in_transaction:
            return
        if not self._autocommit_redo:
            return
        ops, self._autocommit_redo = self._autocommit_redo, []
        self._lock.require_exclusive("WAL commit")
        if self._wal is not None:
            self._wal.commit(ops)
        self._publish_commit()

    def transaction(self) -> "_TransactionScope":
        """Context manager: commit on success, roll back on exception."""
        return _TransactionScope(self)

    # -- persistence ------------------------------------------------------------------

    def save(self, path: Union[str, Path], faults=None) -> None:
        """Snapshot the whole database to ``path``, atomically.

        The payload is written to a sibling temp file and then
        renamed over the target, so a crash (or an injected fault at
        the ``storage.write`` site) mid-write can never leave a torn
        snapshot behind: either the old snapshot survives intact or
        the new one is complete.  ``faults`` is an optional
        :class:`~repro.core.resilience.FaultInjector` (duck-typed);
        when its ``storage.write`` rule fires, the write is torn
        half-way through the temp file to simulate a crashed writer,
        and the temp file is discarded.
        """
        if self.in_transaction:
            raise TransactionError("cannot snapshot during a transaction")
        with self._lock.shared():
            payload = {
                "name": self.name,
                # With a WAL attached the snapshot records how much of
                # the log it already contains, so recovery replays only
                # commits numbered beyond it — even when the crash hit
                # between a checkpoint's snapshot and its log reset.
                "wal_commit_number": (
                    self._wal.last_number if self._wal is not None
                    else self._snapshot_wal_number),
                "compile": self._compile_enabled,
                "statistics": dict(self.statistics),
                "views": dict(self.views),
                "tables": [
                    {
                        "schema": storage.schema,
                        "rows": dict(storage.rows),
                        "next_rowid": storage._next_rowid,
                        "indexes": [
                            (index.name, index.column_names, index.unique)
                            for index in storage.indexes.values()
                        ],
                    }
                    for storage in self._storages.values()
                ],
            }
        data = pickle.dumps(payload)
        target = Path(path)
        scratch = target.with_name(target.name + ".tmp")
        try:
            with open(scratch, "wb") as handle:
                if faults is not None:
                    try:
                        faults.fire("storage.write")
                    except BaseException:
                        # Simulate the torn write the rename protects
                        # against: half the bytes land, then the
                        # writer dies.
                        handle.write(data[: len(data) // 2])
                        raise
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(scratch, target)
            # The rename lives in the directory inode; without this
            # (best-effort) fsync a power cut could forget the swap
            # even though the data blocks were synced above.
            _fsync_directory(target.parent)
        except BaseException:
            scratch.unlink(missing_ok=True)
            raise

    @classmethod
    def load(cls, path: Union[str, Path], faults=None) -> "Database":
        """Restore a database from a snapshot produced by :meth:`save`.

        Constructor state survives the round trip: the ``compile``
        flag and the statistics counters are restored rather than
        reset to defaults, and every view is revalidated against the
        restored catalog so a snapshot whose views no longer resolve
        fails here, not on first use.  A truncated or corrupt snapshot
        raises :class:`~repro.errors.SnapshotError` instead of a raw
        pickle error.
        """
        if faults is not None:
            faults.fire("storage.read")
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                IndexError) as exc:
            raise SnapshotError(
                f"snapshot {str(path)!r} is truncated or corrupt: "
                f"{exc}") from exc
        if not isinstance(payload, dict) or "name" not in payload \
                or "tables" not in payload:
            raise SnapshotError(
                f"snapshot {str(path)!r} has no database payload")
        database = cls(payload["name"],
                       compile=payload.get("compile", True))
        base_cn = payload.get("wal_commit_number") or 0
        for entry in payload["tables"]:
            schema: TableSchema = entry["schema"]
            database.catalog.add_table(schema)
            storage = TableStorage(schema)
            storage.indexes.clear()
            storage.rows = dict(entry["rows"])
            storage._next_rowid = entry["next_rowid"]
            for index_name, column_names, unique in entry["indexes"]:
                storage.add_index(index_name, column_names, unique=unique)
            # Migration on load: the flat seed format persists only
            # live rows, so every row becomes the base version created
            # at the snapshot's WAL commit number.
            storage.seed_versions(base_cn)
            storage.attach_clock(database._stamp_cn)
            database._storages[schema.name.lower()] = storage
        database._committed_cn = base_cn
        if database._storage_monitor is not None:
            # Attach only after rows and indexes are rebuilt: the
            # restore loop runs before the database is shared, so its
            # raw writes are not lock-contract violations.
            for storage in database._storages.values():
                storage.attach_monitor(database._storage_monitor)
        database.views.update(payload.get("views", {}))
        for select in database.views.values():
            database._executor.execute_select(select, ())
        database.statistics.update(payload.get("statistics", {}))
        database._snapshot_wal_number = \
            payload.get("wal_commit_number") or 0
        return database

    # -- write-ahead logging / crash recovery -------------------------------------

    def attach_wal(self, wal: WriteAheadLog,
                   snapshot_path: Optional[Union[str, Path]] = None) -> None:
        """Start logging every committed mutation to ``wal``.

        ``snapshot_path`` is where :meth:`checkpoint` writes the
        snapshot that lets the log be truncated.
        """
        self._wal = wal
        # Keep the MVCC clock in lockstep with the WAL numbering: new
        # effects are stamped committed + 1, which from here on is
        # exactly the number the WAL assigns their commit record.
        with self._state_lock:
            if wal.last_number > self._committed_cn:
                self._committed_cn = wal.last_number
        if snapshot_path is not None:
            self._snapshot_path = Path(snapshot_path)

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        return self._wal

    @property
    def sanitizer(self):
        """The attached runtime concurrency sanitizer (or None)."""
        return self._sanitizer

    @property
    def wal_lag(self) -> Optional[int]:
        """Committed transactions in the log since the last checkpoint
        (``None`` when no WAL is attached)."""
        return None if self._wal is None else self._wal.commits

    @property
    def last_checkpoint(self) -> Optional[int]:
        """Ordinal of the last checkpoint taken (``None`` if never)."""
        return self._checkpoints or None

    def checkpoint(self, path: Optional[Union[str, Path]] = None) -> int:
        """Snapshot atomically, then truncate the WAL.

        Returns the checkpoint ordinal.  Runs under the exclusive
        lock so the snapshot and the log reset observe the same
        state.  Crashing between the two is safe: the snapshot
        records the WAL commit number it contains, so recovery skips
        the logged transactions the snapshot already holds instead of
        double-applying them.
        """
        if self._wal is None:
            raise WalError("no write-ahead log attached")
        target = Path(path) if path is not None else self._snapshot_path
        if target is None:
            raise WalError(
                "checkpoint needs a snapshot path (attach_wal or "
                "checkpoint(path=...))")
        with self._lock.exclusive():
            if self.in_transaction:
                raise TransactionError(
                    "cannot checkpoint during a transaction")
            self.save(target)
            self._snapshot_path = target
            self._wal.reset()
            self._checkpoints += 1
            # Checkpoint doubles as the version garbage collector:
            # versions superseded before the oldest live snapshot can
            # never be read again and are reclaimed here.
            self.collect_versions()
            return self._checkpoints

    def _apply_redo(self, ops: Sequence[Any]) -> None:
        """Replay one committed transaction's forward images."""
        for op in ops:
            kind = op[0]
            if kind == "insert":
                _, table, rowid, row = op
                self.storage(table).restore(rowid, list(row))
            elif kind == "delete":
                _, table, rowid = op
                self.storage(table).delete(rowid)
            elif kind == "update":
                _, table, rowid, new_row = op
                self.storage(table).update(rowid, list(new_row))
            elif kind == "create_table":
                self.create_storage(op[1])
            elif kind == "drop_table":
                self.drop_storage(op[1], record=False)
            elif kind == "create_index":
                _, table, index_name, columns, unique = op
                self.storage(table).add_index(
                    index_name, list(columns), unique=unique)
                self.invalidate_plans()
            elif kind == "add_column":
                _, table, column = op
                self.storage(table).add_column(column)
                self.invalidate_plans()
            elif kind == "create_view":
                _, key, select = op
                self.views[key] = select
                self.invalidate_plans()
            elif kind == "drop_view":
                self.views.pop(op[1], None)
                self.invalidate_plans()
            else:
                raise WalError(f"unknown redo op {kind!r}")

    @classmethod
    def recover(cls, directory: Union[str, Path], name: str = "main", *,
                fsync: str = "always", compile: Optional[bool] = None,
                faults=None) -> "Database":
        """Rebuild a database from its data directory after a crash.

        Loads the last snapshot (``<name>.snapshot``) when one exists,
        replays every *committed* transaction from the WAL tail
        (``<name>.wal``), discards torn/corrupt frames and intact but
        uncommitted trailing ops, truncates the log back to the last
        commit record (so later appends cannot resurrect them), then
        re-attaches a live WAL so the database keeps logging.  Views
        are revalidated against the recovered catalog; compiled plans
        start cold.  ``compile=None`` keeps the snapshot's setting.
        """
        directory = Path(directory)
        snapshot = directory / f"{name}.snapshot"
        wal_path = directory / f"{name}.wal"
        snapshot_loaded = snapshot.exists()
        if snapshot_loaded:
            database = cls.load(snapshot, faults=faults)
            if compile is not None:
                database._compile_enabled = bool(compile)
        else:
            database = cls(name, compile=True if compile is None
                           else bool(compile))
        entries, good_length, tail_reason = read_log(wal_path)
        transactions, committed_length, dangling = \
            committed_transactions(entries)
        base = database._snapshot_wal_number
        replayable = [(number, ops) for number, ops in transactions
                      if number > base]
        database._suppress_redo = True
        try:
            # Replay stamps each transaction's effects with its actual
            # WAL commit number, rebuilding the same version lifetimes
            # the pre-crash database had published.
            for number, ops in replayable:
                database._committed_cn = number - 1
                database._apply_redo(ops)
                database._committed_cn = number
        finally:
            database._suppress_redo = False
        for select in database.views.values():
            database._executor.execute_select(select, ())
        discarded = 0
        if wal_path.exists():
            # Keep exactly the committed prefix: behind it may sit an
            # intact-but-uncommitted op run and/or a torn tail, and
            # both must go before new commits are appended.
            keep = committed_length
            if keep == 0 and good_length >= len(MAGIC):
                keep = len(MAGIC)
            size = wal_path.stat().st_size
            if size > keep:
                discarded = size - keep
                with open(wal_path, "r+b") as handle:
                    handle.truncate(keep)
        wal = WriteAheadLog(wal_path, fsync=fsync, faults=faults)
        wal.last_number = max(wal.last_number, base)
        database.attach_wal(wal, snapshot)
        database.recovery_info = {
            "snapshot_loaded": snapshot_loaded,
            "transactions_replayed": len(replayable),
            "dangling_ops": dangling,
            "tail_reason": tail_reason,
            "discarded_bytes": discarded,
        }
        database.invalidate_plans()
        return database

    def apply_committed(
            self, transactions: Sequence[Tuple[int, Sequence[Any]]]) \
            -> int:
        """Apply committed transactions shipped from another log.

        The replication entry point: a read replica tails its
        primary's WAL and hands the committed prefix here.  Each
        transaction is applied exactly as :meth:`recover` replays it —
        effects stamped with the shipping commit number, the commit
        published atomically — but under the exclusive statement lock,
        because a live replica keeps serving snapshot reads while it
        applies.  Transactions at or below the current commit number
        are skipped (re-shipping a prefix is idempotent); a numbering
        gap raises :class:`~repro.errors.WalError` so the shipper can
        fall back to a snapshot resync.  Returns how many transactions
        were applied.
        """
        with self._lock.exclusive():
            if self.in_transaction:
                raise TransactionError(
                    "cannot apply shipped transactions while a local "
                    "transaction is open")
            applied = 0
            self._suppress_redo = True
            try:
                for number, ops in transactions:
                    if number <= self._committed_cn:
                        continue
                    if number != self._committed_cn + 1:
                        raise WalError(
                            f"replication gap: next shipped "
                            f"transaction is #{number} but "
                            f"{self.name!r} is at "
                            f"#{self._committed_cn}")
                    self._apply_redo(ops)
                    with self._state_lock:
                        self._committed_cn = number
                    applied += 1
            finally:
                self._suppress_redo = False
            return applied

    def state_fingerprint(self) -> Tuple[Any, ...]:
        """A hashable identity of the full durable state.

        Two databases with equal fingerprints hold identical tables
        (rows, rowids, indexes) and identical views — the invariant
        the crash-chaos battery asserts between a committed prefix
        and its recovery.
        """
        with self._lock.shared():
            return (
                tuple(sorted(storage.fingerprint()
                             for storage in self._storages.values())),
                tuple(sorted(
                    (key, zlib.crc32(pickle.dumps(select)))
                    for key, select in self.views.items())),
            )

    def close(self) -> None:
        """Flush and close the attached WAL (if any)."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None


class _TransactionScope:
    def __init__(self, database: Database):
        self._db = database

    def __enter__(self) -> Database:
        self._db.begin()
        return self._db

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._db.commit()
        else:
            self._db.rollback()
        return False


class Connection:
    """A lightweight DB-API-flavoured cursor over a Database.

    The ODBIS persistence layer (``repro.orm``) talks to the engine
    through this class, mirroring how Hibernate sits on JDBC.
    """

    def __init__(self, database: Database):
        self.database = database
        self.closed = False

    def _check(self) -> None:
        if self.closed:
            raise EngineError("connection is closed")

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        self._check()
        return self.database.execute(sql, params)

    def query(self, sql: str, params: Sequence[Any] = ()) \
            -> List[Dict[str, Any]]:
        self._check()
        return self.database.query(sql, params)

    def begin(self) -> None:
        self._check()
        self.database.begin()

    def commit(self) -> None:
        self._check()
        self.database.commit()

    def rollback(self) -> None:
        self._check()
        self.database.rollback()

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
