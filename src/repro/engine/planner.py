"""Plan-time query compilation for SELECT statements.

The planner sits between the parser and the executor.  For a supported
SELECT it produces a :class:`SelectPlan` that

* resolves every column reference to a positional slot (via
  :mod:`repro.engine.compiler`) so execution never builds per-row dicts
  or performs string lookups,
* chooses index point/prefix scans from the pushed-down predicates,
* pushes single-source WHERE conjuncts below joins (never onto the
  null-supplying side of a LEFT join),
* detects multi-key equi-joins and picks the hash-join build side by
  estimated cardinality, and
* renders itself as an ``EXPLAIN`` result set.

Anything the planner cannot prove it can compile faithfully — view
sources, unresolvable references, exotic shapes — returns ``(None,
reason)`` and the caller falls back to the interpreted executor, so
compiled and interpreted execution always agree.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.compiler import (
    CompiledExpr,
    Scope,
    SlotMap,
    compile_expression,
)
from repro.engine.expressions import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    Parameter,
    Star,
    find_aggregates,
)
from repro.engine.parser import (
    Join,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.engine.types import sort_key
from repro.errors import EngineError


class Unplannable(Exception):
    """Internal signal: this statement must run interpreted."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# -- predicate rendering (EXPLAIN) --------------------------------------------

def predicate_text(expr: Expression) -> str:
    """A compact SQL-ish rendering of a predicate for EXPLAIN output."""
    from repro.engine import expressions as ex

    if isinstance(expr, ex.Star):
        return "*"
    if isinstance(expr, ex.ColumnRef):
        return expr.name.lower()
    if isinstance(expr, ex.Literal):
        return "NULL" if expr.value is None else repr(expr.value)
    if isinstance(expr, ex.Parameter):
        return "?"
    if isinstance(expr, ex.BinaryOp):
        return (f"{predicate_text(expr.left)} {expr.op} "
                f"{predicate_text(expr.right)}")
    if isinstance(expr, ex.UnaryOp):
        return f"{expr.op} {predicate_text(expr.operand)}"
    if isinstance(expr, ex.IsNull):
        tail = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{predicate_text(expr.operand)} {tail}"
    if isinstance(expr, ex.InList):
        options = ", ".join(predicate_text(o) for o in expr.options)
        word = "NOT IN" if expr.negated else "IN"
        return f"{predicate_text(expr.operand)} {word} ({options})"
    if isinstance(expr, ex.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"{predicate_text(expr.operand)} {word} "
                f"{predicate_text(expr.low)} AND {predicate_text(expr.high)}")
    if isinstance(expr, ex.Like):
        word = "NOT LIKE" if expr.negated else "LIKE"
        return f"{predicate_text(expr.operand)} {word} " \
               f"{predicate_text(expr.pattern)}"
    if isinstance(expr, ex.CaseExpr):
        parts = [f"WHEN {predicate_text(c)} THEN {predicate_text(r)}"
                 for c, r in expr.branches]
        if expr.default is not None:
            parts.append(f"ELSE {predicate_text(expr.default)}")
        return "CASE " + " ".join(parts) + " END"
    if isinstance(expr, ex.FunctionCall):
        inner = ", ".join(predicate_text(a) for a in expr.args)
        return f"{expr.name.upper()}({inner})"
    if isinstance(expr, ex.AggregateCall):
        arg = predicate_text(expr.argument)
        flag = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.upper()}({flag}{arg})"
    return repr(expr)


def split_conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Flatten an AND tree into its conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def output_name(item: SelectItem, index: int) -> str:
    """The result-set column name of one SELECT item."""
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ColumnRef):
        return expression.name.split(".")[-1]
    if isinstance(expression, AggregateCall):
        return expression.result_key().replace("__agg_", "")
    return f"column{index + 1}"


# -- plan nodes ----------------------------------------------------------------

class ScanNode:
    """One FROM source: full scan or index point/prefix scan + filters."""

    def __init__(self, alias: str, table: str, storage, width: int):
        self.alias = alias
        self.table = table
        self.storage = storage
        self.width = width
        self.index = None
        self.point = False
        self.key_fns: List[CompiledExpr] = []
        self.key_text = ""
        # Locally-compiled pushed predicates (slot 0 = first own column).
        self.filters: List[Tuple[CompiledExpr, str]] = []
        self._filter_fns: Optional[List[CompiledExpr]] = None
        self.est_rows = len(storage)

    # -- execution ---------------------------------------------------------

    def rows(self, params: Sequence[Any],
             snapshot=None) -> List[list]:
        """Candidate rows after pushed filters.

        ``snapshot`` pins the scan to one commit number (lock-free
        MVCC read); ``None`` reads the live rows under the exclusive
        lock.  Rows flow through the plan as the storage's own row
        lists — never copied — and every combination downstream
        (joins, group representatives) builds fresh lists, so storage
        is never aliased by anything that outlives execution.
        """
        if self.index is not None:
            empty: Sequence[Any] = ()
            key = tuple(fn(empty, params) for fn in self.key_fns)
            if any(part is None for part in key):
                candidates: List[list] = []
            else:
                if self.point:
                    rowids = self.index.lookup(key)
                else:
                    rowids = self.index.lookup_prefix(key)
                if snapshot is None:
                    table_rows = self.storage.rows
                    fetched = ((table_rows.get(rowid))
                               for rowid in sorted(rowids))
                else:
                    cn = snapshot.cn
                    visible = self.storage.visible_row
                    fetched = (visible(rowid, cn)
                               for rowid in sorted(rowids))
                # MVCC buckets keep tombstones for superseded
                # versions; re-verify the key against the row the
                # read path actually produced.
                width = len(key)
                key_for = self.index.key_for
                candidates = [
                    row for row in fetched
                    if row is not None and key_for(row)[:width] == key
                ]
        elif snapshot is None:
            candidates = list(self.storage.rows.values())
        else:
            candidates = [row for _rowid, row
                          in self.storage.snapshot_rows(snapshot.cn)]
        fns = self._filter_fns
        if fns is None:
            # Lazily frozen: ON-clause pushes land after construction.
            fns = self._filter_fns = [fn for fn, _text in self.filters]
        if not fns:
            return candidates
        if len(fns) == 1:
            first = fns[0]
            return [row for row in candidates
                    if first(row, params) is True]
        if len(fns) == 2:
            first, second = fns
            return [row for row in candidates
                    if first(row, params) is True
                    and second(row, params) is True]
        out: List[list] = []
        for row in candidates:
            for fn in fns:
                if fn(row, params) is not True:
                    break
            else:
                out.append(row)
        return out

    # -- display -----------------------------------------------------------

    def describe(self) -> str:
        if self.index is not None:
            kind = "point" if self.point else "prefix"
            return (f"index {kind} scan {self.index.name} "
                    f"({self.key_text}) (~{self.est_scan_rows()} rows)")
        return f"full scan (~{self.est_rows} rows)"

    def est_scan_rows(self) -> int:
        if self.index is None:
            return self.est_rows
        buckets = max(1, self.index.bucket_count())
        return max(1, len(self.index) // buckets)

    def explain_lines(self) -> List[str]:
        lines = [f"scan {self.table} {self.alias}: {self.describe()}"]
        for _fn, text in self.filters:
            lines.append(f"  filter [pushed]: {text}")
        return lines


class JoinNode:
    """One left-deep join step combining the pipeline with a new scan."""

    def __init__(self, kind: str, scan: ScanNode, left_width: int):
        self.kind = kind  # 'INNER' | 'LEFT' | 'CROSS'
        self.scan = scan
        self.left_width = left_width
        self.null_row = [None] * scan.width
        # Hash-join keys; empty means nested loop.
        self.left_key_fns: List[CompiledExpr] = []
        self.right_key_fns: List[CompiledExpr] = []
        self.key_text = ""
        # Residual ON conjuncts over the combined row.
        self.condition: Optional[CompiledExpr] = None
        self.condition_text = ""
        self.est_left = 0

    @property
    def is_hash(self) -> bool:
        return bool(self.left_key_fns)

    def build_side(self, left_count: int, right_count: int) -> str:
        """Hash build side by estimated cardinality.

        Builds on the smaller input; the 4x hysteresis avoids paying the
        per-left accumulation overhead of a left build on near-ties.
        Output row order is left-major either way.
        """
        return "left" if left_count * 4 < right_count else "right"

    def run(self, left_rows: List[list],
            params: Sequence[Any], snapshot=None) -> List[list]:
        right_rows = self.scan.rows(params, snapshot)
        if not self.is_hash:
            return self._run_loop(left_rows, right_rows, params)
        if len(self.left_key_fns) == 1:
            return self._hash_single(left_rows, right_rows, params)
        return self._hash_multi(left_rows, right_rows, params)

    def _hash_single(self, left_rows, right_rows, params):
        """Hash join on one key: the raw value is the bucket key and
        column keys index the row directly, skipping per-row closures
        and 1-tuple allocations."""
        condition = self.condition
        left_join = self.kind == "LEFT"
        null_row = self.null_row
        left_fn = self.left_key_fns[0]
        right_fn = self.right_key_fns[0]
        left_slot = getattr(left_fn, "_slot", None)
        right_slot = getattr(right_fn, "_slot", None)
        out: List[list] = []
        append = out.append
        if self.build_side(len(left_rows), len(right_rows)) == "left":
            # Build on the (smaller) left; probe with right rows but
            # accumulate per left row so output stays left-major with
            # matches in right-scan order — identical to a right build.
            buckets: Dict[Any, List[int]] = {}
            for position, left in enumerate(left_rows):
                key = left[left_slot] if left_slot is not None \
                    else left_fn(left, params)
                if key is not None:
                    buckets.setdefault(key, []).append(position)
            acc: List[Optional[List[list]]] = [None] * len(left_rows)
            get = buckets.get
            for right in right_rows:
                key = right[right_slot] if right_slot is not None \
                    else right_fn(right, params)
                if key is None:
                    continue
                positions = get(key)
                if positions is None:
                    continue
                for position in positions:
                    combined = left_rows[position] + right
                    if condition is None \
                            or condition(combined, params) is True:
                        matches = acc[position]
                        if matches is None:
                            acc[position] = matches = []
                        matches.append(combined)
            extend = out.extend
            for position, matches in enumerate(acc):
                if matches:
                    extend(matches)
                elif left_join:
                    append(left_rows[position] + null_row)
            return out
        buckets = {}
        if right_slot is not None:
            for right in right_rows:
                key = right[right_slot]
                if key is not None:
                    buckets.setdefault(key, []).append(right)
        else:
            for right in right_rows:
                key = right_fn(right, params)
                if key is not None:
                    buckets.setdefault(key, []).append(right)
        get = buckets.get
        if condition is None and not left_join and left_slot is not None:
            # The hottest shape: plain equi-INNER join on a column.
            for left in left_rows:
                key = left[left_slot]
                if key is None:
                    continue
                matches = get(key)
                if matches is not None:
                    for right in matches:
                        append(left + right)
            return out
        for left in left_rows:
            key = left[left_slot] if left_slot is not None \
                else left_fn(left, params)
            matches = get(key, ()) if key is not None else ()
            matched = False
            for right in matches:
                combined = left + right
                if condition is None or condition(combined, params) is True:
                    matched = True
                    append(combined)
            if left_join and not matched:
                append(left + null_row)
        return out

    def _hash_multi(self, left_rows, right_rows, params):
        condition = self.condition
        left_join = self.kind == "LEFT"
        null_row = self.null_row
        out: List[list] = []
        if self.build_side(len(left_rows), len(right_rows)) == "left":
            buckets: Dict[tuple, List[int]] = {}
            for position, left in enumerate(left_rows):
                key = tuple(fn(left, params) for fn in self.left_key_fns)
                if any(part is None for part in key):
                    continue
                buckets.setdefault(key, []).append(position)
            acc: List[List[list]] = [[] for _ in left_rows]
            for right in right_rows:
                key = tuple(fn(right, params)
                            for fn in self.right_key_fns)
                if any(part is None for part in key):
                    continue
                for position in buckets.get(key, ()):
                    combined = left_rows[position] + right
                    if condition is None \
                            or condition(combined, params) is True:
                        acc[position].append(combined)
            for position, matches in enumerate(acc):
                if matches:
                    out.extend(matches)
                elif left_join:
                    out.append(left_rows[position] + null_row)
            return out
        buckets = {}
        for right in right_rows:
            key = tuple(fn(right, params) for fn in self.right_key_fns)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(right)
        for left in left_rows:
            key = tuple(fn(left, params) for fn in self.left_key_fns)
            if any(part is None for part in key):
                matches: Sequence[list] = ()
            else:
                matches = buckets.get(key, ())
            matched = False
            for right in matches:
                combined = left + right
                if condition is None or condition(combined, params) is True:
                    matched = True
                    out.append(combined)
            if left_join and not matched:
                out.append(left + null_row)
        return out

    def _run_loop(self, left_rows, right_rows, params):
        condition = self.condition
        left_join = self.kind == "LEFT"
        null_row = self.null_row
        out: List[list] = []
        for left in left_rows:
            matched = False
            for right in right_rows:
                combined = left + right
                if condition is None or condition(combined, params) is True:
                    matched = True
                    out.append(combined)
            if left_join and not matched:
                out.append(left + null_row)
        return out

    def explain_lines(self) -> List[str]:
        lines = []
        scan = self.scan
        if self.is_hash:
            side = self.build_side(self.est_left, scan.est_scan_rows())
            head = (f"hash join {self.kind} {scan.table} {scan.alias}: "
                    f"{self.key_text} (build={side}, "
                    f"~{self.est_left} x ~{scan.est_scan_rows()} rows)")
        else:
            head = (f"nested loop {self.kind} {scan.table} {scan.alias} "
                    f"(~{self.est_left} x ~{scan.est_scan_rows()} rows)")
        lines.append(head)
        lines.append(f"  {scan.explain_lines()[0]}")
        for _fn, text in scan.filters:
            lines.append(f"    filter [pushed]: {text}")
        if self.condition is not None:
            lines.append(f"  on-filter: {self.condition_text}")
        return lines


class CompiledAggregate:
    """One unique aggregate of a grouped query, with a compiled argument."""

    __slots__ = ("name", "distinct", "arg_fn", "arg_slot", "text")

    def __init__(self, name: str, distinct: bool,
                 arg_fn: Optional[CompiledExpr], text: str):
        self.name = name
        self.distinct = distinct
        self.arg_fn = arg_fn
        self.arg_slot = getattr(arg_fn, "_slot", None)
        self.text = text

    def compute(self, members: List[list], params: Sequence[Any]) -> Any:
        if self.arg_fn is None:  # COUNT(*)
            return len(members)
        slot = self.arg_slot
        if slot is not None:  # plain column argument: index directly
            values = [value for row in members
                      if (value := row[slot]) is not None]
        else:
            arg_fn = self.arg_fn
            values = []
            for row in members:
                value = arg_fn(row, params)
                if value is not None:
                    values.append(value)
        if self.distinct:
            seen: Set[Any] = set()
            unique: List[Any] = []
            for value in values:
                marker = (type(value).__name__, value)
                if marker not in seen:
                    seen.add(marker)
                    unique.append(value)
            values = unique
        name = self.name
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values, key=sort_key)
        if name == "MAX":
            return max(values, key=sort_key)
        raise EngineError(f"unknown aggregate {name!r}")  # pragma: no cover


class SelectPlan:
    """A fully compiled SELECT, ready to execute against live storages."""

    def __init__(self, database, statement: SelectStatement):
        self.database = database
        self.statement = statement
        self.columns: List[str] = []
        self.no_from = statement.from_clause is None
        self.scans: List[ScanNode] = []
        self.joins: List[JoinNode] = []
        self.residuals: List[Tuple[CompiledExpr, str]] = []
        self.grouped = False
        self.group_key_fns: List[CompiledExpr] = []
        self.group_texts: List[str] = []
        self.aggregates: List[CompiledAggregate] = []
        self.having_fn: Optional[CompiledExpr] = None
        self.having_text = ""
        self.empty_group_fallback = False
        self.source_width = 0
        self.item_fns: List[CompiledExpr] = []
        # When every item is a plain slot read, projection collapses to
        # one operator.itemgetter call per row.
        self.project_getter: Optional[Callable[[Sequence[Any]], tuple]] \
            = None
        self.distinct = statement.distinct
        # (fn over ctx_row + out_row, ascending, text)
        self.order_specs: List[Tuple[CompiledExpr, bool, str]] = []
        self.limit_fn: Optional[CompiledExpr] = None
        self.offset_fn: Optional[CompiledExpr] = None

    # -- execution ---------------------------------------------------------

    def execute(self, params: Sequence[Any], snapshot=None):
        from repro.engine.executor import ResultSet

        if self.no_from:
            rows: List[list] = [[]]
        else:
            rows = self.scans[0].rows(params, snapshot)
            for join in self.joins:
                rows = join.run(rows, params, snapshot)

        for fn, _text in self.residuals:
            rows = [row for row in rows if fn(row, params) is True]

        if self.grouped:
            rows = self._group(rows, params)
            if rows is None:  # zero-row edge: interpreted raises here
                return self.database._executor.execute_select(
                    self.statement, params, snapshot)

        getter = self.project_getter
        if getter is not None:
            produced = [(getter(row), row) for row in rows]
        else:
            item_fns = self.item_fns
            produced = [
                (tuple(fn(row, params) for fn in item_fns), row)
                for row in rows
            ]

        if self.distinct:
            seen: Set[Any] = set()
            unique = []
            for out_row, ctx in produced:
                marker = tuple(
                    (type(v).__name__, v) if v.__hash__ else repr(v)
                    for v in out_row)
                if marker not in seen:
                    seen.add(marker)
                    unique.append((out_row, ctx))
            produced = unique

        if self.order_specs:
            keyed = [(out_row, ctx + list(out_row))
                     for out_row, ctx in produced]
            for fn, ascending, _text in reversed(self.order_specs):
                keyed.sort(
                    key=lambda pair: sort_key(fn(pair[1], params)),
                    reverse=not ascending)
            out_rows = [out_row for out_row, _order_row in keyed]
        else:
            out_rows = [out_row for out_row, _ctx in produced]

        empty: Sequence[Any] = ()
        if self.offset_fn is not None:
            out_rows = out_rows[int(self.offset_fn(empty, params)):]
        if self.limit_fn is not None:
            out_rows = out_rows[:int(self.limit_fn(empty, params))]
        return ResultSet(list(self.columns), out_rows)

    def _group(self, rows: List[list],
               params: Sequence[Any]) -> Optional[List[list]]:
        if self.group_key_fns:
            key_fns = self.group_key_fns
            groups: Dict[Any, List[list]] = {}
            order: List[Any] = []
            if len(key_fns) == 1:
                fn = key_fns[0]
                slot = getattr(fn, "_slot", None)
                # One key: group on sort_key of the value directly (no
                # per-row 1-tuple), indexing the slot when possible.
                if slot is not None:
                    for row in rows:
                        key = sort_key(row[slot])
                        bucket = groups.get(key)
                        if bucket is None:
                            groups[key] = bucket = []
                            order.append(key)
                        bucket.append(row)
                else:
                    for row in rows:
                        key = sort_key(fn(row, params))
                        bucket = groups.get(key)
                        if bucket is None:
                            groups[key] = bucket = []
                            order.append(key)
                        bucket.append(row)
            else:
                for row in rows:
                    key = tuple(sort_key(fn(row, params))
                                for fn in key_fns)
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = bucket = []
                        order.append(key)
                    bucket.append(row)
            member_lists = [groups[key] for key in order]
        else:
            if not rows and self.empty_group_fallback:
                # The interpreter raises "unknown column" when the lone
                # group is empty and an output expression reads a source
                # column; delegate so the error matches exactly.
                return None
            member_lists = [rows]
        null_rep = [None] * self.source_width
        aggregates = self.aggregates
        ext_rows: List[list] = []
        for members in member_lists:
            representative = members[0] if members else null_rep
            ext_rows.append(representative + [
                agg.compute(members, params) for agg in aggregates])
        if self.having_fn is not None:
            having = self.having_fn
            ext_rows = [row for row in ext_rows
                        if having(row, params) is True]
        return ext_rows

    # -- display -----------------------------------------------------------

    def explain_lines(self) -> List[str]:
        lines: List[str] = []
        if self.no_from:
            lines.append("no FROM clause: constant row")
        else:
            lines.extend(self.scans[0].explain_lines())
            for join in self.joins:
                lines.extend(join.explain_lines())
        for _fn, text in self.residuals:
            lines.append(f"filter: {text}")
        if self.grouped:
            keys = ", ".join(self.group_texts) if self.group_texts \
                else "(all rows)"
            aggs = ", ".join(agg.text for agg in self.aggregates)
            lines.append(f"group by: {keys}  aggregates: {aggs}")
            if self.having_fn is not None:
                lines.append(f"having: {self.having_text}")
        if self.distinct:
            lines.append("distinct")
        if self.order_specs:
            parts = [f"{text} {'asc' if ascending else 'desc'}"
                     for _fn, ascending, text in self.order_specs]
            lines.append("order by: " + ", ".join(parts))
        if self.offset_fn is not None:
            lines.append("offset: "
                         + predicate_text(self.statement.offset))
        if self.limit_fn is not None:
            lines.append("limit: " + predicate_text(self.statement.limit))
        lines.append("project: " + ", ".join(self.columns))
        return lines


# -- the planner ----------------------------------------------------------------

def plan_select(database, statement: SelectStatement) \
        -> Tuple[Optional[SelectPlan], Optional[str]]:
    """Plan one SELECT; ``(None, reason)`` means run interpreted."""
    try:
        return _build_plan(database, statement), None
    except Unplannable as exc:
        return None, exc.reason
    except EngineError as exc:
        # Compilation errors (unknown/ambiguous columns, bad aggregates)
        # fall back so the interpreter raises — or silently succeeds on
        # zero rows — exactly as before.
        return None, str(exc)


def _flatten_from(database, node) \
        -> Tuple[List[TableRef], List[Tuple[str, Optional[Expression]]]]:
    """Left-deep FROM tree -> ordered table refs + join (kind, cond)."""
    if isinstance(node, TableRef):
        if node.name.lower() in database.views:
            raise Unplannable(f"view source {node.name!r}")
        return [node], []
    if isinstance(node, Join):
        refs, joins = _flatten_from(database, node.left)
        if not isinstance(node.right, TableRef):  # pragma: no cover
            raise Unplannable("non-table join operand")
        if node.right.name.lower() in database.views:
            raise Unplannable(f"view source {node.right.name!r}")
        refs.append(node.right)
        joins.append((node.kind, node.condition))
        return refs, joins
    raise Unplannable(f"unsupported FROM node {type(node).__name__}")


def _expand_stars(items: List[SelectItem],
                  sources: List[Tuple[str, List[str]]]) -> List[SelectItem]:
    expanded: List[SelectItem] = []
    for item in items:
        if not isinstance(item.expression, Star):
            expanded.append(item)
            continue
        if not sources:
            raise Unplannable("SELECT * without FROM")
        qualifier = None
        if item.alias and item.alias.endswith(".*"):
            qualifier = item.alias[:-2].lower()
        for alias, column_names in sources:
            if qualifier is not None and alias.lower() != qualifier:
                continue
            for column in column_names:
                expanded.append(
                    SelectItem(ColumnRef(f"{alias}.{column}"), column))
    return expanded


def _conjunct_source(conjunct: Expression, slots: SlotMap) -> Set[int]:
    """The set of FROM-source indexes a conjunct references."""
    return {
        slots.source_of_slot(slots.resolve(name))
        for name in conjunct.column_refs()
    }


def _index_for_scan(scan: ScanNode, schema,
                    pushed: List[Expression]) -> None:
    """Pick the best index point/prefix scan from equality conjuncts."""
    eq_exprs: Dict[str, Expression] = {}
    for conjunct in pushed:
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            continue
        column_side, value_side = conjunct.left, conjunct.right
        if not isinstance(column_side, ColumnRef):
            column_side, value_side = conjunct.right, conjunct.left
        if not isinstance(column_side, ColumnRef):
            continue
        if not isinstance(value_side, (Literal, Parameter)):
            continue
        name = column_side.name.lower()
        if "." in name:
            prefix, name = name.split(".", 1)
            if prefix != scan.alias.lower():
                continue
        if schema.has_column(name):
            eq_exprs.setdefault(name, value_side)
    if not eq_exprs:
        return
    best = None  # (covered, is_point, index)
    # list() is one atomic copy: planning may run lock-free on the
    # MVCC read path while a writer adds/drops an index.
    for index in list(scan.storage.indexes.values()):
        covered = 0
        for column in index.column_names:
            if column.lower() in eq_exprs:
                covered += 1
            else:
                break
        if covered == 0:
            continue
        is_point = covered == len(index.column_names)
        rank = (is_point, covered)
        if best is None or rank > best[0]:
            best = (rank, index)
    if best is None:
        return
    _rank, index = best
    covered = _rank[1]
    empty_scope = Scope(SlotMap())
    key_columns = [c.lower() for c in index.column_names[:covered]]
    scan.index = index
    scan.point = covered == len(index.column_names)
    scan.key_fns = [
        compile_expression(eq_exprs[column], empty_scope)
        for column in key_columns
    ]
    scan.key_text = ", ".join(
        f"{column} = {predicate_text(eq_exprs[column])}"
        for column in key_columns)


def _build_plan(database, statement: SelectStatement) -> SelectPlan:
    plan = SelectPlan(database, statement)

    # -- sources and slots -------------------------------------------------
    slots = SlotMap()
    source_schemas = []
    if statement.from_clause is not None:
        refs, joins = _flatten_from(database, statement.from_clause)
        for ref in refs:
            storage = database.storage(ref.name)
            slots.add_source(ref.alias, storage.schema.column_names)
            source_schemas.append(storage.schema)
            plan.scans.append(ScanNode(
                ref.alias, ref.name, storage,
                len(storage.schema.columns)))
    else:
        refs, joins = [], []
    plan.source_width = slots.width

    # Which sources sit on the null-supplying side of a LEFT join?
    null_supplying = {
        position + 1
        for position, (kind, _condition) in enumerate(joins)
        if kind == "LEFT"
    }

    # -- WHERE: push single-source conjuncts, keep the rest ----------------
    source_scope = Scope(slots)
    pushed_raw: List[List[Expression]] = [[] for _ in plan.scans]
    for conjunct in split_conjuncts(statement.where):
        owners = _conjunct_source(conjunct, slots)
        if len(owners) == 1:
            owner = next(iter(owners))
            if owner not in null_supplying:
                pushed_raw[owner].append(conjunct)
                continue
        plan.residuals.append((
            compile_expression(conjunct, source_scope),
            predicate_text(conjunct)))

    # -- scans: local filters + index choice -------------------------------
    local_scopes = []
    for position, scan in enumerate(plan.scans):
        local_slots = SlotMap()
        local_slots.add_source(
            scan.alias, source_schemas[position].column_names)
        local_scope = Scope(local_slots)
        local_scopes.append(local_scope)
        for conjunct in pushed_raw[position]:
            scan.filters.append((
                compile_expression(conjunct, local_scope),
                predicate_text(conjunct)))
        _index_for_scan(scan, source_schemas[position],
                        pushed_raw[position])

    # -- joins -------------------------------------------------------------
    est_rows = plan.scans[0].est_scan_rows() if plan.scans else 1
    for position, (kind, condition) in enumerate(joins):
        right_scan = plan.scans[position + 1]
        right_start, right_width = (
            slots.sources[position + 1][1], right_scan.width)
        join = JoinNode(kind, right_scan, right_start)
        join.est_left = est_rows
        residual_parts: List[Expression] = []
        key_texts: List[str] = []
        for conjunct in split_conjuncts(condition):
            if _try_hash_key(conjunct, join, slots, local_scopes,
                             position, right_start, right_width):
                key_texts.append(predicate_text(conjunct))
                continue
            if kind in ("INNER", "CROSS"):
                owners = _conjunct_source(conjunct, slots)
                if owners == {position + 1}:
                    # INNER ON-filter over the new source only: push
                    # into its scan (ON == WHERE for inner joins).
                    right_scan.filters.append((
                        compile_expression(
                            conjunct, local_scopes[position + 1]),
                        predicate_text(conjunct)))
                    continue
            residual_parts.append(conjunct)
        if residual_parts:
            checked = Scope(slots)
            fns = [compile_expression(part, checked)
                   for part in residual_parts]
            if checked.touched_source_slots and max(
                    checked.touched_source_slots) \
                    >= right_start + right_width:
                raise Unplannable(
                    "join condition references a later table")

            def combined(row, params, fns=fns):
                result: Any = True
                for fn in fns:
                    verdict = fn(row, params)
                    if verdict is False:
                        return False
                    if verdict is not True:
                        result = None
                return result
            join.condition = combined
            join.condition_text = " AND ".join(
                predicate_text(part) for part in residual_parts)
        join.key_text = " AND ".join(key_texts)
        if not join.is_hash and kind == "LEFT" and condition is not None \
                and not residual_parts:
            # LEFT JOIN whose whole ON clause got consumed elsewhere
            # cannot happen (nothing is pushed for LEFT); guard anyway.
            raise Unplannable("LEFT join without usable condition")
        plan.joins.append(join)
        est_rows = max(1, est_rows) * max(1, right_scan.est_scan_rows()) \
            if not join.is_hash else max(est_rows,
                                         right_scan.est_scan_rows())

    # -- items / aggregates / grouping ------------------------------------
    items = _expand_stars(
        statement.items,
        [(scan.alias, source_schemas[i].column_names)
         for i, scan in enumerate(plan.scans)])
    plan.columns = [output_name(item, index)
                    for index, item in enumerate(items)]

    aggregates: List[AggregateCall] = []
    for item in items:
        aggregates.extend(find_aggregates(item.expression))
    if statement.having is not None:
        aggregates.extend(find_aggregates(statement.having))
    for expr, _ascending in statement.order_by:
        aggregates.extend(find_aggregates(expr))

    plan.grouped = bool(statement.group_by) or bool(aggregates)
    agg_slots: Dict[str, int] = {}
    if plan.grouped:
        unique: Dict[str, AggregateCall] = {}
        for aggregate in aggregates:
            unique.setdefault(aggregate.result_key(), aggregate)
        for offset, (key, aggregate) in enumerate(unique.items()):
            agg_slots[key] = slots.width + offset
            if isinstance(aggregate.argument, Star):
                if aggregate.name != "COUNT":
                    raise EngineError(f"{aggregate.name}(*) is not valid")
                arg_fn = None
            else:
                arg_fn = compile_expression(
                    aggregate.argument, source_scope)
            plan.aggregates.append(CompiledAggregate(
                aggregate.name, aggregate.distinct, arg_fn,
                predicate_text(aggregate)))
        for expr in statement.group_by:
            plan.group_key_fns.append(
                compile_expression(expr, source_scope))
            plan.group_texts.append(predicate_text(expr))

    # Post-grouping expressions see source slots (representative row)
    # plus the appended aggregate slots.
    output_scope = Scope(slots, agg_slots=agg_slots)
    plan.item_fns = [
        compile_expression(item.expression, output_scope)
        for item in items
    ]
    item_slots = [getattr(fn, "_slot", None) for fn in plan.item_fns]
    if item_slots and all(slot is not None for slot in item_slots):
        if len(item_slots) == 1:
            only = item_slots[0]
            plan.project_getter = lambda row, _slot=only: (row[_slot],)
        else:
            plan.project_getter = operator.itemgetter(*item_slots)
    if plan.grouped and statement.having is not None:
        plan.having_fn = compile_expression(statement.having, output_scope)
        plan.having_text = predicate_text(statement.having)

    # ORDER BY additionally sees output aliases (appended last), with
    # source columns taking precedence like the interpreter's setdefault.
    ctx_width = slots.width + len(plan.aggregates)
    alias_slots: Dict[str, int] = {}
    for position, name in enumerate(plan.columns):
        alias_slots.setdefault(name.lower(), ctx_width + position)
    order_scope = Scope(slots, agg_slots=agg_slots,
                        alias_slots=alias_slots)
    for expr, ascending in statement.order_by:
        plan.order_specs.append((
            compile_expression(expr, order_scope), ascending,
            predicate_text(expr)))

    empty_scope = Scope(SlotMap())
    if statement.limit is not None:
        plan.limit_fn = compile_expression(statement.limit, empty_scope)
    if statement.offset is not None:
        plan.offset_fn = compile_expression(statement.offset, empty_scope)

    plan.empty_group_fallback = (
        plan.grouped and not statement.group_by
        and bool(output_scope.touched_source_slots
                 or order_scope.touched_source_slots))
    return plan


def _try_hash_key(conjunct: Expression, join: JoinNode, slots: SlotMap,
                  local_scopes, position: int, right_start: int,
                  right_width: int) -> bool:
    """Register ``conjunct`` as a hash-join key when it equates a
    prior-sources expression with a new-source expression."""
    if join.kind not in ("INNER", "LEFT"):
        return False
    if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
        return False

    def side_slots(expr: Expression) -> Optional[Set[int]]:
        probe = Scope(slots)
        compile_expression(expr, probe)  # may raise EngineError -> fallback
        return probe.touched_source_slots

    left_slots = side_slots(conjunct.left)
    right_slots = side_slots(conjunct.right)
    right_range = range(right_start, right_start + right_width)

    def classify(touched: Set[int]) -> Optional[str]:
        if not touched:
            return None
        if all(slot in right_range for slot in touched):
            return "right"
        if all(slot < right_start for slot in touched):
            return "left"
        return None

    left_side = classify(left_slots)
    right_side = classify(right_slots)
    if left_side == "left" and right_side == "right":
        left_expr, right_expr = conjunct.left, conjunct.right
    elif left_side == "right" and right_side == "left":
        left_expr, right_expr = conjunct.right, conjunct.left
    else:
        return False
    join.left_key_fns.append(compile_expression(left_expr, Scope(slots)))
    join.right_key_fns.append(
        compile_expression(right_expr, local_scopes[position + 1]))
    return True
