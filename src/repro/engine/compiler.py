"""Compile expression ASTs into closures over positional row tuples.

The interpreter in :mod:`repro.engine.expressions` evaluates each node
against a per-row dict context built from lowercased column names.  On
the hot path that means one dict allocation and several string lookups
per row.  The compiler replaces both: every :class:`ColumnRef` is
resolved to a tuple slot once, at plan time, and each AST node becomes
a Python closure ``fn(row, params) -> value`` where ``row`` is a flat
tuple of column values.

Compilation is strict: unknown or ambiguous column references raise
:class:`~repro.errors.EngineError` immediately.  The planner catches
those errors and falls back to the interpreted executor, which then
reproduces the exact runtime behaviour (including the "no rows, no
error" cases), so compiled and interpreted execution stay observably
identical.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
    UnaryOp,
    _SCALAR_FUNCTIONS,
    _arith,
    _compare,
    _like_to_regex,
    _three_valued_and,
    _three_valued_or,
)
from repro.errors import EngineError

# A compiled expression: (row_tuple, statement_params) -> value.
CompiledExpr = Callable[[Sequence[Any], Sequence[Any]], Any]


class SlotMap:
    """Plan-time name resolution: column name -> position in the row tuple.

    Sources are appended in FROM-clause order; each contributes one slot
    per column.  Qualified names (``alias.column``) from a later source
    shadow earlier ones (mirroring context-merge semantics), unqualified
    names that appear in more than one source become ambiguous.
    """

    def __init__(self) -> None:
        self.slots: Dict[str, int] = {}
        self.ambiguous: Set[str] = set()
        self.width = 0
        # alias -> (start slot, column count), in FROM order
        self.sources: List[Tuple[str, int, int]] = []
        self._unqualified: Set[str] = set()

    def add_source(self, alias: str, column_names: Sequence[str]) -> int:
        """Register one FROM source; returns its starting slot."""
        start = self.width
        alias_key = alias.lower()
        for offset, column in enumerate(column_names):
            name = column.lower()
            self.slots[f"{alias_key}.{name}"] = start + offset
            if name in self.ambiguous:
                continue
            if name in self._unqualified:
                # Bare name claimed by an earlier source: ambiguous.
                self.ambiguous.add(name)
                self.slots.pop(name, None)
            else:
                self._unqualified.add(name)
                self.slots[name] = start + offset
        self.width += len(column_names)
        self.sources.append((alias, start, len(column_names)))
        return start

    def resolve(self, name: str) -> int:
        key = name.lower()
        slot = self.slots.get(key)
        if slot is not None:
            return slot
        if key in self.ambiguous:
            raise EngineError(f"ambiguous column reference {name!r}")
        raise EngineError(f"unknown column {name!r} in expression")

    def source_of_slot(self, slot: int) -> int:
        """Index (in FROM order) of the source owning ``slot``."""
        for position, (_alias, start, width) in enumerate(self.sources):
            if start <= slot < start + width:
                return position
        raise EngineError(f"slot {slot} belongs to no source")


class Scope:
    """Everything a compilation may resolve against.

    ``slots`` covers the FROM sources; ``agg_slots`` maps aggregate
    result keys to appended slots (grouped execution); ``alias_slots``
    maps projected output names to slots appended after everything else
    (ORDER BY may reference output aliases).  ``touched_source_slots``
    records which source slots any compiled expression read — the plan
    uses it to reproduce the interpreter's behaviour for aggregate
    queries over zero rows.
    """

    def __init__(self, slots: SlotMap,
                 agg_slots: Optional[Dict[str, int]] = None,
                 alias_slots: Optional[Dict[str, int]] = None):
        self.slots = slots
        self.agg_slots = agg_slots or {}
        self.alias_slots = alias_slots or {}
        self.touched_source_slots: Set[int] = set()

    def resolve(self, name: str) -> int:
        key = name.lower()
        slot = self.slots.slots.get(key)
        if slot is not None:
            self.touched_source_slots.add(slot)
            return slot
        if key in self.slots.ambiguous:
            raise EngineError(f"ambiguous column reference {name!r}")
        alias_slot = self.alias_slots.get(key)
        if alias_slot is not None:
            return alias_slot
        raise EngineError(f"unknown column {name!r} in expression")

    def aggregate(self, call: AggregateCall) -> int:
        key = call.result_key()
        slot = self.agg_slots.get(key)
        if slot is None:
            raise EngineError(
                f"aggregate {call.name} used outside a grouped query")
        return slot


def compile_expression(expr, scope: Scope) -> CompiledExpr:
    """Compile ``expr`` into a closure over ``(row, params)``."""
    if isinstance(expr, Literal):
        value = expr.value

        def run_literal(row, params):
            return value
        # Plan nodes peek at ``_const`` to fold constants into
        # specialized comparison closures.
        run_literal._const = value
        return run_literal

    if isinstance(expr, Parameter):
        index = expr.index

        def run_param(row, params):
            try:
                return params[index]
            except IndexError as exc:
                raise EngineError(
                    f"statement needs parameter #{index + 1} "
                    f"but only {len(params)} were supplied") from exc
        return run_param

    if isinstance(expr, ColumnRef):
        slot = scope.resolve(expr.name)

        def run_column(row, params):
            return row[slot]
        # Plan nodes peek at ``_slot`` to index rows directly instead of
        # paying a closure call per row on hot paths (join keys, group
        # keys, aggregate arguments, projections).
        run_column._slot = slot
        return run_column

    if isinstance(expr, AggregateCall):
        slot = scope.aggregate(expr)

        def run_aggregate(row, params):
            return row[slot]
        run_aggregate._slot = slot
        return run_aggregate

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, scope)

    if isinstance(expr, UnaryOp):
        operand = compile_expression(expr.operand, scope)
        op = expr.op
        if op == "NOT":
            def run_not(row, params):
                value = operand(row, params)
                if value is None:
                    return None
                return not value
            return run_not
        if op == "-":
            def run_neg(row, params):
                value = operand(row, params)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise EngineError("unary '-' requires a numeric operand")
                return -value
            return run_neg
        if op == "+":
            def run_pos(row, params):
                value = operand(row, params)
                if value is None:
                    return None
                return value
            return run_pos
        raise EngineError(f"unknown unary operator {op!r}")  # pragma: no cover

    if isinstance(expr, IsNull):
        operand = compile_expression(expr.operand, scope)
        if expr.negated:
            return lambda row, params: operand(row, params) is not None
        return lambda row, params: operand(row, params) is None

    if isinstance(expr, InList):
        operand = compile_expression(expr.operand, scope)
        options = [compile_expression(option, scope)
                   for option in expr.options]
        negated = expr.negated

        def run_in(row, params):
            value = operand(row, params)
            if value is None:
                return None
            saw_null = False
            for option in options:
                candidate = option(row, params)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated
        return run_in

    if isinstance(expr, Between):
        operand = compile_expression(expr.operand, scope)
        low = compile_expression(expr.low, scope)
        high = compile_expression(expr.high, scope)
        negated = expr.negated

        def run_between(row, params):
            value = operand(row, params)
            result = _three_valued_and(
                _compare(">=", value, low(row, params)),
                _compare("<=", value, high(row, params)))
            if result is None:
                return None
            return not result if negated else result
        return run_between

    if isinstance(expr, Like):
        operand = compile_expression(expr.operand, scope)
        negated = expr.negated
        if isinstance(expr.pattern, Literal) \
                and isinstance(expr.pattern.value, str):
            regex = _like_to_regex(expr.pattern.value)

            def run_like_const(row, params):
                value = operand(row, params)
                if value is None:
                    return None
                if not isinstance(value, str):
                    raise EngineError("LIKE requires TEXT operands")
                result = regex.match(value) is not None
                return not result if negated else result
            return run_like_const
        pattern = compile_expression(expr.pattern, scope)

        def run_like(row, params):
            value = operand(row, params)
            text = pattern(row, params)
            if value is None or text is None:
                return None
            if not isinstance(value, str) or not isinstance(text, str):
                raise EngineError("LIKE requires TEXT operands")
            result = _like_to_regex(text).match(value) is not None
            return not result if negated else result
        return run_like

    if isinstance(expr, CaseExpr):
        branches = [
            (compile_expression(condition, scope),
             compile_expression(result, scope))
            for condition, result in expr.branches
        ]
        default = None if expr.default is None \
            else compile_expression(expr.default, scope)

        def run_case(row, params):
            for condition, result in branches:
                if condition(row, params) is True:
                    return result(row, params)
            if default is not None:
                return default(row, params)
            return None
        return run_case

    if isinstance(expr, FunctionCall):
        fn = _SCALAR_FUNCTIONS.get(expr.name.upper())
        if fn is None:
            raise EngineError(f"unknown function {expr.name!r}")
        args = [compile_expression(arg, scope) for arg in expr.args]

        def run_fn(row, params):
            return fn(*[arg(row, params) for arg in args])
        return run_fn

    if isinstance(expr, Star):
        raise EngineError("'*' cannot be evaluated as a value")

    raise EngineError(
        f"cannot compile expression {type(expr).__name__}")


def _compile_binary(expr: BinaryOp, scope: Scope) -> CompiledExpr:
    left = compile_expression(expr.left, scope)
    right = compile_expression(expr.right, scope)
    op = expr.op
    # Like the interpreter, AND/OR evaluate both sides (no short
    # circuit) so side errors surface identically on both paths.
    if op == "AND":
        return lambda row, params: _three_valued_and(
            left(row, params), right(row, params))
    if op == "OR":
        return lambda row, params: _three_valued_or(
            left(row, params), right(row, params))
    if op in ("=", "!=", "<>"):
        want = op == "="
        specialized = _equality_slot_const(left, right, want)
        if specialized is not None:
            return specialized

        def run_eq(row, params):
            l_value = left(row, params)
            r_value = right(row, params)
            if l_value is None or r_value is None:
                return None
            return (l_value == r_value) is want
        return run_eq
    if op in ("<", "<=", ">", ">="):
        compare = _CMP_OPS[op]
        specialized = _ordering_slot_const(op, compare, left, right)
        if specialized is not None:
            return specialized

        # Fast path mirrors ``is_comparable`` exactly: the same class is
        # always comparable (bool/bool included) and plain int/float mix
        # freely; everything else goes through _compare for the precise
        # "cannot compare X with Y" error.
        def run_cmp(row, params):
            l_value = left(row, params)
            r_value = right(row, params)
            if l_value is None or r_value is None:
                return None
            l_cls = l_value.__class__
            r_cls = r_value.__class__
            if l_cls is r_cls or (
                    (l_cls is int or l_cls is float)
                    and (r_cls is int or r_cls is float)):
                return compare(l_value, r_value)
            return _compare(op, l_value, r_value)
        return run_cmp
    return lambda row, params: _arith(
        op, left(row, params), right(row, params))


_CMP_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _slot_const(left: CompiledExpr, right: CompiledExpr):
    """``(slot, const, flipped)`` when one side is a column read and the
    other a literal — the shape almost every pushed filter takes."""
    slot = getattr(left, "_slot", None)
    if slot is not None and hasattr(right, "_const"):
        return slot, right._const, False
    slot = getattr(right, "_slot", None)
    if slot is not None and hasattr(left, "_const"):
        return slot, left._const, True
    return None


def _equality_slot_const(left: CompiledExpr, right: CompiledExpr,
                         want: bool) -> Optional[CompiledExpr]:
    shape = _slot_const(left, right)
    if shape is None:
        return None
    slot, const, _flipped = shape
    if const is None:
        return lambda row, params: None

    def run_eq_slot_const(row, params):
        value = row[slot]
        if value is None:
            return None
        return (value == const) is want
    return run_eq_slot_const


def _ordering_slot_const(op: str, compare, left: CompiledExpr,
                         right: CompiledExpr) -> Optional[CompiledExpr]:
    shape = _slot_const(left, right)
    if shape is None:
        return None
    slot, const, flipped = shape
    if const is None:
        return lambda row, params: None
    const_cls = const.__class__
    const_numeric = const_cls is int or const_cls is float

    if flipped:  # literal OP column
        def run_cmp_const_slot(row, params):
            value = row[slot]
            if value is None:
                return None
            value_cls = value.__class__
            if value_cls is const_cls or (
                    const_numeric
                    and (value_cls is int or value_cls is float)):
                return compare(const, value)
            return _compare(op, const, value)
        return run_cmp_const_slot

    def run_cmp_slot_const(row, params):
        value = row[slot]
        if value is None:
            return None
        value_cls = value.__class__
        if value_cls is const_cls or (
                const_numeric
                and (value_cls is int or value_cls is float)):
            return compare(value, const)
        return _compare(op, value, const)
    return run_cmp_slot_const
