"""Write-ahead logging: crash-consistent durability for the engine.

PR 4 made whole-database snapshots atomic; this module closes the
durability gap *between* snapshots.  Every committed mutation is
appended to a per-database redo log before the commit is acknowledged,
so a process that dies at any byte of any write can be recovered to
exactly the prefix of transactions whose commit record reached the
file — never a torn row, never a lost acknowledged commit (at
``fsync='always'``).

The on-disk format is deliberately boring:

* an 8-byte magic header (``ODBISWAL``);
* then framed records — a 4-byte big-endian payload length, a 4-byte
  CRC32 of the payload, and the pickled payload itself.

A reader walks frames until it runs out of intact bytes; a short
header, a short payload or a checksum mismatch ends the scan *there*
(everything before it is trusted, everything from it on is the torn
tail a crash left).  Two record vocabularies share the framing:

* the engine WAL (:class:`WriteAheadLog`) writes ``("op", redo_op)``
  records followed by one ``("commit", n)`` record per transaction —
  an ``executemany`` batch or an explicit BEGIN…COMMIT scope is one
  commit record, so recovery replays all of it or none of it;
* platform journals (:class:`JournalLog`) append one self-contained
  record per event (scheduler runs, dead letters, tenant
  registrations) and replay whatever prefix survives.

The ``fsync`` policy knob trades latency for the durability window:
``always`` fsyncs every commit (nothing acknowledged is ever lost),
``batch`` fsyncs every ``batch_size`` commits (a crash may lose the
unsynced suffix, but what the OS wrote back survives), ``off`` never
fsyncs (crash consistency still holds — the log is self-validating —
but an OS-level power cut may roll further back).

Crash-point injection rides the same write path: when a
:class:`~repro.core.resilience.FaultInjector` with a registered crash
point is attached, the append writes exactly the bytes up to the
crash offset and raises :class:`~repro.errors.CrashPoint`, so the
chaos battery can kill the "process" at every byte of the log and
assert the recovery invariant deterministically.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from repro.errors import WalError

#: File magic: identifies (and versions) the framed-log format.
MAGIC = b"ODBISWAL"

#: Frame header: payload length then CRC32, both unsigned big-endian.
_FRAME = struct.Struct(">II")

#: The three fsync-on-commit policies, strictest first.
FSYNC_POLICIES = ("always", "batch", "off")

#: Commits between fsyncs under the ``batch`` policy.  Calibrated so
#: the amortized fsync cost stays well under the per-statement work of
#: even the cheapest autocommit insert (the E15 bound is 3x).
DEFAULT_BATCH_SIZE = 16


def _fsync_directory(directory: Union[str, Path]) -> None:
    """Best-effort fsync of a directory (persists renames/creates).

    ``os.replace`` makes a snapshot swap atomic, but the *rename
    itself* lives in the directory inode and can be lost on power
    failure unless the directory is fsynced too.  Platforms without
    directory file descriptors (or filesystems that refuse to fsync
    them) are forgiven — the call is then a no-op, which is the best
    the platform offers.
    """
    flags = getattr(os, "O_DIRECTORY", None)
    if flags is None:  # pragma: no cover - non-POSIX platforms
        return
    try:
        fd = os.open(str(directory), flags)
    except OSError:  # pragma: no cover - unreadable parent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs refuses dir fsync
        pass
    finally:
        os.close(fd)


def frame_record(payload: Any) -> bytes:
    """One framed record: length + CRC32 + pickled payload."""
    data = pickle.dumps(payload)
    return _FRAME.pack(len(data), zlib.crc32(data)) + data


def scan_frames(data: bytes) \
        -> Tuple[List[Tuple[Any, int]], int, Optional[str]]:
    """Walk framed records in ``data`` (which includes the magic).

    Returns ``(entries, good_length, tail_reason)`` where ``entries``
    pairs each intact record with the byte offset just past its frame,
    ``good_length`` is the last trustworthy byte offset, and
    ``tail_reason`` says why the scan stopped early (``None`` when the
    whole file is intact): ``torn-header``, ``torn-record`` or
    ``bad-checksum``.  A file whose first bytes are not the magic is a
    format error, not a crash artifact, and raises
    :class:`~repro.errors.WalError`.
    """
    if len(data) < len(MAGIC):
        # The magic itself was torn: nothing in the file is usable.
        return [], 0, "torn-header" if data else None
    if data[: len(MAGIC)] != MAGIC:
        raise WalError(
            f"bad log magic {data[:len(MAGIC)]!r}; not a "
            f"repro write-ahead log")
    entries: List[Tuple[Any, int]] = []
    offset = len(MAGIC)
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return entries, offset, "torn-header"
        length, checksum = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            return entries, offset, "torn-record"
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            return entries, offset, "bad-checksum"
        try:
            record = pickle.loads(payload)
        except Exception:
            # A checksummed-but-unloadable payload means the writer
            # died mid-pickle semantics cannot produce; still treat
            # it as the start of the untrusted tail.
            return entries, offset, "bad-checksum"
        offset = end
        entries.append((record, offset))
    return entries, offset, None


def read_log(path: Union[str, Path]) \
        -> Tuple[List[Tuple[Any, int]], int, Optional[str]]:
    """:func:`scan_frames` over a file; a missing file is empty."""
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return [], 0, None
    return scan_frames(data)


class _AppendLog:
    """Shared machinery: a framed append-only file with fsync policy.

    Opening the log scans the existing file, remembers the intact
    records, and truncates the torn tail away so new appends continue
    from the last trustworthy byte.  All writes funnel through
    :meth:`_write`, which is where crash-point injection cuts the
    byte stream.
    """

    def __init__(self, path: Union[str, Path], fsync: str = "always",
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 faults=None, site: str = "wal.append"):
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{', '.join(FSYNC_POLICIES)}")
        if batch_size < 1:
            raise WalError("batch_size must be >= 1")
        self.path = Path(path)
        self.fsync = fsync
        self.batch_size = batch_size
        self.faults = faults
        self.site = site
        entries, good_length, tail_reason = read_log(self.path)
        self.recovered: List[Any] = [record for record, _ in entries]
        self.recovered_entries: List[Tuple[Any, int]] = entries
        self.tail_reason = tail_reason
        self.discarded_tail_bytes = 0
        self._open_at(good_length)
        self._unsynced = 0

    def _open_at(self, good_length: int) -> None:
        """Truncate the torn tail and position for appends."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = good_length == 0
        self._handle = open(self.path, "r+b" if self.path.exists()
                            else "w+b")
        if fresh:
            self._handle.truncate(0)
            self._handle.write(MAGIC)
            self._handle.flush()
            self._offset = len(MAGIC)
        else:
            size = self.path.stat().st_size
            if size > good_length:
                self.discarded_tail_bytes = size - good_length
                self._handle.truncate(good_length)
            self._handle.seek(good_length)
            self._offset = good_length

    @property
    def offset(self) -> int:
        """Bytes of trusted log written so far (crash survivors)."""
        return self._offset

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (appends now raise WalError).

        A *fenced* shard primary is exactly an attached-but-closed
        log, so liveness probes read this instead of poking a write.
        """
        return self._handle is None

    def _write(self, chunk: bytes) -> None:
        """Append raw bytes, honouring any registered crash point."""
        if self._handle is None:
            raise WalError(f"log {str(self.path)!r} is closed")
        if self.faults is not None:
            cut = self.faults.crash_cut(
                self.site, self._offset, self._offset + len(chunk))
            if cut is not None:
                kept = chunk[: cut - self._offset]
                if kept:
                    self._handle.write(kept)
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._offset = cut
                self.faults.crash(self.site, cut)  # raises CrashPoint
        self._handle.write(chunk)
        self._offset += len(chunk)

    def _commit_written(self) -> None:
        """Flush (always) and fsync (per policy) one commit/record."""
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
            self._unsynced = 0
        elif self.fsync == "batch":
            self._unsynced += 1
            if self._unsynced >= self.batch_size:
                os.fsync(self._handle.fileno())
                self._unsynced = 0
        # "off": the flush above hands bytes to the OS; a process
        # crash loses nothing, only an OS/power crash may.

    def sync(self) -> None:
        """Force an fsync now, whatever the policy."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced = 0

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None


class WriteAheadLog(_AppendLog):
    """The engine's per-database redo log.

    :meth:`commit` appends one framed ``("op", redo_op)`` record per
    mutation and a single ``("commit", n)`` record, as one contiguous
    write, then applies the fsync policy.  ``commits`` counts commit
    records appended since the last :meth:`reset` (checkpoint) — the
    WAL-lag figure the platform health report exposes.
    """

    def __init__(self, path: Union[str, Path], fsync: str = "always",
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 faults=None, site: str = "wal.append"):
        super().__init__(path, fsync=fsync, batch_size=batch_size,
                         faults=faults, site=site)
        self.commits = 0
        #: Highest commit number ever written.  Monotone across
        #: :meth:`reset`, so a snapshot that stores it can tell
        #: recovery exactly which logged transactions it already
        #: contains — the guard against double-apply when a crash
        #: lands between a checkpoint's snapshot and its log reset.
        self.last_number = 0
        #: End offset of each commit record (for boundary schedules).
        self.commit_offsets: List[int] = []
        for record, end in self.recovered_entries:
            if record and record[0] == "commit":
                self.commits += 1
                self.last_number = max(self.last_number, record[1])
                self.commit_offsets.append(end)

    @property
    def next_number(self) -> int:
        """The commit number the next :meth:`commit` will assign.

        MVCC stamps row-version lifetimes with this number *while* the
        transaction is still running (the writer is serialized, so the
        number is fixed the moment the transaction starts mutating);
        publishing it as the committed horizon happens only after the
        commit record is durable.
        """
        return self.last_number + 1

    def commit(self, ops: List[Any]) -> int:
        """Durably log one committed transaction; returns its number."""
        number = self.last_number + 1
        chunk = b"".join(frame_record(("op", op)) for op in ops)
        chunk += frame_record(("commit", number))
        self._write(chunk)
        self.last_number = number
        self.commits += 1
        self.commit_offsets.append(self._offset)
        self._commit_written()
        return number

    def reset(self) -> None:
        """Truncate the log after a checkpoint snapshot landed.

        ``last_number`` survives, so post-checkpoint commits keep
        numbering from where the snapshot left off.
        """
        self.sync()
        self._handle.truncate(len(MAGIC))
        self._handle.seek(len(MAGIC))
        self._offset = len(MAGIC)
        self.commits = 0
        self.commit_offsets = []
        self.sync()
        _fsync_directory(self.path.parent)


def committed_transactions(entries: List[Tuple[Any, int]]) \
        -> Tuple[List[Tuple[int, List[Any]]], int, int]:
    """Group intact WAL entries into committed transactions.

    Returns ``(transactions, committed_length, dangling_ops)``:
    ``transactions`` pairs each commit record's number with its
    op-list, in log order; ``committed_length`` is the byte offset
    just past the last commit record (ops after it are *uncommitted*
    — intact on disk but never acknowledged — and must be discarded);
    ``dangling_ops`` counts them for recovery reporting.
    """
    transactions: List[Tuple[int, List[Any]]] = []
    current: List[Any] = []
    committed_length = 0
    for record, end in entries:
        kind = record[0]
        if kind == "op":
            current.append(record[1])
        elif kind == "commit":
            transactions.append((record[1], current))
            current = []
            committed_length = end
        else:
            raise WalError(f"unknown WAL record kind {kind!r}")
    return transactions, committed_length, len(current)


def committed_prefix(path: Union[str, Path]) \
        -> Tuple[List[Tuple[int, List[Any]]], int, int, Optional[str]]:
    """The committed transactions a log file holds, and where they end.

    The replication-side view of a primary's log: a shipper (a read
    replica tailing the file, or a failover promotion) must act only
    on transactions whose commit record is intact on disk — never on
    the dangling op run or torn tail a crash may have left behind.
    Returns ``(transactions, committed_length, dangling_ops,
    tail_reason)``; ``committed_length`` is clamped up to the magic
    header so truncating to it always leaves a well-formed log.
    """
    entries, good_length, tail_reason = read_log(path)
    transactions, committed_length, dangling = \
        committed_transactions(entries)
    if committed_length < len(MAGIC) and good_length >= len(MAGIC):
        committed_length = len(MAGIC)
    return transactions, committed_length, dangling, tail_reason


class JournalLog(_AppendLog):
    """A platform journal: one self-contained record per event.

    Used by the ETL scheduler (run/quarantine records), the ESB
    dead-letter queue and the tenant registry.  ``recovered`` holds
    the intact prefix found at open time; ``suspended`` silences
    appends while a recovery replay re-executes recorded events, so
    replay cannot duplicate the journal it is reading.
    """

    def __init__(self, path: Union[str, Path], fsync: str = "always",
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 faults=None, site: str = "journal.append"):
        super().__init__(path, fsync=fsync, batch_size=batch_size,
                         faults=faults, site=site)
        self.suspended = False

    def append(self, record: Any) -> None:
        if self.suspended:
            return
        self._write(frame_record(record))
        self._commit_written()
