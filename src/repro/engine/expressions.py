"""Expression AST and evaluator with SQL three-valued logic.

Expressions are evaluated against a *row context*: a mapping from column
names (both qualified ``alias.column`` and unqualified ``column``) to
values, plus the positional statement parameters.  NULL is represented
by ``None``; comparison operators propagate NULL and the boolean
connectives implement Kleene three-valued logic.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.types import is_comparable, sort_key
from repro.errors import EngineError, SqlSyntaxError


class EvalContext:
    """Everything an expression may reference during evaluation."""

    __slots__ = ("values", "params")

    def __init__(self, values: Dict[str, Any], params: Sequence[Any] = ()):
        self.values = values
        self.params = params

    def lookup(self, name: str) -> Any:
        key = name.lower()
        if key in self.values:
            return self.values[key]
        raise EngineError(f"unknown column {name!r} in expression")


class Expression:
    """Base class for AST nodes."""

    def evaluate(self, context: EvalContext) -> Any:
        raise NotImplementedError

    def column_refs(self) -> List[str]:
        """All column names referenced beneath this node."""
        refs: List[str] = []
        self._collect_refs(refs)
        return refs

    def _collect_refs(self, out: List[str]) -> None:
        pass

    def contains_aggregate(self) -> bool:
        return False


@dataclass
class Literal(Expression):
    value: Any

    def evaluate(self, context: EvalContext) -> Any:
        return self.value


@dataclass
class Parameter(Expression):
    index: int

    def evaluate(self, context: EvalContext) -> Any:
        try:
            return context.params[self.index]
        except IndexError as exc:
            raise EngineError(
                f"statement needs parameter #{self.index + 1} "
                f"but only {len(context.params)} were supplied") from exc


@dataclass
class ColumnRef(Expression):
    name: str
    # Source offset of the reference (for analyzer spans); excluded
    # from equality so AST comparisons stay position-insensitive.
    position: Optional[int] = field(default=None, compare=False,
                                    repr=False)

    def evaluate(self, context: EvalContext) -> Any:
        return context.lookup(self.name)

    def _collect_refs(self, out: List[str]) -> None:
        out.append(self.name)


@dataclass
class Star(Expression):
    """``*`` — only valid inside COUNT(*) and SELECT lists."""

    def evaluate(self, context: EvalContext) -> Any:  # pragma: no cover
        raise EngineError("'*' cannot be evaluated as a value")


def _three_valued_and(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _three_valued_or(left: Any, right: Any) -> Any:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _compare(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op in ("!=", "<>"):
        return left != right
    if not is_comparable(left, right):
        raise EngineError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise EngineError(f"unknown comparison operator {op!r}")  # pragma: no cover


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if op == "||":
        if not isinstance(left, str) or not isinstance(right, str):
            raise EngineError("'||' requires TEXT operands")
        return left + right
    if not isinstance(left, (int, float)) or isinstance(left, bool) \
            or not isinstance(right, (int, float)) or isinstance(right, bool):
        raise EngineError(f"arithmetic {op!r} requires numeric operands")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise EngineError("division by zero")
        result = left / right
        if isinstance(left, int) and isinstance(right, int) \
                and result == int(result):
            return int(result)
        return result
    if op == "%":
        if right == 0:
            raise EngineError("division by zero")
        return left % right
    raise EngineError(f"unknown arithmetic operator {op!r}")  # pragma: no cover


@dataclass
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def evaluate(self, context: EvalContext) -> Any:
        op = self.op
        if op == "AND":
            return _three_valued_and(
                self.left.evaluate(context), self.right.evaluate(context))
        if op == "OR":
            return _three_valued_or(
                self.left.evaluate(context), self.right.evaluate(context))
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        return _arith(op, left, right)

    def _collect_refs(self, out: List[str]) -> None:
        self.left._collect_refs(out)
        self.right._collect_refs(out)

    def contains_aggregate(self) -> bool:
        return self.left.contains_aggregate() or self.right.contains_aggregate()


@dataclass
class UnaryOp(Expression):
    op: str
    operand: Expression

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        if self.op == "NOT":
            if value is None:
                return None
            return not value
        if value is None:
            return None
        if self.op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EngineError("unary '-' requires a numeric operand")
            return -value
        if self.op == "+":
            return value
        raise EngineError(f"unknown unary operator {self.op!r}")  # pragma: no cover

    def _collect_refs(self, out: List[str]) -> None:
        self.operand._collect_refs(out)

    def contains_aggregate(self) -> bool:
        return self.operand.contains_aggregate()


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        result = value is None
        return not result if self.negated else result

    def _collect_refs(self, out: List[str]) -> None:
        self.operand._collect_refs(out)

    def contains_aggregate(self) -> bool:
        return self.operand.contains_aggregate()


@dataclass
class InList(Expression):
    operand: Expression
    options: List[Expression]
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        if value is None:
            return None
        saw_null = False
        for option in self.options:
            candidate = option.evaluate(context)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def _collect_refs(self, out: List[str]) -> None:
        self.operand._collect_refs(out)
        for option in self.options:
            option._collect_refs(out)

    def contains_aggregate(self) -> bool:
        return (self.operand.contains_aggregate()
                or any(o.contains_aggregate() for o in self.options))


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        low = self.low.evaluate(context)
        high = self.high.evaluate(context)
        result = _three_valued_and(
            _compare(">=", value, low), _compare("<=", value, high))
        if result is None:
            return None
        return not result if self.negated else result

    def _collect_refs(self, out: List[str]) -> None:
        self.operand._collect_refs(out)
        self.low._collect_refs(out)
        self.high._collect_refs(out)


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, context: EvalContext) -> Any:
        value = self.operand.evaluate(context)
        pattern = self.pattern.evaluate(context)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise EngineError("LIKE requires TEXT operands")
        regex = _like_to_regex(pattern)
        result = regex.match(value) is not None
        return not result if self.negated else result

    def _collect_refs(self, out: List[str]) -> None:
        self.operand._collect_refs(out)
        self.pattern._collect_refs(out)


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


@dataclass
class CaseExpr(Expression):
    """``CASE WHEN cond THEN value ... ELSE value END``."""

    branches: List[Tuple[Expression, Expression]]
    default: Optional[Expression] = None

    def evaluate(self, context: EvalContext) -> Any:
        for condition, result in self.branches:
            if condition.evaluate(context) is True:
                return result.evaluate(context)
        if self.default is not None:
            return self.default.evaluate(context)
        return None

    def _collect_refs(self, out: List[str]) -> None:
        for condition, result in self.branches:
            condition._collect_refs(out)
            result._collect_refs(out)
        if self.default is not None:
            self.default._collect_refs(out)

    def contains_aggregate(self) -> bool:
        for condition, result in self.branches:
            if condition.contains_aggregate() or result.contains_aggregate():
                return True
        return self.default is not None and self.default.contains_aggregate()


_SCALAR_FUNCTIONS = {}


def scalar_function(name):
    def register(fn):
        _SCALAR_FUNCTIONS[name] = fn
        return fn
    return register


@scalar_function("UPPER")
def _fn_upper(value):
    return None if value is None else str(value).upper()


@scalar_function("LOWER")
def _fn_lower(value):
    return None if value is None else str(value).lower()


@scalar_function("LENGTH")
def _fn_length(value):
    return None if value is None else len(str(value))


@scalar_function("ABS")
def _fn_abs(value):
    return None if value is None else abs(value)


@scalar_function("ROUND")
def _fn_round(value, digits=0):
    if value is None:
        return None
    return round(value, int(digits))


@scalar_function("COALESCE")
def _fn_coalesce(*values):
    for value in values:
        if value is not None:
            return value
    return None


@scalar_function("NULLIF")
def _fn_nullif(left, right):
    return None if left == right else left


@scalar_function("SUBSTR")
def _fn_substr(value, start, length=None):
    if value is None:
        return None
    text = str(value)
    begin = int(start) - 1
    if length is None:
        return text[begin:]
    return text[begin:begin + int(length)]


@scalar_function("TRIM")
def _fn_trim(value):
    return None if value is None else str(value).strip()


@scalar_function("YEAR")
def _fn_year(value):
    return None if value is None else value.year


@scalar_function("MONTH")
def _fn_month(value):
    return None if value is None else value.month


@scalar_function("DAY")
def _fn_day(value):
    return None if value is None else value.day


@scalar_function("DATE")
def _fn_date(value):
    if value is None:
        return None
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    return datetime.date.fromisoformat(str(value))


@dataclass
class FunctionCall(Expression):
    name: str
    args: List[Expression]

    def evaluate(self, context: EvalContext) -> Any:
        fn = _SCALAR_FUNCTIONS.get(self.name.upper())
        if fn is None:
            raise EngineError(f"unknown function {self.name!r}")
        values = [arg.evaluate(context) for arg in self.args]
        return fn(*values)

    def _collect_refs(self, out: List[str]) -> None:
        for arg in self.args:
            arg._collect_refs(out)

    def contains_aggregate(self) -> bool:
        return any(arg.contains_aggregate() for arg in self.args)


AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass
class AggregateCall(Expression):
    """An aggregate reference such as ``SUM(amount)`` or ``COUNT(*)``.

    During grouped execution the executor pre-computes each aggregate and
    places the result in the row context under :meth:`result_key`, which
    is what ``evaluate`` reads back.
    """

    name: str
    argument: Expression  # Star() for COUNT(*)
    distinct: bool = False

    def result_key(self) -> str:
        flag = "distinct " if self.distinct else ""
        return f"__agg_{self.name.lower()}({flag}{_expr_text(self.argument)})"

    def evaluate(self, context: EvalContext) -> Any:
        key = self.result_key()
        if key in context.values:
            return context.values[key]
        raise EngineError(
            f"aggregate {self.name} used outside a grouped query")

    def compute(self, contexts: List[EvalContext]) -> Any:
        """Fold the aggregate over the member rows of one group."""
        if isinstance(self.argument, Star):
            if self.name != "COUNT":
                raise EngineError(f"{self.name}(*) is not valid")
            return len(contexts)
        values = [self.argument.evaluate(ctx) for ctx in contexts]
        values = [value for value in values if value is not None]
        if self.distinct:
            unique: List[Any] = []
            seen = set()
            for value in values:
                marker = (type(value).__name__, value)
                if marker not in seen:
                    seen.add(marker)
                    unique.append(value)
            values = unique
        if self.name == "COUNT":
            return len(values)
        if not values:
            return None
        if self.name == "SUM":
            return sum(values)
        if self.name == "AVG":
            return sum(values) / len(values)
        if self.name == "MIN":
            return min(values, key=sort_key)
        if self.name == "MAX":
            return max(values, key=sort_key)
        raise EngineError(f"unknown aggregate {self.name!r}")  # pragma: no cover

    def _collect_refs(self, out: List[str]) -> None:
        if not isinstance(self.argument, Star):
            self.argument._collect_refs(out)

    def contains_aggregate(self) -> bool:
        return True


def _expr_text(expr: Expression) -> str:
    """A stable textual key for an expression (used for aggregate slots)."""
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, ColumnRef):
        return expr.name.lower()
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, BinaryOp):
        return f"({_expr_text(expr.left)}{expr.op}{_expr_text(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op}{_expr_text(expr.operand)})"
    if isinstance(expr, FunctionCall):
        inner = ",".join(_expr_text(arg) for arg in expr.args)
        return f"{expr.name.lower()}({inner})"
    if isinstance(expr, CaseExpr):
        parts = [
            f"when {_expr_text(c)} then {_expr_text(r)}"
            for c, r in expr.branches
        ]
        if expr.default is not None:
            parts.append(f"else {_expr_text(expr.default)}")
        return "case " + " ".join(parts)
    return repr(expr)


def find_aggregates(expr: Expression) -> List[AggregateCall]:
    """All AggregateCall nodes nested anywhere inside ``expr``."""
    found: List[AggregateCall] = []

    def walk(node: Expression) -> None:
        if isinstance(node, AggregateCall):
            found.append(node)
            return
        if isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, FunctionCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, CaseExpr):
            for condition, result in node.branches:
                walk(condition)
                walk(result)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, (IsNull,)):
            walk(node.operand)
        elif isinstance(node, InList):
            walk(node.operand)
            for option in node.options:
                walk(option)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Like):
            walk(node.operand)
            walk(node.pattern)

    walk(expr)
    return found
