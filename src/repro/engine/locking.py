"""Reader-writer locking for the embedded engine.

The ODBIS economics (paper §2) hinge on one shared physical backend
serving many tenants at once, so the engine must admit overlapping
statements safely.  Each :class:`~repro.engine.database.Database`
carries one :class:`ReadWriteLock`; the acquisition mode is chosen
from the parsed statement class:

* SELECT / EXPLAIN (outside a transaction) classify as **shared** —
  but since MVCC landed they normally bypass the lock entirely,
  reading a pinned snapshot of the version chains instead; the shared
  side remains for in-transaction reads (which piggyback on the
  exclusive hold) and for callers that opt out of snapshot reads;
* DML, DDL and transaction scopes take the **exclusive** side — one
  writer at a time.  Writers no longer exclude readers in practice:
  they serialize only against each other, while snapshot readers
  proceed lock-free.

The exclusive side is reentrant per thread, which is what lets an
explicit transaction hold the lock across every statement it runs
(``BEGIN`` acquires, ``COMMIT``/``ROLLBACK`` release), so no other
thread can observe uncommitted state.  The shared side is reentrant
per thread too: readers are tracked per thread ident, so a thread
already inside the shared side may re-enter it even while a writer is
queued — under the old plain-count accounting that re-entry deadlocked
against writer preference.  Waiting writers still gate *new* readers,
so heavy read traffic cannot starve DML.

The lock also exposes an introspection API (:meth:`mode`,
:meth:`holders`) for the runtime concurrency sanitizer
(``repro.analysis.concurrency``), so tooling never has to reach into
the private state.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

#: Lock acquisition modes, as chosen by ``Database._lock_mode``.
SHARED = "shared"
EXCLUSIVE = "exclusive"


class ReadWriteLock:
    """A writer-preference reader-writer lock, reentrant on both sides.

    Invariants: either ``_writer`` is None and any number of readers
    hold the shared side (per-thread reentry depth in ``_readers``),
    or ``_writer`` names the one thread holding the exclusive side
    ``_writer_depth`` times and ``_readers`` is empty.  A thread
    holding the exclusive side may re-acquire either side; the hold is
    released when its depth returns to zero.  Upgrading (shared →
    exclusive in one thread) is refused loudly instead of deadlocking.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        # Thread ident -> shared-side reentry depth.
        self._readers: Dict[int, int] = {}    # guarded-by: _cond
        self._writer: Optional[int] = None    # guarded-by: _cond
        self._writer_depth = 0                # guarded-by: _cond
        self._waiting_writers = 0             # guarded-by: _cond

    # -- shared side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Reads under this thread's exclusive hold piggyback
                # on it (a transaction running SELECTs).
                self._writer_depth += 1
                return
            if me in self._readers:
                # Reentrant shared hold: never queue behind a waiting
                # writer while already inside the shared side — that
                # is a self-deadlock under writer preference.
                self._readers[me] += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._release_exclusive_hold()
                return
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_read without acquire_read")
            if depth == 1:
                del self._readers[me]
            else:
                self._readers[me] = depth - 1
            if not self._readers:
                self._cond.notify_all()

    # -- exclusive side --------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                # Waiting for readers to drain would wait on ourselves.
                raise RuntimeError(
                    "cannot upgrade a shared hold to exclusive; "
                    "release the shared side first")
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError(
                    "release_write by a thread that does not hold "
                    "the exclusive lock")
            self._release_exclusive_hold()

    def _release_exclusive_hold(self) -> None:  # requires: _cond
        self._writer_depth -= 1
        if self._writer_depth == 0:
            self._writer = None
            self._cond.notify_all()

    # -- introspection / scoping ----------------------------------------------

    def mode(self) -> Optional[str]:
        """``EXCLUSIVE``, ``SHARED`` or None (idle) — a snapshot."""
        with self._cond:
            if self._writer is not None:
                return EXCLUSIVE
            if self._readers:
                return SHARED
            return None

    def holders(self) -> Tuple[int, ...]:
        """Idents of the threads currently holding either side.

        One entry per holding thread regardless of reentry depth: the
        exclusive holder alone, or every distinct reader.  The runtime
        sanitizer keys its acquisition history on these instead of
        reaching into the private state.
        """
        with self._cond:
            if self._writer is not None:
                return (self._writer,)
            return tuple(sorted(self._readers))

    def owned_exclusively(self) -> bool:
        """True when the calling thread holds the exclusive side."""
        with self._cond:
            return self._writer == threading.get_ident()

    def require_exclusive(self, what: str) -> None:
        """Assert the calling thread holds the exclusive side.

        The durability layer leans on this: a WAL commit is only
        correct while the writer lock serializes mutations, so the
        flush path asserts the invariant instead of trusting every
        caller to have taken the right mode.
        """
        if not self.owned_exclusively():
            raise RuntimeError(
                f"{what} requires the exclusive side of the "
                f"database lock")

    @contextmanager
    def shared(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def exclusive(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def held(self, mode: str):
        """The scope for one statement: ``SHARED`` or ``EXCLUSIVE``."""
        if mode == SHARED:
            return self.shared()
        if mode == EXCLUSIVE:
            return self.exclusive()
        raise ValueError(f"unknown lock mode {mode!r}")
