"""Reader-writer locking for the embedded engine.

The ODBIS economics (paper §2) hinge on one shared physical backend
serving many tenants at once, so the engine must admit overlapping
statements safely.  Each :class:`~repro.engine.database.Database`
carries one :class:`ReadWriteLock`; the acquisition mode is chosen
from the parsed statement class:

* SELECT / EXPLAIN (outside a transaction) take the **shared** side —
  any number of readers overlap;
* DML, DDL and transaction scopes take the **exclusive** side — one
  writer at a time, excluding all readers.

The exclusive side is reentrant per thread, which is what lets an
explicit transaction hold the lock across every statement it runs
(``BEGIN`` acquires, ``COMMIT``/``ROLLBACK`` release), so no other
thread can observe uncommitted state.  Waiting writers gate new
readers, so heavy read traffic cannot starve DML.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

#: Lock acquisition modes, as chosen by ``Database._lock_mode``.
SHARED = "shared"
EXCLUSIVE = "exclusive"


class ReadWriteLock:
    """A writer-preference reader-writer lock with a reentrant writer.

    Invariants: either ``_writer`` is None and any number of readers
    hold the shared side, or ``_writer`` names the one thread holding
    the exclusive side ``_writer_depth`` times and ``_readers`` is 0.
    A thread holding the exclusive side may re-acquire either side;
    the hold is released when its depth returns to zero.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._waiting_writers = 0

    # -- shared side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Reads under this thread's exclusive hold piggyback
                # on it (a transaction running SELECTs).
                self._writer_depth += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._release_exclusive_hold()
                return
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive side --------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError(
                    "release_write by a thread that does not hold "
                    "the exclusive lock")
            self._release_exclusive_hold()

    def _release_exclusive_hold(self) -> None:
        self._writer_depth -= 1
        if self._writer_depth == 0:
            self._writer = None
            self._cond.notify_all()

    # -- introspection / scoping ----------------------------------------------

    def owned_exclusively(self) -> bool:
        """True when the calling thread holds the exclusive side."""
        with self._cond:
            return self._writer == threading.get_ident()

    def require_exclusive(self, what: str) -> None:
        """Assert the calling thread holds the exclusive side.

        The durability layer leans on this: a WAL commit is only
        correct while the writer lock serializes mutations, so the
        flush path asserts the invariant instead of trusting every
        caller to have taken the right mode.
        """
        if not self.owned_exclusively():
            raise RuntimeError(
                f"{what} requires the exclusive side of the "
                f"database lock")

    @contextmanager
    def shared(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def exclusive(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def held(self, mode: str):
        """The scope for one statement: ``SHARED`` or ``EXCLUSIVE``."""
        if mode == SHARED:
            return self.shared()
        if mode == EXCLUSIVE:
            return self.exclusive()
        raise ValueError(f"unknown lock mode {mode!r}")
