"""Hash indexes with optional uniqueness enforcement.

MVCC makes the buckets *append-mostly*: deleting or updating a row does
not remove its rowid from the bucket of its old key, because a snapshot
reader pinned at an older commit number may still need to find that row
through the index.  Instead every reader verifies a candidate against
the row version it actually fetched (``key_for(row) == key``), so stale
entries are filtered at read time, and uniqueness checks filter by
liveness against the table's live-row dict.  Superseded entries are
physically reclaimed when the storage's version garbage collector
rebuilds the buckets.

Buckets map a key tuple to an immutable *tuple* of rowids and are only
ever replaced whole, so lock-free snapshot readers can look keys up
while a writer appends — they see either the old tuple or the new one,
never a half-mutated set.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConstraintViolation

_Key = Tuple[Any, ...]


class Index:
    """A hash index over one or more columns of a table.

    The index maps a tuple of column values to the rowids that hold (or
    once held) those values.  NULL keys are indexed but never
    participate in uniqueness checks (mirroring SQL semantics where
    NULL != NULL).
    """

    def __init__(self, name: str, column_names: List[str],
                 positions: List[int], unique: bool = False):
        self.name = name
        self.column_names = list(column_names)
        self.positions = list(positions)
        self.unique = unique
        self._buckets: Dict[_Key, Tuple[int, ...]] = {}
        # Maintained entry count: ``__len__`` feeds planner cardinality
        # estimates from lock-free readers, which must never iterate
        # the bucket dict while a writer resizes it.
        self._entries = 0

    def __repr__(self) -> str:
        kind = "UNIQUE " if self.unique else ""
        return f"<{kind}Index {self.name} on ({', '.join(self.column_names)})>"

    def key_for(self, row: List[Any]) -> _Key:
        return tuple(row[position] for position in self.positions)

    def _key_has_null(self, key: _Key) -> bool:
        return any(part is None for part in key)

    def _conflicts(self, key: _Key, rowid: int,
                   live_rows: Optional[Dict[int, List[Any]]]) -> bool:
        """Is some *other live* row already holding ``key``?

        ``live_rows`` is the owning table's live-row dict; bucket
        entries whose rowid is absent from it are MVCC tombstones and
        do not count against uniqueness.  ``None`` falls back to the
        pre-MVCC rule (every entry counts).
        """
        for existing in self._buckets.get(key, ()):
            if existing == rowid:
                continue
            if live_rows is None:
                return True
            row = live_rows.get(existing)
            if row is not None and self.key_for(row) == key:
                return True
        return False

    def check_insert(self, rowid: int, row: List[Any], table: str,
                     live_rows: Optional[Dict[int, List[Any]]] = None) \
            -> None:
        """Raise if inserting ``row`` would violate uniqueness."""
        if not self.unique:
            return
        key = self.key_for(row)
        if self._key_has_null(key):
            return
        if self._conflicts(key, rowid, live_rows):
            columns = ", ".join(self.column_names)
            raise ConstraintViolation(
                f"UNIQUE constraint failed: {table}({columns}) = {key!r}")

    def check_update(self, rowid: int, old_row: List[Any],
                     new_row: List[Any], table: str,
                     live_rows: Optional[Dict[int, List[Any]]] = None) \
            -> None:
        if not self.unique:
            return
        new_key = self.key_for(new_row)
        if self._key_has_null(new_key):
            return
        if self._conflicts(new_key, rowid, live_rows):
            columns = ", ".join(self.column_names)
            raise ConstraintViolation(
                f"UNIQUE constraint failed: {table}({columns}) = {new_key!r}")

    def insert(self, rowid: int, row: List[Any]) -> None:
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = (rowid,)
            self._entries += 1
        elif rowid not in bucket:
            # Whole-tuple replacement keeps concurrent lookups atomic.
            self._buckets[key] = bucket + (rowid,)
            self._entries += 1

    def delete(self, rowid: int, row: List[Any]) -> None:
        """Physically remove one entry (GC and index maintenance only).

        MVCC row mutations never call this — tombstoned entries stay
        until :meth:`rebuild` reclaims them — but dropping a column's
        implicit index or rebuilding after collection does.
        """
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is not None and rowid in bucket:
            remaining = tuple(r for r in bucket if r != rowid)
            if remaining:
                self._buckets[key] = remaining
            else:
                del self._buckets[key]
            self._entries -= 1

    def rebuild(self, entries: Iterable[Tuple[_Key, int]]) -> None:
        """Swap in fresh buckets built from ``(key, rowid)`` pairs.

        The new dict is built on the side and published with one
        attribute store, so readers mid-lookup keep the old buckets.
        """
        fresh: Dict[_Key, Tuple[int, ...]] = {}
        count = 0
        for key, rowid in entries:
            bucket = fresh.get(key)
            if bucket is None:
                fresh[key] = (rowid,)
                count += 1
            elif rowid not in bucket:
                fresh[key] = bucket + (rowid,)
                count += 1
        self._buckets = fresh
        self._entries = count

    def lookup(self, key: _Key) -> Tuple[int, ...]:
        """Rowids whose indexed columns equal (or once equalled) ``key``.

        Callers must verify each candidate against the row version they
        fetch — entries may be MVCC tombstones for superseded versions.
        """
        return self._buckets.get(tuple(key), ())

    def lookup_prefix(self, prefix: _Key) -> Tuple[int, ...]:
        """Rowids whose leading indexed columns equal ``prefix``.

        A hash index cannot seek on a prefix, so this walks the buckets;
        it still wins over a table scan when the residual predicates are
        expensive or the matching fraction is small.
        """
        wanted = tuple(prefix)
        width = len(wanted)
        if width == len(self.positions):
            return self.lookup(wanted)
        out: List[int] = []
        # list() over items() is a single C-level copy, safe against a
        # concurrent writer resizing the dict under a lock-free reader.
        for key, bucket in list(self._buckets.items()):
            if key[:width] == wanted:
                out.extend(bucket)
        return tuple(dict.fromkeys(out))

    def bucket_count(self) -> int:
        """Number of distinct keys (the planner's cardinality estimate)."""
        return len(self._buckets)

    def __len__(self) -> int:
        return self._entries
