"""Hash indexes with optional uniqueness enforcement."""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.errors import ConstraintViolation

_Key = Tuple[Any, ...]


class Index:
    """A hash index over one or more columns of a table.

    The index maps a tuple of column values to the set of rowids holding
    those values.  NULL keys are indexed but never participate in
    uniqueness checks (mirroring SQL semantics where NULL != NULL).
    """

    def __init__(self, name: str, column_names: List[str],
                 positions: List[int], unique: bool = False):
        self.name = name
        self.column_names = list(column_names)
        self.positions = list(positions)
        self.unique = unique
        self._buckets: Dict[_Key, Set[int]] = {}

    def __repr__(self) -> str:
        kind = "UNIQUE " if self.unique else ""
        return f"<{kind}Index {self.name} on ({', '.join(self.column_names)})>"

    def key_for(self, row: List[Any]) -> _Key:
        return tuple(row[position] for position in self.positions)

    def _key_has_null(self, key: _Key) -> bool:
        return any(part is None for part in key)

    def check_insert(self, rowid: int, row: List[Any], table: str) -> None:
        """Raise if inserting ``row`` would violate uniqueness."""
        if not self.unique:
            return
        key = self.key_for(row)
        if self._key_has_null(key):
            return
        existing = self._buckets.get(key)
        if existing:
            columns = ", ".join(self.column_names)
            raise ConstraintViolation(
                f"UNIQUE constraint failed: {table}({columns}) = {key!r}")

    def check_update(self, rowid: int, old_row: List[Any],
                     new_row: List[Any], table: str) -> None:
        if not self.unique:
            return
        new_key = self.key_for(new_row)
        if self._key_has_null(new_key):
            return
        existing = self._buckets.get(new_key, set())
        if existing - {rowid}:
            columns = ", ".join(self.column_names)
            raise ConstraintViolation(
                f"UNIQUE constraint failed: {table}({columns}) = {new_key!r}")

    def insert(self, rowid: int, row: List[Any]) -> None:
        key = self.key_for(row)
        self._buckets.setdefault(key, set()).add(rowid)

    def delete(self, rowid: int, row: List[Any]) -> None:
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: _Key) -> Set[int]:
        """Rowids whose indexed columns equal ``key`` exactly."""
        return set(self._buckets.get(tuple(key), set()))

    def lookup_prefix(self, prefix: _Key) -> Set[int]:
        """Rowids whose leading indexed columns equal ``prefix``.

        A hash index cannot seek on a prefix, so this walks the buckets;
        it still wins over a table scan when the residual predicates are
        expensive or the matching fraction is small.
        """
        wanted = tuple(prefix)
        width = len(wanted)
        if width == len(self.positions):
            return self.lookup(wanted)
        out: Set[int] = set()
        for key, bucket in self._buckets.items():
            if key[:width] == wanted:
                out |= bucket
        return out

    def bucket_count(self) -> int:
        """Number of distinct keys (the planner's cardinality estimate)."""
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
