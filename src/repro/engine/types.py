"""SQL value types and coercion rules for the embedded engine."""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import TypeMismatch


class SqlType(enum.Enum):
    """The column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"

    @classmethod
    def from_sql(cls, name: str) -> "SqlType":
        """Resolve a SQL type name (including common aliases) to a SqlType."""
        normalized = name.strip().upper()
        alias = _TYPE_ALIASES.get(normalized)
        if alias is None:
            raise TypeMismatch(f"unknown SQL type: {name!r}")
        return alias


_TYPE_ALIASES = {
    "INTEGER": SqlType.INTEGER,
    "INT": SqlType.INTEGER,
    "BIGINT": SqlType.INTEGER,
    "SMALLINT": SqlType.INTEGER,
    "SERIAL": SqlType.INTEGER,
    "REAL": SqlType.REAL,
    "FLOAT": SqlType.REAL,
    "DOUBLE": SqlType.REAL,
    "NUMERIC": SqlType.REAL,
    "DECIMAL": SqlType.REAL,
    "TEXT": SqlType.TEXT,
    "VARCHAR": SqlType.TEXT,
    "CHAR": SqlType.TEXT,
    "STRING": SqlType.TEXT,
    "BOOLEAN": SqlType.BOOLEAN,
    "BOOL": SqlType.BOOLEAN,
    "DATE": SqlType.DATE,
    "TIMESTAMP": SqlType.TIMESTAMP,
    "DATETIME": SqlType.TIMESTAMP,
}

_PYTHON_TYPES = {
    SqlType.INTEGER: (int,),
    SqlType.REAL: (float, int),
    SqlType.TEXT: (str,),
    SqlType.BOOLEAN: (bool,),
    SqlType.DATE: (datetime.date,),
    SqlType.TIMESTAMP: (datetime.datetime,),
}


def coerce_value(value: Any, sql_type: SqlType) -> Any:
    """Coerce ``value`` to the Python representation of ``sql_type``.

    ``None`` always passes through (nullability is enforced separately by
    the schema layer).  Reasonable lossless conversions are applied —
    e.g. ``int`` widens to ``float`` for REAL columns, and ISO strings
    parse into dates/timestamps.  Anything else raises TypeMismatch.
    """
    if value is None:
        return None
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeMismatch(f"cannot store {value!r} in an INTEGER column")
    if sql_type is SqlType.REAL:
        if isinstance(value, bool):
            raise TypeMismatch(f"cannot store {value!r} in a REAL column")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeMismatch(f"cannot store {value!r} in a REAL column")
    if sql_type is SqlType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeMismatch(f"cannot store {value!r} in a TEXT column")
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeMismatch(f"cannot store {value!r} in a BOOLEAN column")
    if sql_type is SqlType.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatch(f"bad DATE literal {value!r}") from exc
        raise TypeMismatch(f"cannot store {value!r} in a DATE column")
    if sql_type is SqlType.TIMESTAMP:
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatch(f"bad TIMESTAMP literal {value!r}") from exc
        raise TypeMismatch(f"cannot store {value!r} in a TIMESTAMP column")
    raise TypeMismatch(f"unsupported SQL type {sql_type!r}")  # pragma: no cover


def is_comparable(left: Any, right: Any) -> bool:
    """True when the engine defines ``<`` / ``>`` between the two values."""
    if left is None or right is None:
        return False
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return type(left) is type(right)


def sort_key(value: Any) -> tuple:
    """Total ordering key: NULLs first, then by type group, then value."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, float(value))
    if isinstance(value, str):
        return (1, 2, value)
    if isinstance(value, datetime.datetime):
        return (1, 4, value.isoformat())
    if isinstance(value, datetime.date):
        return (1, 3, value.isoformat())
    return (1, 9, repr(value))
