"""Schema objects (columns, tables) and the database catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.engine.types import SqlType, coerce_value
from repro.errors import CatalogError, ConstraintViolation

# ``ColumnType`` is the public alias used throughout the library.
ColumnType = SqlType


@dataclass
class Column:
    """One column of a table schema."""

    name: str
    type: SqlType
    nullable: bool = True
    primary_key: bool = False
    unique: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.primary_key:
            self.nullable = False
            self.unique = True
        if self.default is not None:
            self.default = coerce_value(self.default, self.type)


class TableSchema:
    """The definition of a table: ordered columns plus constraints."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        seen = set()
        for column in columns:
            key = column.name.lower()
            if key in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {name!r}")
            seen.add(key)
        self.name = name
        self.columns: List[Column] = list(columns)
        self._by_name: Dict[str, int] = {
            column.name.lower(): index
            for index, column in enumerate(self.columns)
        }
        self._lower_names: List[str] = list(self._by_name)
        self.primary_key: List[str] = [
            column.name for column in self.columns if column.primary_key
        ]

    def __repr__(self) -> str:
        names = ", ".join(column.name for column in self.columns)
        return f"TableSchema({self.name!r}: {names})"

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def lower_names(self) -> List[str]:
        """Lowercased column names in order, computed once per schema."""
        names = getattr(self, "_lower_names", None)
        if names is None:  # schemas unpickled from older snapshots
            names = [column.name.lower() for column in self.columns]
            self._lower_names = names
        return names

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        index = self._by_name.get(name.lower())
        if index is None:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}")
        return self.columns[index]

    def column_index(self, name: str) -> int:
        index = self._by_name.get(name.lower())
        if index is None:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}")
        return index

    def add_column(self, column: Column) -> None:
        """Append a column (ALTER TABLE ADD COLUMN support)."""
        key = column.name.lower()
        if key in self._by_name:
            raise CatalogError(
                f"table {self.name!r} already has column {column.name!r}")
        if column.primary_key:
            raise CatalogError(
                "cannot add a primary-key column to an existing table")
        self._by_name[key] = len(self.columns)
        self.columns.append(column)
        self._lower_names.append(key)

    def coerce_row(self, values: Dict[str, Any]) -> List[Any]:
        """Build a full storage row from a column->value mapping.

        Missing columns take their default (or NULL).  Values are coerced
        to the column type; NOT NULL violations raise ConstraintViolation.
        """
        unknown = [key for key in values if not self.has_column(key)]
        if unknown:
            raise CatalogError(
                f"table {self.name!r} has no column {unknown[0]!r}")
        row: List[Any] = []
        provided = {key.lower(): value for key, value in values.items()}
        for column in self.columns:
            key = column.name.lower()
            if key in provided:
                value = coerce_value(provided[key], column.type)
            else:
                value = column.default
            if value is None and not column.nullable:
                raise ConstraintViolation(
                    f"column {self.name}.{column.name} is NOT NULL")
            row.append(value)
        return row


class Catalog:
    """The set of tables (and their indexes) known to one database."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableSchema] = {}

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def add_table(self, schema: TableSchema) -> None:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = schema

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no such table: {name!r}")
        del self._tables[key]

    def table(self, name: str) -> TableSchema:
        schema = self._tables.get(name.lower())
        if schema is None:
            raise CatalogError(f"no such table: {name!r}")
        return schema

    def __iter__(self) -> Iterable[TableSchema]:
        return iter(self._tables.values())


def make_schema(name: str,
                column_specs: Sequence[tuple],
                primary_key: Optional[str] = None) -> TableSchema:
    """Convenience constructor used by higher layers and tests.

    ``column_specs`` is a sequence of ``(name, type_name)`` or
    ``(name, type_name, nullable)`` tuples.
    """
    columns = []
    for spec in column_specs:
        if len(spec) == 2:
            col_name, type_name = spec
            nullable = True
        else:
            col_name, type_name, nullable = spec
        columns.append(Column(
            name=col_name,
            type=SqlType.from_sql(type_name),
            nullable=nullable,
            primary_key=(primary_key is not None
                         and col_name.lower() == primary_key.lower()),
        ))
    return TableSchema(name, columns)
