"""Synthetic retail star-schema workload (MDDWS / OLAP scenarios)."""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Tuple

from repro.engine.database import Database

CATEGORIES = {
    "Food": ("bread", "milk", "cheese", "coffee"),
    "Electronics": ("phone", "laptop", "headphones"),
    "Clothing": ("shirt", "jacket", "shoes"),
}
REGIONS = {
    "North": ("Lille", "Amiens"),
    "South": ("Nice", "Marseille"),
    "West": ("Nantes", "Brest"),
}
_PRICES = {
    "bread": 2.5, "milk": 1.2, "cheese": 8.0, "coffee": 6.5,
    "phone": 600.0, "laptop": 1100.0, "headphones": 90.0,
    "shirt": 25.0, "jacket": 120.0, "shoes": 80.0,
}


class RetailWorkload:
    """Builds and populates the retail star schema."""

    def __init__(self, seed: int = 11,
                 start: datetime.date = datetime.date(2009, 1, 1),
                 days: int = 730):
        self.seed = seed
        self.start = start
        self.days = days

    # -- star schema -----------------------------------------------------------

    def create_star_schema(self, database: Database) -> None:
        database.execute(
            "CREATE TABLE dim_time (time_key INTEGER PRIMARY KEY, "
            "year INTEGER, quarter TEXT, month TEXT, day DATE)")
        database.execute(
            "CREATE TABLE dim_product (product_key INTEGER PRIMARY KEY, "
            "category TEXT, sku TEXT)")
        database.execute(
            "CREATE TABLE dim_store (store_key INTEGER PRIMARY KEY, "
            "region TEXT, city TEXT)")
        database.execute(
            "CREATE TABLE fact_sales (time_key INTEGER NOT NULL, "
            "product_key INTEGER NOT NULL, store_key INTEGER NOT NULL, "
            "revenue REAL, quantity INTEGER)")

    def _time_rows(self) -> List[Tuple]:
        rows = []
        for offset in range(self.days):
            day = self.start + datetime.timedelta(days=offset)
            quarter = f"Q{(day.month - 1) // 3 + 1}"
            rows.append((offset + 1, day.year, quarter,
                         f"{day.year}-{day.month:02d}", day))
        return rows

    def _product_rows(self) -> List[Tuple]:
        rows = []
        key = 1
        for category, skus in CATEGORIES.items():
            for sku in skus:
                rows.append((key, category, sku))
                key += 1
        return rows

    def _store_rows(self) -> List[Tuple]:
        rows = []
        key = 1
        for region, cities in REGIONS.items():
            for city in cities:
                rows.append((key, region, city))
                key += 1
        return rows

    def populate(self, database: Database,
                 fact_rows: int = 5000) -> Dict[str, int]:
        """Fill dimensions and generate ``fact_rows`` sales facts."""
        rng = random.Random(self.seed)
        time_rows = self._time_rows()
        product_rows = self._product_rows()
        store_rows = self._store_rows()
        database.executemany(
            "INSERT INTO dim_time VALUES (?, ?, ?, ?, ?)", time_rows)
        database.executemany(
            "INSERT INTO dim_product VALUES (?, ?, ?)", product_rows)
        database.executemany(
            "INSERT INTO dim_store VALUES (?, ?, ?)", store_rows)

        facts = []
        for _ in range(fact_rows):
            product = rng.choice(product_rows)
            quantity = rng.randint(1, 8)
            unit_price = _PRICES[product[2]] * rng.uniform(0.9, 1.1)
            facts.append((
                rng.randint(1, len(time_rows)),
                product[0],
                rng.randint(1, len(store_rows)),
                round(unit_price * quantity, 2),
                quantity,
            ))
        database.executemany(
            "INSERT INTO fact_sales VALUES (?, ?, ?, ?, ?)", facts)
        return {
            "dim_time": len(time_rows),
            "dim_product": len(product_rows),
            "dim_store": len(store_rows),
            "fact_sales": len(facts),
        }

    def build(self, database: Database,
              fact_rows: int = 5000) -> Dict[str, int]:
        """Create and populate in one call."""
        self.create_star_schema(database)
        return self.populate(database, fact_rows)

    def cube_definition(self) -> Dict:
        """A cube definition matching the star schema (for the AS)."""
        return {
            "name": "RetailSales",
            "fact_table": "fact_sales",
            "measures": [
                {"name": "revenue", "column": "revenue",
                 "aggregator": "sum"},
                {"name": "quantity", "column": "quantity",
                 "aggregator": "sum"},
            ],
            "dimensions": [
                {"name": "Time", "table": "dim_time",
                 "key": "time_key",
                 "levels": ["year", "quarter", "month"]},
                {"name": "Product", "table": "dim_product",
                 "key": "product_key", "levels": ["category", "sku"]},
                {"name": "Store", "table": "dim_store",
                 "key": "store_key", "levels": ["region", "city"]},
            ],
        }
