"""Synthetic workloads and cost models.

The paper has no public datasets; these generators produce
deterministic (seeded) stand-ins:

* :mod:`repro.workloads.healthcare` — hospital admissions for the
  Fig. 6 dashboard scenario,
* :mod:`repro.workloads.retail` — retail sales star-schema data for
  the MDDWS / OLAP scenarios,
* :mod:`repro.workloads.tenants` — SaaS tenant populations and their
  activity, for the multi-tenancy experiments,
* :mod:`repro.workloads.tco` — on-premises vs SaaS cost models for
  the paper's §2 TCO/ROI claims (experiment E8).
"""

from repro.workloads.healthcare import HealthcareWorkload
from repro.workloads.retail import RetailWorkload
from repro.workloads.tco import (
    OnPremisesCostModel,
    SaasCostModel,
    UsageProfile,
    crossover_month,
    cumulative_costs,
)
from repro.workloads.tenants import TenantProfile, TenantWorkload

__all__ = [
    "HealthcareWorkload",
    "OnPremisesCostModel",
    "RetailWorkload",
    "SaasCostModel",
    "TenantProfile",
    "TenantWorkload",
    "UsageProfile",
    "crossover_month",
    "cumulative_costs",
]
