"""Synthetic hospital-admissions workload (the Fig. 6 scenario).

Deterministic under a seed: the same seed always yields the same
admissions, so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List

from repro.engine.database import Database

DEPARTMENTS = ("cardiology", "oncology", "pediatrics",
               "emergency", "surgery", "maternity")
AGE_GROUPS = ("0-17", "18-39", "40-64", "65+")
SEVERITIES = ("low", "medium", "high")
REGIONS = ("North", "South", "East", "West")

# Plausible relative weights so the dashboard shows structure, not noise.
_DEPT_WEIGHTS = (18, 12, 14, 30, 16, 10)
_SEVERITY_WEIGHTS = (55, 32, 13)
_BASE_COST = {"low": 900.0, "medium": 3200.0, "high": 11_000.0}


class HealthcareWorkload:
    """Generates admissions and loads them into the embedded engine."""

    def __init__(self, seed: int = 7,
                 start: datetime.date = datetime.date(2009, 1, 1),
                 days: int = 365):
        self.seed = seed
        self.start = start
        self.days = days

    def admissions(self, count: int) -> List[Dict]:
        """``count`` admission rows, deterministic per seed."""
        rng = random.Random(self.seed)
        rows: List[Dict] = []
        for index in range(count):
            department = rng.choices(DEPARTMENTS, _DEPT_WEIGHTS)[0]
            severity = rng.choices(SEVERITIES, _SEVERITY_WEIGHTS)[0]
            admitted = self.start + datetime.timedelta(
                days=rng.randrange(self.days))
            stay = max(1, round(rng.gauss(
                {"low": 2, "medium": 5, "high": 12}[severity], 2)))
            cost = round(_BASE_COST[severity]
                         * rng.uniform(0.7, 1.5) + stay * 450.0, 2)
            rows.append({
                "admission_id": index + 1,
                "department": department,
                "region": rng.choice(REGIONS),
                "age_group": rng.choices(
                    AGE_GROUPS, (15, 30, 33, 22))[0],
                "severity": severity,
                "admitted": admitted,
                "length_of_stay": stay,
                "cost": cost,
            })
        return rows

    def schema_ddl(self) -> str:
        return (
            "CREATE TABLE admissions ("
            "admission_id INTEGER PRIMARY KEY, "
            "department TEXT NOT NULL, "
            "region TEXT NOT NULL, "
            "age_group TEXT NOT NULL, "
            "severity TEXT NOT NULL, "
            "admitted DATE NOT NULL, "
            "length_of_stay INTEGER NOT NULL, "
            "cost REAL NOT NULL)")

    def load(self, database: Database, count: int = 1000) -> int:
        """Create and populate the admissions table; returns row count."""
        database.execute(self.schema_ddl())
        rows = self.admissions(count)
        database.executemany(
            "INSERT INTO admissions VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [(row["admission_id"], row["department"], row["region"],
              row["age_group"], row["severity"], row["admitted"],
              row["length_of_stay"], row["cost"])
             for row in rows])
        return len(rows)
