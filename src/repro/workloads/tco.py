"""Total-cost-of-ownership models: on-premises vs SaaS (experiment E8).

The paper's Section 2 claims SaaS BI lowers TCO because (i) licensing
is usage-aligned instead of CPU/server-aligned, (ii) no hardware or IT
overhead, (iii) economies of scale.  These models quantify both
deployment styles over a horizon of months so the claim becomes a
measurable crossover analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class UsageProfile:
    """How a customer's BI usage evolves."""

    initial_users: int
    user_growth_per_year: float = 0.0  # fractional, e.g. 0.2 = +20 %/yr

    def users_at_month(self, month: int) -> int:
        grown = self.initial_users \
            * (1.0 + self.user_growth_per_year) ** (month / 12.0)
        return max(1, round(grown))


@dataclass
class OnPremisesCostModel:
    """Traditional licensing: big upfront costs, step-wise scaling.

    Servers are sized in user blocks: every ``users_per_server`` users
    force another server (hardware + per-CPU licence) — the paper's
    point that costs scale with infrastructure, not usage.
    """

    license_per_cpu: float = 25_000.0
    cpus_per_server: int = 4
    hardware_per_server: float = 12_000.0
    users_per_server: int = 50
    annual_maintenance_rate: float = 0.20  # of licence base
    it_staff_monthly: float = 6_000.0
    training_upfront: float = 8_000.0

    def servers_needed(self, users: int) -> int:
        return max(1, -(-users // self.users_per_server))  # ceil div

    def monthly_costs(self, profile: UsageProfile,
                      months: int) -> List[float]:
        costs: List[float] = []
        owned_servers = 0
        license_base = 0.0
        for month in range(months):
            cost = 0.0
            if month == 0:
                cost += self.training_upfront
            needed = self.servers_needed(profile.users_at_month(month))
            if needed > owned_servers:
                added = needed - owned_servers
                cost += added * self.hardware_per_server
                added_license = (added * self.cpus_per_server
                                 * self.license_per_cpu)
                cost += added_license
                license_base += added_license
                owned_servers = needed
            cost += self.it_staff_monthly
            cost += license_base * self.annual_maintenance_rate / 12.0
            costs.append(cost)
        return costs


@dataclass
class SaasCostModel:
    """Subscription pricing: costs directly aligned with usage."""

    price_per_user_month: float = 75.0
    onboarding_fee: float = 2_000.0
    usage_fee_per_1000_queries: float = 5.0
    monthly_queries_per_user: int = 60

    def monthly_costs(self, profile: UsageProfile,
                      months: int) -> List[float]:
        costs: List[float] = []
        for month in range(months):
            users = profile.users_at_month(month)
            cost = users * self.price_per_user_month
            cost += (users * self.monthly_queries_per_user / 1000.0
                     * self.usage_fee_per_1000_queries)
            if month == 0:
                cost += self.onboarding_fee
            costs.append(cost)
        return costs


def cumulative_costs(monthly: List[float]) -> List[float]:
    """Running total of a monthly cost series."""
    total = 0.0
    out: List[float] = []
    for cost in monthly:
        total += cost
        out.append(total)
    return out


def crossover_month(on_premises: List[float],
                    saas: List[float]) -> Optional[int]:
    """First month (0-based) where cumulative on-prem cost exceeds SaaS
    and stays higher for the rest of the horizon; None if never."""
    cumulative_op = cumulative_costs(on_premises)
    cumulative_saas = cumulative_costs(saas)
    for month in range(len(cumulative_op)):
        if all(op > s for op, s in zip(cumulative_op[month:],
                                       cumulative_saas[month:])):
            return month
    return None


def tco_summary(profile: UsageProfile, months: int = 36,
                on_premises: Optional[OnPremisesCostModel] = None,
                saas: Optional[SaasCostModel] = None) -> Dict:
    """The E8 comparison for one usage profile."""
    on_premises = on_premises or OnPremisesCostModel()
    saas = saas or SaasCostModel()
    op_monthly = on_premises.monthly_costs(profile, months)
    saas_monthly = saas.monthly_costs(profile, months)
    op_total = sum(op_monthly)
    saas_total = sum(saas_monthly)
    return {
        "months": months,
        "initial_users": profile.initial_users,
        "on_premises_total": round(op_total, 2),
        "saas_total": round(saas_total, 2),
        "saas_savings": round(op_total - saas_total, 2),
        "saas_cheaper": saas_total < op_total,
        "crossover_month": crossover_month(op_monthly, saas_monthly),
    }
