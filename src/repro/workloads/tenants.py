"""Synthetic SaaS tenant populations (multi-tenancy experiments)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

PLANS = ("starter", "team", "enterprise")
_PLAN_USERS = {"starter": (2, 8), "team": (8, 40),
               "enterprise": (40, 200)}
_PLAN_WEIGHTS = (55, 32, 13)
SECTORS = ("healthcare", "retail", "finance", "logistics", "public")


@dataclass
class TenantProfile:
    """One synthetic customer of the platform."""

    name: str
    plan: str
    sector: str
    user_count: int
    monthly_queries: int
    monthly_etl_rows: int


class TenantWorkload:
    """Generates deterministic tenant populations and activity."""

    def __init__(self, seed: int = 23):
        self.seed = seed

    def tenants(self, count: int) -> List[TenantProfile]:
        rng = random.Random(self.seed)
        profiles: List[TenantProfile] = []
        for index in range(count):
            plan = rng.choices(PLANS, _PLAN_WEIGHTS)[0]
            low, high = _PLAN_USERS[plan]
            users = rng.randint(low, high)
            profiles.append(TenantProfile(
                name=f"tenant-{index + 1:03d}",
                plan=plan,
                sector=rng.choice(SECTORS),
                user_count=users,
                monthly_queries=users * rng.randint(30, 120),
                monthly_etl_rows=users * rng.randint(500, 3000),
            ))
        return profiles

    def activity_events(self, profile: TenantProfile,
                        months: int = 1) -> List[Dict]:
        """Usage events (queries, reports, etl runs) for one tenant."""
        rng = random.Random(f"{self.seed}:{profile.name}")
        events: List[Dict] = []
        for month in range(months):
            for _ in range(profile.monthly_queries // 30):
                events.append({
                    "tenant": profile.name,
                    "month": month,
                    "kind": rng.choices(
                        ("query", "report", "etl_run", "dashboard"),
                        (50, 25, 15, 10))[0],
                    "units": rng.randint(1, 5),
                })
        return events
