"""Enterprise service bus (the Spring Integration substitute).

The paper plans interoperability between the data-warehousing tools of
the technical-resources layer "using an Enterprise Service Bus like
framework (we plan to use spring integration module)".  This package
provides that fabric: named channels, transformers, routers, service
activators, wiretaps and a dead-letter channel.
"""

from repro.esb.bus import (
    Message,
    MessageBus,
    DEAD_LETTER_CHANNEL,
)

__all__ = ["DEAD_LETTER_CHANNEL", "Message", "MessageBus"]
