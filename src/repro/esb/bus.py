"""Message channels, endpoints and the bus.

The bus delivers synchronously: sending to a channel runs every
endpoint attached to it in registration order.  Endpoints are:

* **service activators** — terminal handlers,
* **transformers** — rewrite the payload and forward to an output
  channel,
* **routers** — choose the next channel per message,
* **wiretaps** — observe without consuming.

A handler exception routes the message to the dead-letter channel with
the error recorded in its headers — the bus never drops a message
silently.  A bus built with a :class:`~repro.core.resilience.RetryPolicy`
retries each failing endpoint (deterministic seeded backoff on the
injected clock) before dead-lettering; the dead letter then records
the attempt count alongside the error, and the correlation id of the
originating message always survives the retry → dead-letter path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import EsbError, RetryExhaustedError

DEAD_LETTER_CHANNEL = "dead-letter"

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A payload plus headers travelling through the bus."""

    payload: Any
    headers: Dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def correlation_id(self) -> int:
        """The id of the originating message this one descends from."""
        return self.headers.get("correlation_id", self.message_id)

    def with_payload(self, payload: Any) -> "Message":
        """A copy with a new payload and a fresh ``message_id``.

        The originating message's id rides along as the
        ``correlation_id`` header (set once, then preserved across
        transformer/router hops) so transformed messages stay
        correlated with their origin in the delivery log and the
        dead-letter queue.
        """
        headers = dict(self.headers)
        headers.setdefault("correlation_id", self.message_id)
        return Message(payload=payload, headers=headers)


class _Endpoint:
    """One consumer attached to a channel."""

    def __init__(self, kind: str, handler: Callable,
                 output_channel: Optional[str] = None):
        self.kind = kind
        self.handler = handler
        self.output_channel = output_channel


class MessageBus:
    """A synchronous integration bus with named channels.

    ``retry_policy`` (a :class:`~repro.core.resilience.RetryPolicy`,
    duck-typed to keep this layer dependency-free), ``clock`` and
    ``faults`` are optional resilience hooks: when set, each endpoint
    invocation is retried per the policy (backoff slept on the
    injected clock) before the message is dead-lettered, and the
    :class:`~repro.core.resilience.FaultInjector` is consulted at the
    ``esb.publish`` / ``esb.deliver`` sites.
    """

    def __init__(self, max_hops: int = 100, retry_policy=None,
                 clock=None, faults=None, journal=None):
        self._channels: Dict[str, List[_Endpoint]] = {
            DEAD_LETTER_CHANNEL: [],
        }
        self.max_hops = max_hops
        self.retry_policy = retry_policy
        self.clock = clock
        self.faults = faults
        # ``journal`` (duck-typed JournalLog) makes the dead-letter
        # queue crash-durable: every dead letter is appended as a
        # ``("dead_letter", ...)`` record, and the intact prefix found
        # at open time is restored here — an operator can still
        # inspect and replay failures that predate the crash.
        self.journal = journal
        self.dead_letters: List[Message] = []
        self.delivery_log: List[str] = []
        if journal is not None:
            for record in journal.recovered:
                if record and record[0] == "dead_letter":
                    _, message_id, payload, headers = record
                    self.dead_letters.append(Message(
                        payload=payload, headers=dict(headers),
                        message_id=message_id))
        #: One ``(channel, message_id, attempts)`` triple per endpoint
        #: invocation that needed more than one attempt.
        self.retry_log: List[Tuple[str, int, int]] = []

    # -- topology -------------------------------------------------------------------

    def create_channel(self, name: str) -> None:
        if name in self._channels:
            raise EsbError(f"channel {name!r} already exists")
        self._channels[name] = []

    def channels(self) -> List[str]:
        return sorted(self._channels)

    def _channel(self, name: str) -> List[_Endpoint]:
        if name not in self._channels:
            raise EsbError(f"no such channel: {name!r}")
        return self._channels[name]

    def service_activator(self, channel: str,
                          handler: Callable[[Message], None]) -> None:
        """Attach a terminal handler to a channel."""
        self._channel(channel).append(_Endpoint("activator", handler))

    def transformer(self, channel: str,
                    transform: Callable[[Any], Any],
                    output_channel: str) -> None:
        """Attach a payload transformer forwarding to another channel."""
        self._channel(output_channel)  # must exist
        self._channel(channel).append(
            _Endpoint("transformer", transform, output_channel))

    def router(self, channel: str,
               route: Callable[[Message], Optional[str]]) -> None:
        """Attach a router choosing the next channel per message."""
        self._channel(channel).append(_Endpoint("router", route))

    def wiretap(self, channel: str,
                observer: Callable[[Message], None]) -> None:
        """Attach a non-consuming observer."""
        self._channel(channel).append(_Endpoint("wiretap", observer))

    # -- delivery --------------------------------------------------------------------

    def send(self, channel: str, payload: Any,
             headers: Optional[Dict[str, Any]] = None) -> Message:
        """Send a payload into a channel; returns the message.

        With a fault injector attached, the ``esb.publish`` site may
        fail; the publish is then retried under the bus retry policy
        and, once attempts are exhausted, the message lands in the
        dead-letter channel (correlation preserved) instead of the
        error escaping to the caller — on-demand BI keeps serving.
        """
        message = Message(payload=payload, headers=dict(headers or {}))
        try:
            self._invoke(channel, message,
                         lambda: self._publish_once(channel, message))
        except EsbError:
            raise
        except Exception as exc:
            self._dead_letter(channel, message, exc)
        return message

    #: Alias: the service-bus verb the platform layers use.
    def publish(self, channel: str, payload: Any,
                headers: Optional[Dict[str, Any]] = None) -> Message:
        return self.send(channel, payload, headers)

    def _publish_once(self, channel: str, message: Message) -> None:
        if self.faults is not None:
            self.faults.fire("esb.publish")
            self.faults.fire(f"esb.publish.{channel}")
        self._deliver(channel, message, hops=0)

    def _invoke(self, channel: str, message: Message,
                attempt: Callable[[], Any]) -> Any:
        """Run one endpoint attempt under the bus retry policy."""
        if self.retry_policy is None:
            return attempt()
        attempts_used = [1]

        def count_retry(attempt_number: int, _error: BaseException) \
                -> None:
            attempts_used[0] = attempt_number + 1

        try:
            result = self.retry_policy.call(
                attempt, clock=self.clock, on_retry=count_retry)
        finally:
            if attempts_used[0] > 1:
                self.retry_log.append(
                    (channel, message.message_id, attempts_used[0]))
        return result

    def _dead_letter(self, channel: str, message: Message,
                     error: Exception) -> None:
        """Record a failed delivery on the dead-letter channel."""
        headers = {**message.headers,
                   "correlation_id": message.correlation_id,
                   "error": str(error),
                   "failed_channel": channel}
        if isinstance(error, RetryExhaustedError):
            headers["attempts"] = error.attempts
            if error.last_error is not None:
                headers["error"] = str(error.last_error)
        failed = Message(payload=message.payload, headers=headers)
        # Dead-letter delivery sits outside the hop budget: a failure
        # on the final permitted hop must record the original error,
        # not trip the routing-loop guard.
        self._deliver(DEAD_LETTER_CHANNEL, failed, 0)

    def _deliver(self, channel: str, message: Message,
                 hops: int) -> None:
        if hops > self.max_hops:
            raise EsbError(
                f"message {message.message_id} exceeded "
                f"{self.max_hops} hops (routing loop?)")
        self.delivery_log.append(f"{channel}:{message.message_id}")
        if channel == DEAD_LETTER_CHANNEL:
            self.dead_letters.append(message)
            if self.journal is not None:
                self.journal.append(
                    ("dead_letter", message.message_id,
                     message.payload, dict(message.headers)))
        for endpoint in self._channel(channel):
            try:
                if endpoint.kind in ("wiretap", "activator"):
                    self._invoke(channel, message,
                                 lambda: self._run_endpoint(
                                     channel, endpoint, message))
                elif endpoint.kind == "transformer":
                    transformed = message.with_payload(
                        self._invoke(channel, message,
                                     lambda: self._run_endpoint(
                                         channel, endpoint, message)))
                    self._deliver(endpoint.output_channel,
                                  transformed, hops + 1)
                elif endpoint.kind == "router":
                    target = self._invoke(
                        channel, message,
                        lambda: self._run_endpoint(
                            channel, endpoint, message))
                    if target is not None:
                        self._deliver(target, message, hops + 1)
            except EsbError:
                raise
            except Exception as exc:  # route failures to dead letters
                failed = Message(
                    payload=message.payload,
                    headers={**message.headers,
                             "correlation_id": message.correlation_id,
                             "error": str(exc),
                             "failed_channel": channel})
                if isinstance(exc, RetryExhaustedError):
                    failed.headers["attempts"] = exc.attempts
                    if exc.last_error is not None:
                        failed.headers["error"] = str(exc.last_error)
                if channel == DEAD_LETTER_CHANNEL:
                    # A failing dead-letter handler keeps consuming
                    # the hop budget so it cannot recurse forever.
                    self._deliver(DEAD_LETTER_CHANNEL, failed, hops + 1)
                else:
                    # Dead-letter delivery sits outside the hop
                    # budget: a failure on the final permitted hop
                    # must record the original error, not trip the
                    # routing-loop guard.
                    self._deliver(DEAD_LETTER_CHANNEL, failed, 0)

    def _run_endpoint(self, channel: str, endpoint: _Endpoint,
                      message: Message) -> Any:
        """One attempt of one endpoint (the retried unit)."""
        if self.faults is not None:
            self.faults.fire("esb.deliver")
            self.faults.fire(f"esb.deliver.{channel}")
        if endpoint.kind == "transformer":
            return endpoint.handler(message.payload)
        return endpoint.handler(message)
