"""Message channels, endpoints and the bus.

The bus delivers synchronously: sending to a channel runs every
endpoint attached to it in registration order.  Endpoints are:

* **service activators** — terminal handlers,
* **transformers** — rewrite the payload and forward to an output
  channel,
* **routers** — choose the next channel per message,
* **wiretaps** — observe without consuming.

A handler exception routes the message to the dead-letter channel with
the error recorded in its headers — the bus never drops a message
silently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import EsbError

DEAD_LETTER_CHANNEL = "dead-letter"

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A payload plus headers travelling through the bus."""

    payload: Any
    headers: Dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def correlation_id(self) -> int:
        """The id of the originating message this one descends from."""
        return self.headers.get("correlation_id", self.message_id)

    def with_payload(self, payload: Any) -> "Message":
        """A copy with a new payload and a fresh ``message_id``.

        The originating message's id rides along as the
        ``correlation_id`` header (set once, then preserved across
        transformer/router hops) so transformed messages stay
        correlated with their origin in the delivery log and the
        dead-letter queue.
        """
        headers = dict(self.headers)
        headers.setdefault("correlation_id", self.message_id)
        return Message(payload=payload, headers=headers)


class _Endpoint:
    """One consumer attached to a channel."""

    def __init__(self, kind: str, handler: Callable,
                 output_channel: Optional[str] = None):
        self.kind = kind
        self.handler = handler
        self.output_channel = output_channel


class MessageBus:
    """A synchronous integration bus with named channels."""

    def __init__(self, max_hops: int = 100):
        self._channels: Dict[str, List[_Endpoint]] = {
            DEAD_LETTER_CHANNEL: [],
        }
        self.max_hops = max_hops
        self.dead_letters: List[Message] = []
        self.delivery_log: List[str] = []

    # -- topology -------------------------------------------------------------------

    def create_channel(self, name: str) -> None:
        if name in self._channels:
            raise EsbError(f"channel {name!r} already exists")
        self._channels[name] = []

    def channels(self) -> List[str]:
        return sorted(self._channels)

    def _channel(self, name: str) -> List[_Endpoint]:
        if name not in self._channels:
            raise EsbError(f"no such channel: {name!r}")
        return self._channels[name]

    def service_activator(self, channel: str,
                          handler: Callable[[Message], None]) -> None:
        """Attach a terminal handler to a channel."""
        self._channel(channel).append(_Endpoint("activator", handler))

    def transformer(self, channel: str,
                    transform: Callable[[Any], Any],
                    output_channel: str) -> None:
        """Attach a payload transformer forwarding to another channel."""
        self._channel(output_channel)  # must exist
        self._channel(channel).append(
            _Endpoint("transformer", transform, output_channel))

    def router(self, channel: str,
               route: Callable[[Message], Optional[str]]) -> None:
        """Attach a router choosing the next channel per message."""
        self._channel(channel).append(_Endpoint("router", route))

    def wiretap(self, channel: str,
                observer: Callable[[Message], None]) -> None:
        """Attach a non-consuming observer."""
        self._channel(channel).append(_Endpoint("wiretap", observer))

    # -- delivery --------------------------------------------------------------------

    def send(self, channel: str, payload: Any,
             headers: Optional[Dict[str, Any]] = None) -> Message:
        """Send a payload into a channel; returns the message."""
        message = Message(payload=payload, headers=dict(headers or {}))
        self._deliver(channel, message, hops=0)
        return message

    def _deliver(self, channel: str, message: Message,
                 hops: int) -> None:
        if hops > self.max_hops:
            raise EsbError(
                f"message {message.message_id} exceeded "
                f"{self.max_hops} hops (routing loop?)")
        self.delivery_log.append(f"{channel}:{message.message_id}")
        if channel == DEAD_LETTER_CHANNEL:
            self.dead_letters.append(message)
        for endpoint in self._channel(channel):
            try:
                if endpoint.kind == "wiretap":
                    endpoint.handler(message)
                elif endpoint.kind == "activator":
                    endpoint.handler(message)
                elif endpoint.kind == "transformer":
                    transformed = message.with_payload(
                        endpoint.handler(message.payload))
                    self._deliver(endpoint.output_channel,
                                  transformed, hops + 1)
                elif endpoint.kind == "router":
                    target = endpoint.handler(message)
                    if target is not None:
                        self._deliver(target, message, hops + 1)
            except EsbError:
                raise
            except Exception as exc:  # route failures to dead letters
                failed = Message(
                    payload=message.payload,
                    headers={**message.headers,
                             "correlation_id": message.correlation_id,
                             "error": str(exc),
                             "failed_channel": channel})
                if channel == DEAD_LETTER_CHANNEL:
                    # A failing dead-letter handler keeps consuming
                    # the hop budget so it cannot recurse forever.
                    self._deliver(DEAD_LETTER_CHANNEL, failed, hops + 1)
                else:
                    # Dead-letter delivery sits outside the hop
                    # budget: a failure on the final permitted hop
                    # must record the original error, not trip the
                    # routing-loop guard.
                    self._deliver(DEAD_LETTER_CHANNEL, failed, 0)
