"""Business process management (BPM).

"The Business Process Management defines the process logic while the
Business Rules Management implements the decision logic" (paper §3.3).
Process definitions are graphs of service tasks, rule tasks (which run
a :mod:`repro.rules` engine over process variables) and exclusive
gateways; the engine executes instances and records their history.
"""

from repro.bpm.process import (
    ExclusiveGateway,
    ProcessDefinition,
    ProcessEngine,
    ProcessInstance,
    RuleTask,
    ServiceTask,
)

__all__ = [
    "ExclusiveGateway",
    "ProcessDefinition",
    "ProcessEngine",
    "ProcessInstance",
    "RuleTask",
    "ServiceTask",
]
