"""Process definitions and the process engine.

A process is a set of named nodes; each node executes against the
instance's variables and names its successor (``None`` ends the
process).  Three node kinds cover the orchestration the platform
needs: plain service tasks, rule tasks delegating decision logic to
the rules engine, and exclusive gateways for branching.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BpmError
from repro.rules.engine import RuleEngine, WorkingMemory
from repro.rules.model import Fact, Rule

_MAX_STEPS = 1000

Variables = Dict[str, Any]


class Node:
    """Base class for process nodes."""

    def __init__(self, name: str, next_node: Optional[str]):
        self.name = name
        self.next_node = next_node

    def execute(self, variables: Variables) -> Optional[str]:
        """Run the node; return the name of the next node (or None)."""
        raise NotImplementedError


class ServiceTask(Node):
    """A task calling a Python handler over the process variables."""

    def __init__(self, name: str, handler: Callable[[Variables], None],
                 next_node: Optional[str] = None):
        super().__init__(name, next_node)
        self.handler = handler

    def execute(self, variables: Variables) -> Optional[str]:
        self.handler(variables)
        return self.next_node


class RuleTask(Node):
    """Delegate decision logic to a rules engine.

    ``publish`` turns process variables into facts; after the engine
    reaches quiescence, ``harvest`` reads conclusions back into the
    variables.
    """

    def __init__(self, name: str, rules: Sequence[Rule],
                 publish: Callable[[Variables], Sequence[Fact]],
                 harvest: Callable[[WorkingMemory, Variables], None],
                 next_node: Optional[str] = None):
        super().__init__(name, next_node)
        self.rules = list(rules)
        self.publish = publish
        self.harvest = harvest

    def execute(self, variables: Variables) -> Optional[str]:
        engine = RuleEngine(self.rules)
        for fact in self.publish(variables):
            engine.memory.insert(fact)
        engine.run()
        self.harvest(engine.memory, variables)
        return self.next_node


class ExclusiveGateway(Node):
    """Pick the first branch whose condition holds; else the default."""

    def __init__(self, name: str,
                 branches: Sequence[Tuple[Callable[[Variables], bool],
                                          str]],
                 default: Optional[str] = None):
        super().__init__(name, None)
        if not branches:
            raise BpmError(f"gateway {name!r} needs at least one branch")
        self.branches = list(branches)
        self.default = default

    def execute(self, variables: Variables) -> Optional[str]:
        for condition, target in self.branches:
            if condition(variables):
                return target
        if self.default is not None:
            return self.default
        raise BpmError(
            f"gateway {self.name!r}: no branch matched and no default")


class ProcessDefinition:
    """A validated, named process graph."""

    def __init__(self, name: str, nodes: Sequence[Node], start: str):
        if not nodes:
            raise BpmError(f"process {name!r} has no nodes")
        self.name = name
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise BpmError(
                    f"process {name!r}: duplicate node {node.name!r}")
            self._nodes[node.name] = node
        self.start = start
        self._validate()

    def _validate(self) -> None:
        if self.start not in self._nodes:
            raise BpmError(
                f"process {self.name!r}: unknown start node "
                f"{self.start!r}")
        for node in self._nodes.values():
            successors: List[Optional[str]] = []
            if isinstance(node, ExclusiveGateway):
                successors.extend(target for _c, target in node.branches)
                successors.append(node.default)
            else:
                successors.append(node.next_node)
            for successor in successors:
                if successor is not None \
                        and successor not in self._nodes:
                    raise BpmError(
                        f"process {self.name!r}: node {node.name!r} "
                        f"points to unknown node {successor!r}")

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def node_names(self) -> List[str]:
        return sorted(self._nodes)


class ProcessInstance:
    """One execution of a process definition."""

    def __init__(self, definition: ProcessDefinition,
                 variables: Optional[Variables] = None):
        self.definition = definition
        self.variables: Variables = dict(variables or {})
        self.history: List[str] = []
        self.completed = False


class ProcessEngine:
    """Runs process instances to completion."""

    def __init__(self, max_steps: int = _MAX_STEPS):
        self.max_steps = max_steps
        self.completed_instances: List[ProcessInstance] = []

    def start(self, definition: ProcessDefinition,
              variables: Optional[Variables] = None) -> ProcessInstance:
        """Create an instance and run it to completion."""
        instance = ProcessInstance(definition, variables)
        cursor: Optional[str] = definition.start
        steps = 0
        while cursor is not None:
            steps += 1
            if steps > self.max_steps:
                raise BpmError(
                    f"process {definition.name!r} exceeded "
                    f"{self.max_steps} steps (cycle?)")
            node = definition.node(cursor)
            instance.history.append(node.name)
            cursor = node.execute(instance.variables)
        instance.completed = True
        self.completed_instances.append(instance)
        return instance
