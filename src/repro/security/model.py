"""The security domain model and its persistent store.

The model follows Spring Security's shape: *authorities* are atomic
privileges; *roles* bundle authorities; *users* hold roles directly
and inherit more through *groups*.  Everything is persisted through
the ORM into the embedded engine, so the admin service's CRUD screens
operate on real rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.engine.database import Database
from repro.errors import SecurityError
from repro.orm import Entity, FieldSpec, Repository, Session, create_schema, entity


@entity(table="sec_authorities", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("name", "TEXT", nullable=False, unique=True),
    FieldSpec("description", "TEXT"),
])
class AuthorityEntity(Entity):
    """An atomic privilege such as ``REPORT_VIEW``."""


@entity(table="sec_roles", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("name", "TEXT", nullable=False, unique=True),
])
class RoleEntity(Entity):
    """A named bundle of authorities."""


@entity(table="sec_role_authorities", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("role_id", "INTEGER", nullable=False),
    FieldSpec("authority_id", "INTEGER", nullable=False),
])
class RoleAuthorityLink(Entity):
    """role -> authority membership."""


@entity(table="sec_groups", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("name", "TEXT", nullable=False, unique=True),
])
class GroupEntity(Entity):
    """A named collection of users sharing roles."""


@entity(table="sec_group_roles", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("group_id", "INTEGER", nullable=False),
    FieldSpec("role_id", "INTEGER", nullable=False),
])
class GroupRoleLink(Entity):
    """group -> role membership."""


@entity(table="sec_users", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("username", "TEXT", nullable=False, unique=True),
    FieldSpec("password_hash", "TEXT", nullable=False),
    FieldSpec("enabled", "BOOLEAN", default=True),
    FieldSpec("tenant", "TEXT"),
])
class UserEntity(Entity):
    """An authenticatable account, optionally scoped to a tenant."""


@entity(table="sec_user_roles", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("user_id", "INTEGER", nullable=False),
    FieldSpec("role_id", "INTEGER", nullable=False),
])
class UserRoleLink(Entity):
    """user -> role membership."""


@entity(table="sec_user_groups", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("user_id", "INTEGER", nullable=False),
    FieldSpec("group_id", "INTEGER", nullable=False),
])
class UserGroupLink(Entity):
    """user -> group membership."""


_ALL_ENTITIES = [
    AuthorityEntity, RoleEntity, RoleAuthorityLink, GroupEntity,
    GroupRoleLink, UserEntity, UserRoleLink, UserGroupLink,
]


@dataclass
class Principal:
    """The resolved security identity of an authenticated user."""

    user_id: int
    username: str
    tenant: Optional[str]
    roles: Set[str] = field(default_factory=set)
    authorities: Set[str] = field(default_factory=set)

    def has_authority(self, authority: str) -> bool:
        return authority in self.authorities

    def has_role(self, role: str) -> bool:
        return role in self.roles


class SecurityStore:
    """CRUD over the security model plus principal resolution."""

    def __init__(self, database: Database):
        self.database = database
        create_schema(database, _ALL_ENTITIES, if_not_exists=True)
        self.session = Session(database)

    # -- authorities / roles / groups ------------------------------------------

    def create_authority(self, name: str,
                         description: str = "") -> AuthorityEntity:
        authority = AuthorityEntity(name=name, description=description)
        self.session.add(authority)
        self.session.flush()
        return authority

    def has_authority(self, name: str) -> bool:
        return self.session.find(AuthorityEntity) \
            .filter_by(name=name).first() is not None

    def has_role(self, name: str) -> bool:
        return self.session.find(RoleEntity) \
            .filter_by(name=name).first() is not None

    def create_role(self, name: str,
                    authorities: List[str] = ()) -> RoleEntity:
        role = RoleEntity(name=name)
        self.session.add(role)
        self.session.flush()
        for authority_name in authorities:
            self.grant_authority(name, authority_name)
        return role

    def grant_authority(self, role_name: str,
                        authority_name: str) -> None:
        role = self._require_one(RoleEntity, name=role_name)
        authority = self._require_one(AuthorityEntity,
                                      name=authority_name)
        self.session.add(RoleAuthorityLink(
            role_id=role.id, authority_id=authority.id))
        self.session.flush()

    def create_group(self, name: str,
                     roles: List[str] = ()) -> GroupEntity:
        group = GroupEntity(name=name)
        self.session.add(group)
        self.session.flush()
        for role_name in roles:
            role = self._require_one(RoleEntity, name=role_name)
            self.session.add(GroupRoleLink(
                group_id=group.id, role_id=role.id))
        self.session.flush()
        return group

    # -- users ---------------------------------------------------------------------

    def create_user(self, username: str, password_hash: str,
                    tenant: Optional[str] = None,
                    roles: List[str] = (),
                    groups: List[str] = ()) -> UserEntity:
        user = UserEntity(username=username,
                          password_hash=password_hash,
                          tenant=tenant)
        self.session.add(user)
        self.session.flush()
        for role_name in roles:
            self.assign_role(username, role_name)
        for group_name in groups:
            self.add_to_group(username, group_name)
        return user

    def assign_role(self, username: str, role_name: str) -> None:
        user = self._require_one(UserEntity, username=username)
        role = self._require_one(RoleEntity, name=role_name)
        self.session.add(UserRoleLink(user_id=user.id, role_id=role.id))
        self.session.flush()

    def add_to_group(self, username: str, group_name: str) -> None:
        user = self._require_one(UserEntity, username=username)
        group = self._require_one(GroupEntity, name=group_name)
        self.session.add(UserGroupLink(
            user_id=user.id, group_id=group.id))
        self.session.flush()

    def revoke_role(self, username: str, role_name: str) -> None:
        user = self._require_one(UserEntity, username=username)
        role = self._require_one(RoleEntity, name=role_name)
        links = self.session.find(UserRoleLink) \
            .filter_by(user_id=user.id, role_id=role.id).list()
        if not links:
            raise SecurityError(
                f"user {username!r} does not hold role {role_name!r}")
        for link in links:
            self.session.delete(link)
        self.session.flush()

    def remove_from_group(self, username: str,
                          group_name: str) -> None:
        user = self._require_one(UserEntity, username=username)
        group = self._require_one(GroupEntity, name=group_name)
        links = self.session.find(UserGroupLink) \
            .filter_by(user_id=user.id, group_id=group.id).list()
        if not links:
            raise SecurityError(
                f"user {username!r} is not in group {group_name!r}")
        for link in links:
            self.session.delete(link)
        self.session.flush()

    def change_password(self, username: str,
                        password_hash: str) -> None:
        user = self._require_one(UserEntity, username=username)
        user.password_hash = password_hash
        self.session.flush()

    def delete_user(self, username: str) -> None:
        """Remove an account and all its memberships."""
        user = self._require_one(UserEntity, username=username)
        for link in self.session.find(UserRoleLink) \
                .filter_by(user_id=user.id).list():
            self.session.delete(link)
        for link in self.session.find(UserGroupLink) \
                .filter_by(user_id=user.id).list():
            self.session.delete(link)
        self.session.delete(user)
        self.session.flush()

    def disable_user(self, username: str) -> None:
        user = self._require_one(UserEntity, username=username)
        user.enabled = False
        self.session.flush()

    def find_user(self, username: str) -> Optional[UserEntity]:
        return self.session.find(UserEntity) \
            .filter_by(username=username).first()

    def _require_one(self, entity_class, **criteria):
        found = self.session.find(entity_class) \
            .filter_by(**criteria).first()
        if found is None:
            raise SecurityError(
                f"no {entity_class.__name__} matching {criteria!r}")
        return found

    # -- principal resolution ---------------------------------------------------------

    def resolve_principal(self, username: str) -> Principal:
        """Compute the effective roles and authorities of a user."""
        user = self._require_one(UserEntity, username=username)
        role_ids: Set[int] = {
            link.role_id
            for link in self.session.find(UserRoleLink)
            .filter_by(user_id=user.id).list()
        }
        for membership in self.session.find(UserGroupLink) \
                .filter_by(user_id=user.id).list():
            for link in self.session.find(GroupRoleLink) \
                    .filter_by(group_id=membership.group_id).list():
                role_ids.add(link.role_id)
        roles: Set[str] = set()
        authorities: Set[str] = set()
        for role_id in role_ids:
            role = self.session.get(RoleEntity, role_id)
            if role is None:
                continue
            roles.add(role.name)
            for link in self.session.find(RoleAuthorityLink) \
                    .filter_by(role_id=role_id).list():
                authority = self.session.get(
                    AuthorityEntity, link.authority_id)
                if authority is not None:
                    authorities.add(authority.name)
        return Principal(
            user_id=user.id, username=user.username,
            tenant=user.tenant, roles=roles, authorities=authorities)

    # -- listings (for the admin UI) ---------------------------------------------------

    def list_users(self) -> List[UserEntity]:
        return self.session.find(UserEntity).order_by("username").list()

    def list_roles(self) -> List[RoleEntity]:
        return self.session.find(RoleEntity).order_by("name").list()

    def list_groups(self) -> List[GroupEntity]:
        return self.session.find(GroupEntity).order_by("name").list()

    def list_authorities(self) -> List[AuthorityEntity]:
        return self.session.find(AuthorityEntity) \
            .order_by("name").list()

    def search_users(self, pattern: str) -> List[UserEntity]:
        """Substring search on usernames (the admin 'search features')."""
        return self.session.find(UserEntity) \
            .where("username LIKE ?", (f"%{pattern}%",)) \
            .order_by("username").list()
