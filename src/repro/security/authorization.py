"""Authorization: access decisions, the @secured decorator, ACLs."""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import AccessDeniedError, SecurityError
from repro.security.model import Principal


class AccessDecisionManager:
    """Votes on whether a principal may perform an operation."""

    def check_authority(self, principal: Principal,
                        authority: str) -> None:
        if not principal.has_authority(authority):
            raise AccessDeniedError(
                f"user {principal.username!r} lacks authority "
                f"{authority!r}")

    def check_any_authority(self, principal: Principal,
                            *authorities: str) -> None:
        if not any(principal.has_authority(authority)
                   for authority in authorities):
            raise AccessDeniedError(
                f"user {principal.username!r} lacks all of "
                f"{authorities!r}")

    def check_tenant(self, principal: Principal, tenant: str) -> None:
        """Cross-tenant access is denied outright (multi-tenant wall)."""
        if principal.tenant is not None and principal.tenant != tenant:
            raise AccessDeniedError(
                f"user {principal.username!r} of tenant "
                f"{principal.tenant!r} cannot access tenant {tenant!r}")


def secured(authority: str):
    """Method decorator enforcing an authority on the caller.

    The wrapped callable must accept ``principal`` as its first
    argument (after ``self`` for methods)::

        @secured("REPORT_VIEW")
        def run_report(self, principal, report_id): ...
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            principal = kwargs.get("principal")
            if principal is None:
                candidates = [argument for argument in args
                              if isinstance(argument, Principal)]
                if not candidates:
                    raise SecurityError(
                        f"{fn.__name__} requires a Principal argument")
                principal = candidates[0]
            AccessDecisionManager().check_authority(principal, authority)
            return fn(*args, **kwargs)

        wrapper.__secured_authority__ = authority
        return wrapper

    return decorate


class AclRegistry:
    """Object-level permissions: (object kind, object id) → grants."""

    def __init__(self) -> None:
        self._grants: Dict[Tuple[str, Any], Set[Tuple[str, str]]] = {}

    def grant(self, kind: str, object_id: Any, username: str,
              permission: str) -> None:
        self._grants.setdefault((kind, object_id), set()) \
            .add((username, permission))

    def revoke(self, kind: str, object_id: Any, username: str,
               permission: str) -> None:
        bucket = self._grants.get((kind, object_id))
        if bucket is not None:
            bucket.discard((username, permission))

    def is_granted(self, kind: str, object_id: Any, username: str,
                   permission: str) -> bool:
        bucket = self._grants.get((kind, object_id), set())
        return (username, permission) in bucket

    def check(self, kind: str, object_id: Any, principal: Principal,
              permission: str) -> None:
        if not self.is_granted(kind, object_id, principal.username,
                               permission):
            raise AccessDeniedError(
                f"user {principal.username!r} lacks {permission!r} "
                f"on {kind}:{object_id}")

    def permissions_for(self, kind: str, object_id: Any,
                        username: str) -> Set[str]:
        return {permission for user, permission
                in self._grants.get((kind, object_id), set())
                if user == username}
