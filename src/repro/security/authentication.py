"""Authentication: password hashing and session tokens.

Passwords are salted PBKDF2-HMAC-SHA256; sessions are opaque random
tokens with a configurable time-to-live.  The clock is injectable so
expiry is testable without sleeping.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import AuthenticationError
from repro.security.model import Principal, SecurityStore

_PBKDF2_ITERATIONS = 10_000  # modest: this is a simulator, not prod crypto
_DEFAULT_TTL_SECONDS = 30 * 60


class PasswordEncoder:
    """Salted PBKDF2 password hashing with constant-time verification."""

    def __init__(self, iterations: int = _PBKDF2_ITERATIONS):
        self.iterations = iterations

    def encode(self, password: str) -> str:
        salt = secrets.token_hex(8)
        digest = hashlib.pbkdf2_hmac(
            "sha256", password.encode(), salt.encode(), self.iterations)
        return f"pbkdf2${self.iterations}${salt}${digest.hex()}"

    def matches(self, password: str, encoded: str) -> bool:
        try:
            scheme, iterations, salt, expected = encoded.split("$")
        except ValueError:
            return False
        if scheme != "pbkdf2":
            return False
        digest = hashlib.pbkdf2_hmac(
            "sha256", password.encode(), salt.encode(), int(iterations))
        return hmac.compare_digest(digest.hex(), expected)


@dataclass
class SecuritySession:
    """An authenticated session."""

    token: str
    principal: Principal
    created_at: float
    expires_at: float


class AuthenticationManager:
    """Login, session issuance, validation and logout."""

    def __init__(self, store: SecurityStore,
                 encoder: Optional[PasswordEncoder] = None,
                 session_ttl_seconds: float = _DEFAULT_TTL_SECONDS,
                 clock: Callable[[], float] = time.time):
        self.store = store
        self.encoder = encoder or PasswordEncoder()
        self.session_ttl_seconds = session_ttl_seconds
        self.clock = clock
        self._sessions: Dict[str, SecuritySession] = {}

    # -- registration helper -------------------------------------------------------

    def register_user(self, username: str, password: str,
                      tenant: Optional[str] = None,
                      roles=(), groups=()):
        """Create a user with a properly hashed password."""
        return self.store.create_user(
            username, self.encoder.encode(password),
            tenant=tenant, roles=list(roles), groups=list(groups))

    def change_password(self, username: str, old_password: str,
                        new_password: str) -> None:
        """Self-service password change (verifies the old password)."""
        user = self.store.find_user(username)
        if user is None \
                or not self.encoder.matches(old_password,
                                            user.password_hash):
            raise AuthenticationError("bad credentials")
        self.store.change_password(
            username, self.encoder.encode(new_password))

    def invalidate_user_sessions(self, username: str) -> int:
        """Kill every active session of one user (e.g. after offboarding)."""
        doomed = [token for token, session in self._sessions.items()
                  if session.principal.username == username]
        for token in doomed:
            del self._sessions[token]
        return len(doomed)

    # -- login / logout ---------------------------------------------------------------

    def authenticate(self, username: str,
                     password: str) -> SecuritySession:
        user = self.store.find_user(username)
        if user is None:
            raise AuthenticationError("bad credentials")
        if not self.encoder.matches(password, user.password_hash):
            raise AuthenticationError("bad credentials")
        if not user.enabled:
            raise AuthenticationError(
                f"account {username!r} is disabled")
        principal = self.store.resolve_principal(username)
        now = self.clock()
        session = SecuritySession(
            token=secrets.token_urlsafe(24),
            principal=principal,
            created_at=now,
            expires_at=now + self.session_ttl_seconds)
        self._sessions[session.token] = session
        return session

    def validate(self, token: str) -> Principal:
        """Resolve a session token to its principal (or raise)."""
        session = self._sessions.get(token)
        if session is None:
            raise AuthenticationError("unknown session token")
        if self.clock() >= session.expires_at:
            del self._sessions[token]
            raise AuthenticationError("session expired")
        return session.principal

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    def active_sessions(self) -> int:
        now = self.clock()
        return sum(1 for session in self._sessions.values()
                   if session.expires_at > now)
