"""Enterprise security (the Spring Security substitute).

The paper's administration service manages "authorities (privileges),
roles, users, and groups" with an enterprise-grade security layer.
This package implements that model:

* :mod:`repro.security.model` — authorities, roles, groups, users
  (persisted through the ORM),
* :mod:`repro.security.authentication` — salted PBKDF2 password
  hashing, login, session tokens with expiry,
* :mod:`repro.security.authorization` — access decisions, the
  ``@secured`` decorator and object-level ACLs.
"""

from repro.security.authentication import (
    AuthenticationManager,
    PasswordEncoder,
    SecuritySession,
)
from repro.security.authorization import (
    AccessDecisionManager,
    AclRegistry,
    secured,
)
from repro.security.model import (
    AuthorityEntity,
    GroupEntity,
    Principal,
    RoleEntity,
    SecurityStore,
    UserEntity,
)

__all__ = [
    "AccessDecisionManager",
    "AclRegistry",
    "AuthenticationManager",
    "AuthorityEntity",
    "GroupEntity",
    "PasswordEncoder",
    "Principal",
    "RoleEntity",
    "SecuritySession",
    "SecurityStore",
    "UserEntity",
    "secured",
]
