"""Meta-Object Facility kernel (the MOF/JMI/MDR substitute).

The paper's domain model implements CWM through the Java Metadata
Interface over a MOF repository (Sun's MDR).  This package provides the
equivalent reflective facility in Python:

* :class:`MetaClass`/:class:`MetaAttribute`/:class:`MetaReference` —
  the M3-level constructs used to *define* metamodels (M2),
* :class:`Metamodel` — a validated set of metaclasses,
* :class:`ModelExtent` — a container of reflective model elements (M1)
  instantiated from a metamodel, with validation,
* :mod:`repro.mof.xmi` — XML Metadata Interchange-style serialization,
* :mod:`repro.mof.constraints` — OCL-lite well-formedness rules.
"""

from repro.mof.constraints import Constraint, ConstraintChecker
from repro.mof.kernel import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    Metamodel,
    ModelExtent,
    MofElement,
)
from repro.mof.registry import MetamodelRegistry
from repro.mof.xmi import read_xmi, write_xmi

__all__ = [
    "Constraint",
    "ConstraintChecker",
    "MetaAttribute",
    "MetaClass",
    "MetaReference",
    "Metamodel",
    "MetamodelRegistry",
    "ModelExtent",
    "MofElement",
    "read_xmi",
    "write_xmi",
]
