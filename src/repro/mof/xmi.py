"""XMI-style XML interchange for model extents.

The format mirrors XML Metadata Interchange in spirit: one element per
model element carrying its attribute values, with references expressed
as child elements holding ``idref`` pointers — the serialization the
paper relies on for "metamodel and metadata interchange via XML".
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Union

from repro.errors import XmiError
from repro.mof.kernel import Metamodel, ModelExtent

_XMI_VERSION = "2.1"


def _encode_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode_value(text: str, type_name: str):
    if type_name == "string":
        return text
    if type_name == "integer":
        return int(text)
    if type_name == "float":
        return float(text)
    if type_name == "boolean":
        return text == "true"
    return text  # 'any' round-trips as text


def write_xmi(extent: ModelExtent) -> str:
    """Serialize an extent to an XMI document string."""
    root = ET.Element("xmi", {
        "version": _XMI_VERSION,
        "metamodel": extent.metamodel.name,
        "metamodelVersion": extent.metamodel.version,
        "extent": extent.name,
    })
    for element in extent:
        node = ET.SubElement(root, element.class_name,
                             {"xmi.id": element.element_id})
        for name, value in sorted(element.attribute_values().items()):
            if value is not None:
                node.set(name, _encode_value(value))
        for name, targets in sorted(element.reference_values().items()):
            for target in targets:
                ET.SubElement(node, "reference", {
                    "name": name,
                    "idref": target.element_id,
                })
    return ET.tostring(root, encoding="unicode")


def read_xmi(document: str, metamodel: Metamodel) -> ModelExtent:
    """Rebuild an extent from an XMI document produced by :func:`write_xmi`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise XmiError(f"malformed XMI document: {exc}") from exc
    if root.tag != "xmi":
        raise XmiError(f"expected <xmi> root, found <{root.tag}>")
    declared = root.get("metamodel")
    if declared != metamodel.name:
        raise XmiError(
            f"document was written against metamodel {declared!r}, "
            f"not {metamodel.name!r}")
    extent = ModelExtent(metamodel, root.get("extent", "extent"))

    # First pass: create the elements with their attribute values.
    for node in root:
        element_id = node.get("xmi.id")
        if element_id is None:
            raise XmiError(f"element <{node.tag}> is missing xmi.id")
        attributes = metamodel.all_attributes(node.tag)
        values = {}
        for name, raw in node.attrib.items():
            if name == "xmi.id":
                continue
            attribute = attributes.get(name)
            if attribute is None:
                raise XmiError(f"{node.tag} has no attribute {name!r}")
            values[name] = _decode_value(raw, attribute.type_name)
        extent.create(node.tag, element_id=element_id, **values)

    # Second pass: resolve references now that every id exists.
    for node in root:
        source = extent.element(node.get("xmi.id"))
        for child in node:
            if child.tag != "reference":
                raise XmiError(f"unexpected child <{child.tag}>")
            target_id = child.get("idref")
            try:
                target = extent.element(target_id)
            except Exception as exc:
                raise XmiError(
                    f"dangling reference to {target_id!r}") from exc
            source.link(child.get("name"), target)
    return extent
