"""OCL-lite well-formedness constraints over model extents.

A :class:`Constraint` is a named predicate scoped to one metaclass
(covering its subclasses); a :class:`ConstraintChecker` evaluates a set
of constraints against an extent and reports violations.  This stands
in for the OCL rules that accompany CWM in the paper's design layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.mof.kernel import ModelExtent, MofElement


@dataclass
class Violation:
    constraint: str
    element_id: str
    message: str

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.element_id}: {self.message}"


class Constraint:
    """A named invariant over instances of one metaclass."""

    def __init__(self, name: str, class_name: str,
                 predicate: Callable[[MofElement], bool],
                 message: str):
        self.name = name
        self.class_name = class_name
        self.predicate = predicate
        self.message = message

    def check(self, element: MofElement) -> bool:
        return bool(self.predicate(element))


class ConstraintChecker:
    """Evaluates constraints against every matching element."""

    def __init__(self, constraints: List[Constraint] = None):
        self.constraints: List[Constraint] = list(constraints or [])

    def add(self, constraint: Constraint) -> "ConstraintChecker":
        self.constraints.append(constraint)
        return self

    def check(self, extent: ModelExtent) -> List[Violation]:
        violations: List[Violation] = []
        for constraint in self.constraints:
            for element in extent.instances_of(constraint.class_name):
                if not constraint.check(element):
                    violations.append(Violation(
                        constraint.name, element.element_id,
                        constraint.message))
        return violations

    def is_satisfied(self, extent: ModelExtent) -> bool:
        return not self.check(extent)
