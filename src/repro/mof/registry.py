"""Registry of installed metamodels.

Mirrors the MDR repository's catalogue: ODBIS installs CWM, CWMX and
the platform-specific metamodels here, then instantiates extents from
them by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import MetamodelError
from repro.mof.kernel import Metamodel, ModelExtent


class MetamodelRegistry:
    """Name-indexed collection of metamodels."""

    def __init__(self) -> None:
        self._metamodels: Dict[str, Metamodel] = {}

    def install(self, metamodel: Metamodel) -> Metamodel:
        if metamodel.name in self._metamodels:
            raise MetamodelError(
                f"metamodel {metamodel.name!r} is already installed")
        self._metamodels[metamodel.name] = metamodel
        return metamodel

    def uninstall(self, name: str) -> None:
        if name not in self._metamodels:
            raise MetamodelError(f"metamodel {name!r} is not installed")
        del self._metamodels[name]

    def names(self) -> List[str]:
        return sorted(self._metamodels)

    def get(self, name: str) -> Metamodel:
        metamodel = self._metamodels.get(name)
        if metamodel is None:
            raise MetamodelError(f"metamodel {name!r} is not installed")
        return metamodel

    def create_extent(self, metamodel_name: str,
                      extent_name: str = "extent") -> ModelExtent:
        """Instantiate a fresh extent of an installed metamodel."""
        return ModelExtent(self.get(metamodel_name), extent_name)
