"""The reflective metamodeling kernel.

Meta-levels, following the paper's Section 3.2:

* **M3** — :class:`MetaClass`, :class:`MetaAttribute`,
  :class:`MetaReference`: the constructs metamodels are made of.
* **M2** — :class:`Metamodel`: a named, validated set of metaclasses
  (CWM, CWMX and ODM are expressed at this level).
* **M1** — :class:`MofElement` instances living in a
  :class:`ModelExtent`: the designed models (CIM/PIM/PSM viewpoints).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import MetamodelError, ModelConstraintError

_ATTRIBUTE_TYPES = {"string", "integer", "float", "boolean", "any"}


class MetaAttribute:
    """A typed attribute slot on a metaclass."""

    def __init__(self, name: str, type_name: str = "string",
                 required: bool = False, default: Any = None):
        if type_name not in _ATTRIBUTE_TYPES:
            raise MetamodelError(
                f"attribute {name!r}: unknown type {type_name!r}")
        self.name = name
        self.type_name = type_name
        self.required = required
        self.default = default

    def __repr__(self) -> str:
        return f"MetaAttribute({self.name!r}, {self.type_name!r})"

    def accepts(self, value: Any) -> bool:
        if value is None:
            return not self.required
        if self.type_name == "any":
            return True
        if self.type_name == "string":
            return isinstance(value, str)
        if self.type_name == "integer":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.type_name == "float":
            return isinstance(value, (int, float)) \
                and not isinstance(value, bool)
        if self.type_name == "boolean":
            return isinstance(value, bool)
        return False  # pragma: no cover


class MetaReference:
    """A reference slot pointing at instances of another metaclass.

    ``composite=True`` marks ownership: a model element may have at most
    one composite owner (checked by :meth:`ModelExtent.validate`).
    """

    def __init__(self, name: str, target: str, many: bool = False,
                 composite: bool = False, required: bool = False):
        self.name = name
        self.target = target
        self.many = many
        self.composite = composite
        self.required = required

    def __repr__(self) -> str:
        flags = "*" if self.many else "1"
        return f"MetaReference({self.name!r} -> {self.target}[{flags}])"


class MetaClass:
    """An M2 metaclass with single inheritance."""

    def __init__(self, name: str,
                 attributes: Sequence[MetaAttribute] = (),
                 references: Sequence[MetaReference] = (),
                 superclass: Optional[str] = None,
                 abstract: bool = False):
        self.name = name
        self.attributes = list(attributes)
        self.references = list(references)
        self.superclass = superclass
        self.abstract = abstract

    def __repr__(self) -> str:
        return f"MetaClass({self.name!r})"


class Metamodel:
    """A named, closed set of metaclasses (an M2 model, e.g. CWM)."""

    def __init__(self, name: str, classes: Sequence[MetaClass],
                 version: str = "1.0"):
        self.name = name
        self.version = version
        self._classes: Dict[str, MetaClass] = {}
        for metaclass in classes:
            if metaclass.name in self._classes:
                raise MetamodelError(
                    f"duplicate metaclass {metaclass.name!r} "
                    f"in metamodel {name!r}")
            self._classes[metaclass.name] = metaclass
        self._validate()

    def _validate(self) -> None:
        for metaclass in self._classes.values():
            if metaclass.superclass is not None \
                    and metaclass.superclass not in self._classes:
                raise MetamodelError(
                    f"{metaclass.name}: unknown superclass "
                    f"{metaclass.superclass!r}")
            for reference in metaclass.references:
                if reference.target not in self._classes:
                    raise MetamodelError(
                        f"{metaclass.name}.{reference.name}: unknown "
                        f"target metaclass {reference.target!r}")
        # Reject inheritance cycles.
        for metaclass in self._classes.values():
            seen = set()
            cursor: Optional[str] = metaclass.name
            while cursor is not None:
                if cursor in seen:
                    raise MetamodelError(
                        f"inheritance cycle through {cursor!r}")
                seen.add(cursor)
                cursor = self._classes[cursor].superclass

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._classes

    def class_names(self) -> List[str]:
        return sorted(self._classes)

    def metaclass(self, name: str) -> MetaClass:
        metaclass = self._classes.get(name)
        if metaclass is None:
            raise MetamodelError(
                f"metamodel {self.name!r} has no class {name!r}")
        return metaclass

    def lineage(self, name: str) -> List[MetaClass]:
        """The metaclass and its ancestors, most-derived first."""
        chain: List[MetaClass] = []
        cursor: Optional[str] = name
        while cursor is not None:
            metaclass = self.metaclass(cursor)
            chain.append(metaclass)
            cursor = metaclass.superclass
        return chain

    def all_attributes(self, name: str) -> Dict[str, MetaAttribute]:
        merged: Dict[str, MetaAttribute] = {}
        for metaclass in reversed(self.lineage(name)):
            for attribute in metaclass.attributes:
                merged[attribute.name] = attribute
        return merged

    def all_references(self, name: str) -> Dict[str, MetaReference]:
        merged: Dict[str, MetaReference] = {}
        for metaclass in reversed(self.lineage(name)):
            for reference in metaclass.references:
                merged[reference.name] = reference
        return merged

    def is_kind_of(self, name: str, ancestor: str) -> bool:
        return any(metaclass.name == ancestor
                   for metaclass in self.lineage(name))


class MofElement:
    """A reflective M1 model element.

    Attribute and reference slots are accessed via :meth:`get`,
    :meth:`set`, :meth:`link` and :meth:`unlink` — the JMI-style
    reflective API.
    """

    def __init__(self, extent: "ModelExtent", element_id: str,
                 class_name: str):
        self.extent = extent
        self.element_id = element_id
        self.class_name = class_name
        self._values: Dict[str, Any] = {}
        self._links: Dict[str, List["MofElement"]] = {}
        metamodel = extent.metamodel
        for attribute in metamodel.all_attributes(class_name).values():
            if attribute.default is not None:
                self._values[attribute.name] = attribute.default

    def __repr__(self) -> str:
        label = self._values.get("name")
        suffix = f" name={label!r}" if label is not None else ""
        return f"<{self.class_name} #{self.element_id}{suffix}>"

    # -- attribute slots ---------------------------------------------------------

    def _attribute(self, name: str) -> MetaAttribute:
        attributes = self.extent.metamodel.all_attributes(self.class_name)
        attribute = attributes.get(name)
        if attribute is None:
            raise MetamodelError(
                f"{self.class_name} has no attribute {name!r}")
        return attribute

    def set(self, name: str, value: Any) -> "MofElement":
        attribute = self._attribute(name)
        if not attribute.accepts(value):
            raise ModelConstraintError(
                f"{self.class_name}.{name}: value {value!r} does not "
                f"match type {attribute.type_name!r}")
        self._values[name] = value
        return self

    def get(self, name: str) -> Any:
        self._attribute(name)
        return self._values.get(name)

    @property
    def name(self) -> Optional[str]:
        """Shortcut for the conventional ``name`` attribute."""
        return self._values.get("name")

    def attribute_values(self) -> Dict[str, Any]:
        return dict(self._values)

    # -- reference slots ------------------------------------------------------------

    def _reference(self, name: str) -> MetaReference:
        references = self.extent.metamodel.all_references(self.class_name)
        reference = references.get(name)
        if reference is None:
            raise MetamodelError(
                f"{self.class_name} has no reference {name!r}")
        return reference

    def link(self, name: str, target: "MofElement") -> "MofElement":
        reference = self._reference(name)
        if not self.extent.metamodel.is_kind_of(
                target.class_name, reference.target):
            raise ModelConstraintError(
                f"{self.class_name}.{name} expects {reference.target}, "
                f"got {target.class_name}")
        bucket = self._links.setdefault(name, [])
        if not reference.many:
            bucket.clear()
        if target not in bucket:
            bucket.append(target)
        return self

    def unlink(self, name: str, target: "MofElement") -> "MofElement":
        self._reference(name)
        bucket = self._links.get(name, [])
        if target in bucket:
            bucket.remove(target)
        return self

    def refs(self, name: str) -> List["MofElement"]:
        self._reference(name)
        return list(self._links.get(name, []))

    def ref(self, name: str) -> Optional["MofElement"]:
        targets = self.refs(name)
        return targets[0] if targets else None

    def reference_values(self) -> Dict[str, List["MofElement"]]:
        return {name: list(bucket) for name, bucket in self._links.items()}

    def is_kind_of(self, class_name: str) -> bool:
        return self.extent.metamodel.is_kind_of(self.class_name, class_name)


class ModelExtent:
    """A container of model elements conforming to one metamodel.

    The extent plays the role of a JMI *package extent* in MDR: it is
    the unit of creation, lookup, validation and XMI interchange.
    """

    def __init__(self, metamodel: Metamodel, name: str = "extent"):
        self.metamodel = metamodel
        self.name = name
        self._elements: Dict[str, MofElement] = {}
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterable[MofElement]:
        return iter(list(self._elements.values()))

    def create(self, class_name: str, element_id: Optional[str] = None,
               **attributes: Any) -> MofElement:
        """Instantiate a (non-abstract) metaclass."""
        metaclass = self.metamodel.metaclass(class_name)
        if metaclass.abstract:
            raise ModelConstraintError(
                f"cannot instantiate abstract metaclass {class_name!r}")
        if element_id is None:
            element_id = f"{class_name.lower()}.{next(self._counter)}"
        if element_id in self._elements:
            raise ModelConstraintError(
                f"duplicate element id {element_id!r}")
        element = MofElement(self, element_id, class_name)
        for name, value in attributes.items():
            element.set(name, value)
        self._elements[element_id] = element
        return element

    def element(self, element_id: str) -> MofElement:
        element = self._elements.get(element_id)
        if element is None:
            raise ModelConstraintError(
                f"extent {self.name!r} has no element {element_id!r}")
        return element

    def delete(self, element: MofElement) -> None:
        """Remove an element and every link pointing at it."""
        self._elements.pop(element.element_id, None)
        for other in self._elements.values():
            for name, bucket in other._links.items():
                if element in bucket:
                    bucket.remove(element)

    def instances_of(self, class_name: str,
                     exact: bool = False) -> List[MofElement]:
        if exact:
            return [element for element in self._elements.values()
                    if element.class_name == class_name]
        return [element for element in self._elements.values()
                if element.is_kind_of(class_name)]

    def find_by_name(self, class_name: str, name: str) \
            -> Optional[MofElement]:
        for element in self.instances_of(class_name):
            if element.get("name") == name:
                return element
        return None

    def validate(self) -> List[str]:
        """Check well-formedness; returns a list of problem strings."""
        problems: List[str] = []
        composite_owner: Dict[str, str] = {}
        for element in self._elements.values():
            attributes = self.metamodel.all_attributes(element.class_name)
            for attribute in attributes.values():
                if attribute.required \
                        and element._values.get(attribute.name) is None:
                    problems.append(
                        f"{element!r}: required attribute "
                        f"{attribute.name!r} is unset")
            references = self.metamodel.all_references(element.class_name)
            for reference in references.values():
                bucket = element._links.get(reference.name, [])
                if reference.required and not bucket:
                    problems.append(
                        f"{element!r}: required reference "
                        f"{reference.name!r} is empty")
                for target in bucket:
                    if target.element_id not in self._elements:
                        problems.append(
                            f"{element!r}: reference {reference.name!r} "
                            f"points outside the extent")
                    if reference.composite:
                        owner = composite_owner.get(target.element_id)
                        if owner is not None \
                                and owner != element.element_id:
                            problems.append(
                                f"{target!r} has two composite owners")
                        composite_owner[target.element_id] = \
                            element.element_id
        return problems

    def check_valid(self) -> None:
        problems = self.validate()
        if problems:
            raise ModelConstraintError("; ".join(problems))
