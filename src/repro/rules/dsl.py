"""A small textual rule language.

Syntax::

    rule "flag-high-usage" salience 10
    when
        usage: Usage(amount > 1000 and tenant == "acme")
        plan: Plan(name == usage.plan)
    then
        modify(usage, flagged=True)
        insert(Alert(tenant=usage.tenant, level="warn"))
        log("high usage: " + usage.tenant)
    end

Conditions and action arguments are boolean/value expressions over fact
attributes.  They are parsed with :mod:`ast` and evaluated by a
whitelisting interpreter — no ``eval``, no attribute access beyond fact
attributes, no calls — so rule text from tenants cannot escape the
sandbox.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RuleSyntaxError
from repro.rules.engine import ActionContext
from repro.rules.model import Condition, Fact, Rule

# --- sandboxed expression evaluation ---------------------------------------


class _SafeEvaluator:
    """Evaluates a whitelisted subset of Python expressions.

    Names resolve through ``scope`` (attribute values and bound facts);
    ``fact.attr`` reads a fact attribute.  Anything outside the
    whitelist raises RuleSyntaxError at parse time.
    """

    _BIN_OPS = {
        ast.Add: lambda a, b: a + b,
        ast.Sub: lambda a, b: a - b,
        ast.Mult: lambda a, b: a * b,
        ast.Div: lambda a, b: a / b,
        ast.Mod: lambda a, b: a % b,
    }
    _CMP_OPS = {
        ast.Eq: lambda a, b: a == b,
        ast.NotEq: lambda a, b: a != b,
        ast.Lt: lambda a, b: a < b,
        ast.LtE: lambda a, b: a <= b,
        ast.Gt: lambda a, b: a > b,
        ast.GtE: lambda a, b: a >= b,
        ast.In: lambda a, b: a in b,
        ast.NotIn: lambda a, b: a not in b,
    }

    def __init__(self, expression: str):
        self.text = expression
        try:
            self.tree = ast.parse(expression, mode="eval").body
        except SyntaxError as exc:
            raise RuleSyntaxError(
                f"bad expression {expression!r}: {exc.msg}") from exc
        self._check(self.tree)

    def _check(self, node: ast.AST) -> None:
        allowed = (ast.BoolOp, ast.BinOp, ast.UnaryOp, ast.Compare,
                   ast.Name, ast.Attribute, ast.Constant, ast.List,
                   ast.Tuple, ast.And, ast.Or, ast.Not, ast.USub,
                   ast.Load)
        if isinstance(node, ast.BinOp) \
                and type(node.op) not in self._BIN_OPS:
            raise RuleSyntaxError(
                f"operator not allowed in {self.text!r}")
        if isinstance(node, ast.Compare):
            for op in node.ops:
                if type(op) not in self._CMP_OPS:
                    raise RuleSyntaxError(
                        f"comparison not allowed in {self.text!r}")
        if not isinstance(node, allowed) \
                and not isinstance(node, ast.operator) \
                and not isinstance(node, ast.cmpop) \
                and not isinstance(node, ast.boolop) \
                and not isinstance(node, ast.unaryop):
            raise RuleSyntaxError(
                f"{type(node).__name__} is not allowed in rule "
                f"expression {self.text!r}")
        for child in ast.iter_child_nodes(node):
            self._check(child)

    def evaluate(self, scope: Dict[str, Any]) -> Any:
        return self._eval(self.tree, scope)

    def _eval(self, node: ast.AST, scope: Dict[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id not in scope:
                raise RuleSyntaxError(
                    f"unknown name {node.id!r} in {self.text!r}")
            return scope[node.id]
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, scope)
            if isinstance(base, Fact):
                return base.get(node.attr)
            raise RuleSyntaxError(
                f"attribute access only allowed on facts "
                f"in {self.text!r}")
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result = True
                for value_node in node.values:
                    result = self._eval(value_node, scope)
                    if not result:
                        return result
                return result
            for value_node in node.values:
                result = self._eval(value_node, scope)
                if result:
                    return result
            return result
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, scope)
            if isinstance(node.op, ast.Not):
                return not operand
            return -operand
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, scope)
            right = self._eval(node.right, scope)
            return self._BIN_OPS[type(node.op)](left, right)
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, scope)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, scope)
                if not self._CMP_OPS[type(op)](left, right):
                    return False
                left = right
            return True
        if isinstance(node, (ast.List, ast.Tuple)):
            return [self._eval(element, scope) for element in node.elts]
        raise RuleSyntaxError(  # pragma: no cover - guarded by _check
            f"cannot evaluate {type(node).__name__}")


# --- parsing ------------------------------------------------------------------

_RULE_HEADER = re.compile(
    r'^rule\s+"(?P<name>[^"]+)"(?:\s+salience\s+(?P<salience>-?\d+))?$')
_CONDITION_LINE = re.compile(
    r"^(?P<var>[A-Za-z_][A-Za-z0-9_]*)\s*:\s*"
    r"(?P<type>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<expr>.*)\)$")
_ACTION_LINE = re.compile(
    r"^(?P<verb>modify|retract|insert|log)\s*\((?P<args>.*)\)$")
_INSERT_ARG = re.compile(
    r"^(?P<type>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<kwargs>.*)\)$")


def _split_kwargs(text: str) -> List[str]:
    """Split ``a=1, b="x,y"`` on top-level commas."""
    parts: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current: List[str] = []
    for char in text:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "\"'":
            quote = char
            current.append(char)
            continue
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_kwargs(text: str, context: str) \
        -> List[Tuple[str, _SafeEvaluator]]:
    pairs: List[Tuple[str, _SafeEvaluator]] = []
    for part in _split_kwargs(text):
        if "=" not in part:
            raise RuleSyntaxError(
                f"{context}: expected name=expression, got {part!r}")
        name, expression = part.split("=", 1)
        name = name.strip()
        if not name.isidentifier():
            raise RuleSyntaxError(
                f"{context}: bad attribute name {name!r}")
        pairs.append((name, _SafeEvaluator(expression.strip())))
    return pairs


def _make_condition(variable: str, fact_type: str,
                    expression: str) -> Condition:
    if not expression.strip():
        return Condition(variable, fact_type)
    evaluator = _SafeEvaluator(expression)

    def predicate(fact: Fact, bindings: Dict[str, Fact]) -> bool:
        scope: Dict[str, Any] = dict(fact.attributes())
        scope.update(bindings)
        scope[variable] = fact
        return bool(evaluator.evaluate(scope))

    return Condition(variable, fact_type, predicate)


def _make_action(steps: List[Tuple[str, Any]]) \
        -> Callable[[ActionContext], None]:
    def action(context: ActionContext) -> None:
        for verb, payload in steps:
            scope: Dict[str, Any] = dict(context.bindings)
            if verb == "log":
                context.log(str(payload.evaluate(scope)))
            elif verb == "retract":
                context.retract(context[payload])
            elif verb == "modify":
                variable, pairs = payload
                changes = {name: evaluator.evaluate(scope)
                           for name, evaluator in pairs}
                context.modify(context[variable], **changes)
            elif verb == "insert":
                fact_type, pairs = payload
                attributes = {name: evaluator.evaluate(scope)
                              for name, evaluator in pairs}
                context.insert(Fact(fact_type, **attributes))

    return action


def _parse_action_line(line: str) -> Tuple[str, Any]:
    match = _ACTION_LINE.match(line)
    if match is None:
        raise RuleSyntaxError(f"cannot parse action line: {line!r}")
    verb = match.group("verb")
    args = match.group("args").strip()
    if verb == "log":
        return ("log", _SafeEvaluator(args))
    if verb == "retract":
        if not args.isidentifier():
            raise RuleSyntaxError(
                f"retract takes a bound variable, got {args!r}")
        return ("retract", args)
    if verb == "modify":
        parts = _split_kwargs(args)
        if len(parts) < 2 or not parts[0].isidentifier():
            raise RuleSyntaxError(
                f"modify needs a variable and changes: {line!r}")
        variable = parts[0]
        pairs = _parse_kwargs(", ".join(parts[1:]), "modify")
        return ("modify", (variable, pairs))
    # insert
    inner = _INSERT_ARG.match(args)
    if inner is None:
        raise RuleSyntaxError(
            f"insert takes Type(attr=expr, ...), got {args!r}")
    pairs = _parse_kwargs(inner.group("kwargs"), "insert") \
        if inner.group("kwargs").strip() else []
    return ("insert", (inner.group("type"), pairs))


def parse_rules(text: str) -> List[Rule]:
    """Compile rule-DSL text into :class:`Rule` objects."""
    rules: List[Rule] = []
    lines = [line.strip() for line in text.splitlines()]
    index = 0

    def next_meaningful(position: int) -> int:
        while position < len(lines) \
                and (not lines[position]
                     or lines[position].startswith("#")):
            position += 1
        return position

    while True:
        index = next_meaningful(index)
        if index >= len(lines):
            break
        header = _RULE_HEADER.match(lines[index])
        if header is None:
            raise RuleSyntaxError(
                f"expected rule header, got {lines[index]!r}")
        name = header.group("name")
        salience = int(header.group("salience") or 0)
        index = next_meaningful(index + 1)
        if index >= len(lines) or lines[index] != "when":
            raise RuleSyntaxError(f"rule {name!r}: expected 'when'")
        index += 1

        conditions: List[Condition] = []
        while True:
            index = next_meaningful(index)
            if index >= len(lines):
                raise RuleSyntaxError(f"rule {name!r}: missing 'then'")
            if lines[index] == "then":
                index += 1
                break
            match = _CONDITION_LINE.match(lines[index])
            if match is None:
                raise RuleSyntaxError(
                    f"rule {name!r}: bad condition {lines[index]!r}")
            conditions.append(_make_condition(
                match.group("var"), match.group("type"),
                match.group("expr")))
            index += 1

        steps: List[Tuple[str, Any]] = []
        while True:
            index = next_meaningful(index)
            if index >= len(lines):
                raise RuleSyntaxError(f"rule {name!r}: missing 'end'")
            if lines[index] == "end":
                index += 1
                break
            steps.append(_parse_action_line(lines[index]))
            index += 1
        if not steps:
            raise RuleSyntaxError(f"rule {name!r} has no actions")
        rules.append(Rule(name, conditions, _make_action(steps),
                          salience=salience))
    if not rules:
        raise RuleSyntaxError("no rules found in source text")
    return rules
