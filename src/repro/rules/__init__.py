"""Business rules management (the Drools substitute).

"The Business Rules Management (BRM) implements the decision logic"
(paper §3.3): a SaaS platform shared by customers with different
business processes needs a rules engine to orchestrate its services.
This package provides:

* :mod:`repro.rules.model` — facts, conditions and rules,
* :mod:`repro.rules.engine` — a forward-chaining engine with an agenda
  ordered by salience and refraction (no activation fires twice),
* :mod:`repro.rules.dsl` — a small textual rule language compiled to
  rule objects through a sandboxed expression evaluator.
"""

from repro.rules.dsl import parse_rules
from repro.rules.engine import RuleEngine, WorkingMemory
from repro.rules.model import Condition, Fact, Rule

__all__ = [
    "Condition",
    "Fact",
    "Rule",
    "RuleEngine",
    "WorkingMemory",
    "parse_rules",
]
