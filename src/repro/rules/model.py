"""Facts, conditions and rules."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import RulesError

_fact_ids = itertools.count(1)


class Fact:
    """A typed bag of attributes living in working memory."""

    def __init__(self, fact_type: str, **attributes: Any):
        self.fact_type = fact_type
        self.fact_id = next(_fact_ids)
        self._attributes: Dict[str, Any] = dict(attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value!r}"
                          for key, value in self._attributes.items())
        return f"{self.fact_type}({inner})"

    def get(self, name: str, default: Any = None) -> Any:
        return self._attributes.get(name, default)

    def __getitem__(self, name: str) -> Any:
        if name not in self._attributes:
            raise RulesError(
                f"fact {self.fact_type} has no attribute {name!r}")
        return self._attributes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def set(self, name: str, value: Any) -> None:
        self._attributes[name] = value

    def attributes(self) -> Dict[str, Any]:
        return dict(self._attributes)


class Condition:
    """One pattern of a rule: match facts of a type, bind to a variable.

    ``predicate`` receives ``(fact, bindings)`` where ``bindings`` maps
    the variables bound by earlier conditions of the same rule — this
    is what lets conditions join across facts.
    """

    def __init__(self, variable: str, fact_type: str,
                 predicate: Optional[
                     Callable[[Fact, Dict[str, Fact]], bool]] = None):
        self.variable = variable
        self.fact_type = fact_type
        self.predicate = predicate

    def __repr__(self) -> str:
        return f"<Condition {self.variable}: {self.fact_type}>"

    def matches(self, fact: Fact, bindings: Dict[str, Fact]) -> bool:
        if fact.fact_type != self.fact_type:
            return False
        if self.predicate is None:
            return True
        return bool(self.predicate(fact, bindings))


class Rule:
    """When all conditions match (a consistent binding), run the action.

    ``action`` receives an :class:`~repro.rules.engine.ActionContext`.
    Higher ``salience`` fires first.
    """

    def __init__(self, name: str, conditions: Sequence[Condition],
                 action: Callable[..., None], salience: int = 0):
        if not conditions:
            raise RulesError(f"rule {name!r} needs at least one condition")
        variables = [condition.variable for condition in conditions]
        if len(set(variables)) != len(variables):
            raise RulesError(
                f"rule {name!r} binds the same variable twice")
        self.name = name
        self.conditions = list(conditions)
        self.action = action
        self.salience = salience

    def __repr__(self) -> str:
        return f"<Rule {self.name!r} salience={self.salience}>"
