"""Forward-chaining inference with an agenda.

The engine repeatedly computes *activations* (a rule plus a consistent
set of fact bindings), orders them by salience, and fires them.
Refraction is enforced: the same rule never fires twice on the same
fact combination unless one of those facts was modified in between.
Actions mutate working memory through an :class:`ActionContext`, which
is what triggers further chaining.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RulesError
from repro.rules.model import Condition, Fact, Rule

_DEFAULT_CYCLE_LIMIT = 10_000


class WorkingMemory:
    """The set of facts the engine reasons over."""

    def __init__(self) -> None:
        self._facts: Dict[int, Fact] = {}
        self.versions: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self):
        return iter(list(self._facts.values()))

    def insert(self, fact: Fact) -> Fact:
        self._facts[fact.fact_id] = fact
        self.versions[fact.fact_id] = 0
        return fact

    def retract(self, fact: Fact) -> None:
        if fact.fact_id not in self._facts:
            raise RulesError(f"fact {fact!r} is not in working memory")
        del self._facts[fact.fact_id]
        del self.versions[fact.fact_id]

    def touch(self, fact: Fact) -> None:
        """Mark a fact as modified so refraction allows re-firing."""
        if fact.fact_id in self.versions:
            self.versions[fact.fact_id] += 1

    def contains(self, fact: Fact) -> bool:
        return fact.fact_id in self._facts

    def by_type(self, fact_type: str) -> List[Fact]:
        return [fact for fact in self._facts.values()
                if fact.fact_type == fact_type]

    def facts(self) -> List[Fact]:
        return list(self._facts.values())


class ActionContext:
    """What a rule action may do: read bindings, mutate memory, log."""

    def __init__(self, engine: "RuleEngine",
                 bindings: Dict[str, Fact]):
        self._engine = engine
        self.bindings = bindings
        self.memory = engine.memory

    def __getitem__(self, variable: str) -> Fact:
        if variable not in self.bindings:
            raise RulesError(f"no bound variable {variable!r}")
        return self.bindings[variable]

    def insert(self, fact: Fact) -> Fact:
        return self.memory.insert(fact)

    def retract(self, fact: Fact) -> None:
        self.memory.retract(fact)

    def modify(self, fact: Fact, **changes: Any) -> None:
        """Update fact attributes; only real changes re-arm refraction."""
        changed = False
        for name, value in changes.items():
            if name not in fact or fact.get(name) != value:
                fact.set(name, value)
                changed = True
        if changed:
            self.memory.touch(fact)

    def log(self, message: str) -> None:
        self._engine.log.append(message)


class RuleEngine:
    """Fires rules over a working memory until quiescence."""

    def __init__(self, rules: Sequence[Rule],
                 memory: Optional[WorkingMemory] = None,
                 cycle_limit: int = _DEFAULT_CYCLE_LIMIT):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise RulesError("duplicate rule names in the rule set")
        self.rules = sorted(rules, key=lambda rule: -rule.salience)
        self.memory = memory or WorkingMemory()
        self.cycle_limit = cycle_limit
        self.log: List[str] = []
        self.fired: List[Tuple[str, Tuple[int, ...]]] = []
        self._refraction: Set[Tuple[str, Tuple[Tuple[int, int], ...]]] = set()

    # -- matching -----------------------------------------------------------------

    def _activations(self) -> List[Tuple[Rule, Dict[str, Fact]]]:
        activations: List[Tuple[Rule, Dict[str, Fact]]] = []
        for rule in self.rules:
            for bindings in self._match_rule(rule):
                signature = (rule.name, tuple(sorted(
                    (fact.fact_id, self.memory.versions[fact.fact_id])
                    for fact in bindings.values())))
                if signature in self._refraction:
                    continue
                activations.append((rule, bindings))
        return activations

    def _match_rule(self, rule: Rule) -> List[Dict[str, Fact]]:
        partial: List[Dict[str, Fact]] = [{}]
        for condition in rule.conditions:
            extended: List[Dict[str, Fact]] = []
            candidates = self.memory.by_type(condition.fact_type)
            for bindings in partial:
                used = {fact.fact_id for fact in bindings.values()}
                for fact in candidates:
                    if fact.fact_id in used:
                        continue
                    if condition.matches(fact, bindings):
                        extended.append(
                            {**bindings, condition.variable: fact})
            partial = extended
            if not partial:
                break
        return partial

    # -- firing --------------------------------------------------------------------

    def run(self, max_firings: Optional[int] = None) -> int:
        """Fire until quiescence; returns the number of rule firings."""
        firings = 0
        cycles = 0
        while True:
            cycles += 1
            if cycles > self.cycle_limit:
                raise RulesError(
                    f"rule engine exceeded {self.cycle_limit} cycles "
                    f"(runaway rules?)")
            activations = self._activations()
            if not activations:
                return firings
            activations.sort(key=lambda pair: -pair[0].salience)
            rule, bindings = activations[0]
            signature = (rule.name, tuple(sorted(
                (fact.fact_id, self.memory.versions[fact.fact_id])
                for fact in bindings.values())))
            self._refraction.add(signature)
            # Facts may have been retracted by a previous firing in the
            # same batch; re-validate before firing.
            if all(self.memory.contains(fact)
                   for fact in bindings.values()):
                rule.action(ActionContext(self, bindings))
                self.fired.append((rule.name, tuple(
                    fact.fact_id for fact in bindings.values())))
                firings += 1
                if max_firings is not None and firings >= max_firings:
                    return firings
