"""The OLAP aggregation engine and its cell sets.

Queries are expressed as (measures, group-by axes, slicers) and
compiled to one SQL statement joining the fact table with the needed
dimension tables.  Results are memoized in an aggregate cache keyed by
the canonical query; the cache is the ablation knob of benchmark E9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.errors import QueryError
from repro.olap.model import CubeDimension, CubeSchema

# An axis is (dimension name, level name); a slicer adds the member value.
Axis = Tuple[str, str]
Slicer = Tuple[str, str, Any]


@dataclass
class CellSet:
    """The materialized result of one cube query."""

    measures: List[str]
    axes: List[Axis]
    rows: List[Dict[str, Any]]

    def __len__(self) -> int:
        return len(self.rows)

    def axis_columns(self) -> List[str]:
        return [f"{dimension}.{level}" for dimension, level in self.axes]

    def cell(self, member_values: Sequence[Any],
             measure: str) -> Any:
        """The value of ``measure`` at the given axis member tuple.

        Lookups go through a lazily-built ``{member tuple: row}`` index
        (first match wins, like the original scan), so repeated probes
        of a large cell set are O(1).  Unhashable member values fall
        back to the linear scan.
        """
        if measure not in self.measures:
            raise QueryError(f"cell set has no measure {measure!r}")
        wanted = list(member_values)
        columns = self.axis_columns()
        if len(wanted) != len(columns):
            raise QueryError(
                f"expected {len(columns)} member values, "
                f"got {len(wanted)}")
        index = getattr(self, "_member_index", None)
        if index is None:
            index = {}
            try:
                for row in self.rows:
                    index.setdefault(
                        tuple(row[column] for column in columns), row)
            except TypeError:
                index = False  # unhashable members: always scan
            self._member_index = index
        if index is not False:
            try:
                row = index.get(tuple(wanted))
            except TypeError:
                row = None  # unhashable probe: scan below
            else:
                if row is None:
                    raise QueryError(f"no cell at {tuple(wanted)!r}")
                return row[measure]
        for row in self.rows:
            if [row[column] for column in columns] == wanted:
                return row[measure]
        raise QueryError(f"no cell at {tuple(wanted)!r}")

    def totals(self) -> Dict[str, Any]:
        """Sum of each measure over all cells (None-safe)."""
        out: Dict[str, Any] = {}
        for measure in self.measures:
            values = [row[measure] for row in self.rows
                      if row[measure] is not None]
            out[measure] = sum(values) if values else None
        return out

    def to_table(self) -> List[List[Any]]:
        """Header row + data rows, ready for the reporting renderers."""
        header = self.axis_columns() + list(self.measures)
        table = [header]
        for row in self.rows:
            table.append([row[column] for column in header])
        return table


class OlapEngine:
    """Evaluates cube queries against an embedded database."""

    def __init__(self, database: Database, schema: CubeSchema,
                 use_cache: bool = True):
        schema.check_against(database)
        self.database = database
        self.schema = schema
        self.use_cache = use_cache
        self._cache: Dict[Any, CellSet] = {}
        self.statistics = {"queries": 0, "cache_hits": 0}

    # -- cache -------------------------------------------------------------------

    def invalidate_cache(self) -> None:
        """Drop all memoized aggregates (call after fact loads)."""
        self._cache.clear()

    def _cache_key(self, measures: Tuple[str, ...],
                   axes: Tuple[Axis, ...],
                   slicers: Tuple[Slicer, ...]) -> Any:
        return (measures, axes, tuple(
            (dimension, level, repr(member))
            for dimension, level, member in slicers))

    # -- query -------------------------------------------------------------------

    def query(self, measures: Sequence[str],
              axes: Sequence[Axis] = (),
              slicers: Sequence[Slicer] = ()) -> CellSet:
        """Aggregate ``measures`` grouped by ``axes``, filtered by ``slicers``.

        ``axes``: (dimension, level) pairs to group by.
        ``slicers``: (dimension, level, member) filters.
        """
        if not measures:
            raise QueryError("a cube query needs at least one measure")
        requested = list(measures)
        calculated = [name for name in requested
                      if self.schema.is_calculated(name)]
        base_needed: List[str] = [name for name in requested
                                  if name not in calculated]
        for name in calculated:
            for operand in self.schema.calculated_measure(name).operands:
                if operand not in base_needed:
                    base_needed.append(operand)
        measure_objs = [self.schema.measure(name)
                        for name in base_needed]
        axis_list = [(self.schema.dimension(d), level)
                     for d, level in axes]
        slicer_list = [(self.schema.dimension(d), level, member)
                       for d, level, member in slicers]
        for dimension, level in axis_list:
            dimension.level_index(level)
        for dimension, level, _member in slicer_list:
            dimension.level_index(level)

        key = self._cache_key(tuple(measures),
                              tuple((d, l) for d, l in axes),
                              tuple(slicers))
        self.statistics["queries"] += 1
        if self.use_cache and key in self._cache:
            self.statistics["cache_hits"] += 1
            return self._cache[key]

        sql, params = self._compile(measure_objs, axis_list, slicer_list)
        raw = self.database.query(sql, params)
        rows: List[Dict[str, Any]] = []
        axis_names = [f"{dimension.name}.{level}"
                      for dimension, level in axis_list]
        for record in raw:
            row: Dict[str, Any] = {}
            for (dimension, level), axis_name in zip(axis_list, axis_names):
                row[axis_name] = record[f"axis_{dimension.name}_{level}"]
            base_values: Dict[str, Any] = {}
            for measure in measure_objs:
                base_values[measure.name] = record[f"m_{measure.name}"]
            for name in requested:
                if name in calculated:
                    row[name] = self.schema.calculated_measure(
                        name).evaluate(base_values)
                else:
                    row[name] = base_values[name]
            rows.append(row)
        cell_set = CellSet(
            measures=list(requested),
            axes=[(dimension.name, level)
                  for dimension, level in axis_list],
            rows=rows)
        if self.use_cache:
            self._cache[key] = cell_set
        return cell_set

    def _compile(self, measures, axis_list, slicer_list):
        """Build the star-join SQL for one query."""
        fact = self.schema.fact_table
        joined: Dict[str, CubeDimension] = {}
        for dimension, _level in axis_list:
            joined[dimension.name] = dimension
        for dimension, _level, _member in slicer_list:
            joined[dimension.name] = dimension

        select_parts: List[str] = []
        group_parts: List[str] = []
        for dimension, level in axis_list:
            alias = f"d_{dimension.name}"
            select_parts.append(
                f"{alias}.{level} AS axis_{dimension.name}_{level}")
            group_parts.append(f"{alias}.{level}")
        for measure in measures:
            inner = f"DISTINCT f.{measure.column}" if measure.distinct \
                else f"f.{measure.column}"
            select_parts.append(
                f"{measure.sql_function}({inner}) "
                f"AS m_{measure.name}")

        sql = f"SELECT {', '.join(select_parts)} FROM {fact} f"
        for dimension in joined.values():
            alias = f"d_{dimension.name}"
            sql += (f" JOIN {dimension.table} {alias} "
                    f"ON f.{dimension.key} = {alias}.{dimension.key}")

        params: List[Any] = []
        where_parts: List[str] = []
        for dimension, level, member in slicer_list:
            alias = f"d_{dimension.name}"
            if isinstance(member, (list, tuple, set)):
                members = list(member)
                placeholders = ", ".join("?" for _ in members)
                where_parts.append(
                    f"{alias}.{level} IN ({placeholders})")
                params.extend(members)
            else:
                where_parts.append(f"{alias}.{level} = ?")
                params.append(member)
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        if group_parts:
            sql += " GROUP BY " + ", ".join(group_parts)
            sql += " ORDER BY " + ", ".join(group_parts)
        return sql, tuple(params)

    # -- convenience ----------------------------------------------------------------

    def members(self, dimension_name: str, level: str) -> List[Any]:
        """The distinct members of one dimension level."""
        dimension = self.schema.dimension(dimension_name)
        dimension.level_index(level)
        rows = self.database.query(
            f"SELECT DISTINCT {level} FROM {dimension.table} "
            f"ORDER BY {level}")
        return [row[level] for row in rows]

    def drill_through(self, cell_slicers: Sequence[Slicer],
                      limit: Optional[int] = None) \
            -> List[Dict[str, Any]]:
        """The underlying fact rows behind one cell.

        ``cell_slicers`` are the cell coordinates as
        (dimension, level, member) triples; returns the raw fact rows
        joined with the named dimension levels.
        """
        if not cell_slicers:
            raise QueryError("drill_through needs cell coordinates")
        slicer_list = [(self.schema.dimension(d), level, member)
                       for d, level, member in cell_slicers]
        for dimension, level, _member in slicer_list:
            dimension.level_index(level)
        joined: Dict[str, CubeDimension] = {}
        for dimension, _level, _member in slicer_list:
            joined[dimension.name] = dimension
        select_parts = ["f.*"]
        for dimension, level, _member in slicer_list:
            select_parts.append(
                f"d_{dimension.name}.{level} AS "
                f"{dimension.name.lower()}_{level}")
        sql = (f"SELECT {', '.join(select_parts)} "
               f"FROM {self.schema.fact_table} f")
        for dimension in joined.values():
            alias = f"d_{dimension.name}"
            sql += (f" JOIN {dimension.table} {alias} "
                    f"ON f.{dimension.key} = {alias}.{dimension.key}")
        params: List[Any] = []
        where_parts: List[str] = []
        for dimension, level, member in slicer_list:
            where_parts.append(f"d_{dimension.name}.{level} = ?")
            params.append(member)
        sql += " WHERE " + " AND ".join(where_parts)
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return self.database.query(sql, tuple(params))

    def grand_total(self, measure: str) -> Any:
        """The all-cube aggregate of one measure."""
        cell_set = self.query([measure])
        if not cell_set.rows:
            return None
        return cell_set.rows[0][measure]
