"""MDX-lite: a small multidimensional query language.

Grammar (case-insensitive keywords)::

    SELECT {[Measures].[revenue], [Measures].[quantity]} ON COLUMNS,
           {[Time].[year].Members} ON ROWS
    FROM [Sales]
    WHERE ([Store].[region].[North], [Product].[category].[Food])

COLUMNS must hold measures; ROWS holds dimension levels whose members
are expanded (``.Members``) or enumerated explicitly
(``[Time].[year].[2020], [Time].[year].[2021]`` — compiled to a dice
slicer); the WHERE tuple holds slicer members.  The parser builds an
:class:`MdxQuery` which executes through an :class:`OlapEngine`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import MdxSyntaxError, QueryError
from repro.olap.engine import CellSet, OlapEngine

_BRACKETED = re.compile(r"\[([^\]]*)\]")


@dataclass
class MdxQuery:
    """The parsed form of an MDX-lite statement."""

    cube: str
    measures: List[str]
    row_axes: List[Tuple[str, str]] = field(default_factory=list)
    slicers: List[Tuple[str, str, Any]] = field(default_factory=list)

    def execute(self, engine: OlapEngine) -> CellSet:
        if engine.schema.name != self.cube:
            raise QueryError(
                f"query targets cube {self.cube!r} but engine holds "
                f"{engine.schema.name!r}")
        slicers = [
            (dimension, level,
             _coerce_member(engine, dimension, level, member))
            for dimension, level, member in self.slicers
        ]
        return engine.query(self.measures, self.row_axes, slicers)


def _coerce_member(engine: OlapEngine, dimension: str, level: str,
                   member: Any) -> Any:
    """Map MDX text literals onto the level's actual member values.

    MDX writes every member as text (``[Time].[year].[2020]``); when
    the underlying level column is numeric the literal must be coerced
    to the real member value before slicing.
    """
    actual = {str(value): value
              for value in engine.members(dimension, level)}
    if isinstance(member, (list, tuple)):
        return [actual.get(str(entry), entry) for entry in member]
    return actual.get(str(member), member)


def _split_top_level(text: str, separator: str = ",") -> List[str]:
    """Split on separators that are not inside brackets or parens."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == separator and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _segments(member_path: str) -> List[str]:
    """``[Time].[year].Members`` -> ['Time', 'year', 'Members']."""
    found = _BRACKETED.findall(member_path)
    trailing = member_path.rsplit(".", 1)
    if trailing[-1].strip().lower() == "members":
        found.append("Members")
    return found


def parse_mdx(text: str) -> MdxQuery:
    """Parse an MDX-lite statement into an :class:`MdxQuery`."""
    source = " ".join(text.split())
    match = re.match(
        r"(?is)^SELECT\s+(?P<axes>.+?)\s+FROM\s+\[(?P<cube>[^\]]+)\]"
        r"(?:\s+WHERE\s+\((?P<where>.+)\))?\s*;?\s*$",
        source)
    if match is None:
        raise MdxSyntaxError(
            "expected SELECT ... FROM [Cube] [WHERE (...)]")
    cube = match.group("cube")

    measures: List[str] = []
    row_axes: List[Tuple[str, str]] = []
    slicers_from_rows: List[Tuple[str, str, Any]] = []
    axes_seen = set()
    for axis_text in _split_top_level(match.group("axes")):
        axis_match = re.match(
            r"(?is)^\{(?P<set>.*)\}\s+ON\s+(?P<axis>COLUMNS|ROWS)$",
            axis_text.strip())
        if axis_match is None:
            raise MdxSyntaxError(
                f"cannot parse axis clause: {axis_text!r}")
        axis_name = axis_match.group("axis").upper()
        if axis_name in axes_seen:
            raise MdxSyntaxError(f"duplicate axis {axis_name}")
        axes_seen.add(axis_name)
        entries = _split_top_level(axis_match.group("set"))
        if axis_name == "COLUMNS":
            for entry in entries:
                segments = _segments(entry)
                if len(segments) != 2 \
                        or segments[0].lower() != "measures":
                    raise MdxSyntaxError(
                        f"COLUMNS entries must be "
                        f"[Measures].[name], got {entry!r}")
                measures.append(segments[1])
        else:
            explicit: dict = {}
            for entry in entries:
                segments = _segments(entry)
                if len(segments) == 3 and segments[2] == "Members":
                    row_axes.append((segments[0], segments[1]))
                elif len(segments) == 3:
                    axis = (segments[0], segments[1])
                    if axis not in row_axes:
                        row_axes.append(axis)
                    explicit.setdefault(axis, []).append(segments[2])
                else:
                    raise MdxSyntaxError(
                        f"ROWS entries must be [Dim].[level].Members "
                        f"or [Dim].[level].[member], got {entry!r}")
            for (dimension, level), members in explicit.items():
                slicers_from_rows.append(
                    (dimension, level, members))
    if not measures:
        raise MdxSyntaxError("the query selects no measures on COLUMNS")

    slicers: List[Tuple[str, str, Any]] = list(slicers_from_rows)
    where = match.group("where")
    if where:
        for entry in _split_top_level(where):
            segments = _segments(entry)
            if len(segments) != 3:
                raise MdxSyntaxError(
                    f"WHERE entries must be [Dim].[level].[member], "
                    f"got {entry!r}")
            slicers.append((segments[0], segments[1], segments[2]))
    return MdxQuery(cube=cube, measures=measures,
                    row_axes=row_axes, slicers=slicers)
