"""Cube schemas: the OLAP view over a relational star schema.

A :class:`CubeSchema` names a fact table, its measures (numeric fact
columns with aggregators) and its dimensions (dimension tables joined
through key columns, each with an ordered list of levels from coarsest
to finest).  Definitions can also be loaded from the dictionaries the
MDA code generator emits, closing the model-driven loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.database import Database
from repro.errors import CubeDefinitionError

_AGGREGATORS = {"sum": "SUM", "avg": "AVG", "min": "MIN",
                "max": "MAX", "count": "COUNT",
                "count_distinct": "COUNT"}


@dataclass
class Measure:
    """A numeric fact with its SQL aggregator."""

    name: str
    column: str
    aggregator: str = "sum"

    def __post_init__(self) -> None:
        if self.aggregator not in _AGGREGATORS:
            raise CubeDefinitionError(
                f"measure {self.name!r}: unknown aggregator "
                f"{self.aggregator!r}")

    @property
    def sql_function(self) -> str:
        return _AGGREGATORS[self.aggregator]

    @property
    def distinct(self) -> bool:
        return self.aggregator == "count_distinct"


@dataclass
class CalculatedMeasure:
    """A measure derived from base measures after aggregation.

    ``formula`` is evaluated per cell with the base measures bound by
    name, e.g. ``CalculatedMeasure("avg_ticket", "revenue / quantity",
    ["revenue", "quantity"])``.  Division by zero yields NULL.
    """

    name: str
    formula: str
    operands: List[str]

    def __post_init__(self) -> None:
        if not self.operands:
            raise CubeDefinitionError(
                f"calculated measure {self.name!r} needs operands")
        import ast

        try:
            tree = ast.parse(self.formula, mode="eval")
        except SyntaxError as exc:
            raise CubeDefinitionError(
                f"calculated measure {self.name!r}: bad formula "
                f"{self.formula!r}") from exc
        allowed = (ast.Expression, ast.BinOp, ast.UnaryOp, ast.Name,
                   ast.Constant, ast.Add, ast.Sub, ast.Mult, ast.Div,
                   ast.USub, ast.Load)
        for node in ast.walk(tree):
            if not isinstance(node, allowed):
                raise CubeDefinitionError(
                    f"calculated measure {self.name!r}: "
                    f"{type(node).__name__} not allowed in formula")
            if isinstance(node, ast.Name)                     and node.id not in self.operands:
                raise CubeDefinitionError(
                    f"calculated measure {self.name!r}: unknown "
                    f"operand {node.id!r}")
        self._tree = tree

    def evaluate(self, values: Dict[str, Any]) -> Any:
        import ast

        def walk(node):
            if isinstance(node, ast.Expression):
                return walk(node.body)
            if isinstance(node, ast.Constant):
                return node.value
            if isinstance(node, ast.Name):
                return values.get(node.id)
            if isinstance(node, ast.UnaryOp):
                operand = walk(node.operand)
                return None if operand is None else -operand
            left = walk(node.left)
            right = walk(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if right == 0:
                return None  # NULL on division by zero
            return left / right

        return walk(self._tree)


@dataclass
class CubeDimension:
    """A dimension joined to the fact table through a key column.

    ``key`` is the column name used both as the foreign key in the fact
    table and as the primary key of the dimension table.  ``levels``
    are dimension-table columns ordered coarsest → finest.
    """

    name: str
    table: str
    key: str
    levels: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            raise CubeDefinitionError(
                f"dimension {self.name!r} needs at least one level")

    def level_index(self, level: str) -> int:
        try:
            return self.levels.index(level)
        except ValueError as exc:
            raise CubeDefinitionError(
                f"dimension {self.name!r} has no level {level!r}; "
                f"levels are {self.levels}") from exc


class CubeSchema:
    """An OLAP cube definition over a star schema."""

    def __init__(self, name: str, fact_table: str,
                 measures: Sequence[Measure],
                 dimensions: Sequence[CubeDimension],
                 calculated: Sequence[CalculatedMeasure] = ()):
        if not measures:
            raise CubeDefinitionError(
                f"cube {name!r} needs at least one measure")
        if not dimensions:
            raise CubeDefinitionError(
                f"cube {name!r} needs at least one dimension")
        self.name = name
        self.fact_table = fact_table
        self.measures = list(measures)
        self.dimensions = list(dimensions)
        self.calculated = list(calculated)
        self._measures_by_name = {m.name: m for m in self.measures}
        self._calculated_by_name = {c.name: c for c in self.calculated}
        self._dimensions_by_name = {d.name: d for d in self.dimensions}
        overlap = set(self._measures_by_name) \
            & set(self._calculated_by_name)
        if overlap:
            raise CubeDefinitionError(
                f"cube {name!r}: {sorted(overlap)} defined both as "
                f"base and calculated measures")
        for calc in self.calculated:
            for operand in calc.operands:
                if operand not in self._measures_by_name:
                    raise CubeDefinitionError(
                        f"calculated measure {calc.name!r} references "
                        f"unknown base measure {operand!r}")
        if len(self._measures_by_name) != len(self.measures):
            raise CubeDefinitionError(
                f"cube {name!r} has duplicate measure names")
        if len(self._dimensions_by_name) != len(self.dimensions):
            raise CubeDefinitionError(
                f"cube {name!r} has duplicate dimension names")

    def __repr__(self) -> str:
        return (f"<CubeSchema {self.name!r} fact={self.fact_table} "
                f"dims={[d.name for d in self.dimensions]}>")

    def measure(self, name: str) -> Measure:
        measure = self._measures_by_name.get(name)
        if measure is None:
            raise CubeDefinitionError(
                f"cube {self.name!r} has no measure {name!r}")
        return measure

    def dimension(self, name: str) -> CubeDimension:
        dimension = self._dimensions_by_name.get(name)
        if dimension is None:
            raise CubeDefinitionError(
                f"cube {self.name!r} has no dimension {name!r}")
        return dimension

    def measure_names(self) -> List[str]:
        return [measure.name for measure in self.measures]

    def calculated_measure(self, name: str) -> "CalculatedMeasure":
        calc = self._calculated_by_name.get(name)
        if calc is None:
            raise CubeDefinitionError(
                f"cube {self.name!r} has no calculated measure "
                f"{name!r}")
        return calc

    def is_calculated(self, name: str) -> bool:
        return name in self._calculated_by_name

    def dimension_names(self) -> List[str]:
        return [dimension.name for dimension in self.dimensions]

    # -- integration with the MDA code generator --------------------------------

    @classmethod
    def from_definition(cls, definition: Dict[str, Any]) -> "CubeSchema":
        """Build a schema from a codegen ``cube_definitions`` entry."""
        try:
            measures = [
                Measure(entry["name"], entry["column"],
                        entry.get("aggregator", "sum"))
                for entry in definition["measures"]
            ]
            dimensions = [
                CubeDimension(entry["name"], entry["table"],
                              entry["key"], list(entry["levels"]))
                for entry in definition["dimensions"]
            ]
            calculated = [
                CalculatedMeasure(entry["name"], entry["formula"],
                                  list(entry["operands"]))
                for entry in definition.get("calculated", [])
            ]
            return cls(definition["name"], definition["fact_table"],
                       measures, dimensions, calculated)
        except KeyError as exc:
            raise CubeDefinitionError(
                f"cube definition is missing key {exc}") from exc

    # -- validation against a physical database ------------------------------------

    def validate_against(self, database: Database) -> List[str]:
        """Check that the star schema physically exists; returns problems."""
        problems: List[str] = []
        if not database.catalog.has_table(self.fact_table):
            problems.append(f"missing fact table {self.fact_table!r}")
            return problems
        fact_schema = database.storage(self.fact_table).schema
        for measure in self.measures:
            if not fact_schema.has_column(measure.column):
                problems.append(
                    f"fact table lacks measure column {measure.column!r}")
        for dimension in self.dimensions:
            if not fact_schema.has_column(dimension.key):
                problems.append(
                    f"fact table lacks key column {dimension.key!r} "
                    f"for dimension {dimension.name!r}")
            if not database.catalog.has_table(dimension.table):
                problems.append(
                    f"missing dimension table {dimension.table!r}")
                continue
            dim_schema = database.storage(dimension.table).schema
            if not dim_schema.has_column(dimension.key):
                problems.append(
                    f"dimension table {dimension.table!r} lacks key "
                    f"column {dimension.key!r}")
            for level in dimension.levels:
                if not dim_schema.has_column(level):
                    problems.append(
                        f"dimension table {dimension.table!r} lacks "
                        f"level column {level!r}")
        return problems

    def check_against(self, database: Database) -> None:
        problems = self.validate_against(database)
        if problems:
            raise CubeDefinitionError("; ".join(problems))
