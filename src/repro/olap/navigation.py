"""Stateful cube navigation: drill-down, roll-up, slice and dice.

The paper's analysis service offers "data cube visualization and
navigation"; this module is the navigation state machine behind that
UI.  A navigator tracks, per dimension, the currently displayed level
(or none) and the active slicers, and materializes the corresponding
cell set on demand.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.olap.engine import CellSet, OlapEngine


class CubeNavigator:
    """Interactive navigation over one cube."""

    def __init__(self, engine: OlapEngine,
                 measures: Optional[List[str]] = None):
        self.engine = engine
        self.schema = engine.schema
        self.measures = list(measures or self.schema.measure_names())
        # dimension name -> index into its level list, or None (rolled up)
        self._depth: Dict[str, Optional[int]] = {
            dimension.name: None for dimension in self.schema.dimensions
        }
        self._slicers: Dict[Tuple[str, str], Any] = {}
        self.breadcrumbs: List[str] = []

    # -- navigation operations ---------------------------------------------------

    def drill_down(self, dimension_name: str) -> "CubeNavigator":
        """Show the next finer level of a dimension."""
        dimension = self.schema.dimension(dimension_name)
        depth = self._depth[dimension.name]
        next_depth = 0 if depth is None else depth + 1
        if next_depth >= len(dimension.levels):
            raise QueryError(
                f"dimension {dimension.name!r} is already at its "
                f"finest level {dimension.levels[-1]!r}")
        self._depth[dimension.name] = next_depth
        self.breadcrumbs.append(
            f"drill-down {dimension.name} -> "
            f"{dimension.levels[next_depth]}")
        return self

    def roll_up(self, dimension_name: str) -> "CubeNavigator":
        """Collapse a dimension one level (or out of the view)."""
        dimension = self.schema.dimension(dimension_name)
        depth = self._depth[dimension.name]
        if depth is None:
            raise QueryError(
                f"dimension {dimension.name!r} is already rolled up")
        self._depth[dimension.name] = depth - 1 if depth > 0 else None
        self.breadcrumbs.append(f"roll-up {dimension.name}")
        return self

    def slice(self, dimension_name: str, level: str,
              member: Any) -> "CubeNavigator":
        """Fix one member of a dimension level."""
        dimension = self.schema.dimension(dimension_name)
        dimension.level_index(level)
        self._slicers[(dimension.name, level)] = member
        self.breadcrumbs.append(
            f"slice {dimension.name}.{level} = {member!r}")
        return self

    def dice(self, dimension_name: str, level: str,
             members: List[Any]) -> "CubeNavigator":
        """Restrict a dimension level to a member subset."""
        dimension = self.schema.dimension(dimension_name)
        dimension.level_index(level)
        self._slicers[(dimension.name, level)] = list(members)
        self.breadcrumbs.append(
            f"dice {dimension.name}.{level} in {members!r}")
        return self

    def clear_slice(self, dimension_name: str,
                    level: str) -> "CubeNavigator":
        self._slicers.pop((dimension_name, level), None)
        self.breadcrumbs.append(
            f"clear-slice {dimension_name}.{level}")
        return self

    def reset(self) -> "CubeNavigator":
        for name in self._depth:
            self._depth[name] = None
        self._slicers.clear()
        self.breadcrumbs.append("reset")
        return self

    # -- current state -------------------------------------------------------------

    def visible_axes(self) -> List[Tuple[str, str]]:
        axes: List[Tuple[str, str]] = []
        for dimension in self.schema.dimensions:
            depth = self._depth[dimension.name]
            if depth is not None:
                axes.append((dimension.name, dimension.levels[depth]))
        return axes

    def active_slicers(self) -> List[Tuple[str, str, Any]]:
        return [(dimension, level, member)
                for (dimension, level), member in self._slicers.items()]

    def current_view(self) -> CellSet:
        """Materialize the cell set for the current navigation state."""
        return self.engine.query(
            self.measures, self.visible_axes(), self.active_slicers())
