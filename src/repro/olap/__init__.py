"""OLAP substrate (the Mondrian-style analysis engine).

The analysis service (AS) defines OLAP cubes over star schemas stored
in the embedded engine, evaluates multidimensional queries (with an
aggregate cache), parses an MDX-lite query language, and supports
interactive navigation (drill-down / roll-up / slice / dice):

* :mod:`repro.olap.model` — cube schema over a star schema
* :mod:`repro.olap.engine` — aggregation engine and cell sets
* :mod:`repro.olap.query` — MDX-lite parser and executor
* :mod:`repro.olap.navigation` — stateful cube browsing
"""

from repro.olap.engine import CellSet, OlapEngine
from repro.olap.model import CubeDimension, CubeSchema, Measure
from repro.olap.navigation import CubeNavigator
from repro.olap.query import MdxQuery, parse_mdx

__all__ = [
    "CellSet",
    "CubeDimension",
    "CubeNavigator",
    "CubeSchema",
    "MdxQuery",
    "Measure",
    "OlapEngine",
    "parse_mdx",
]
