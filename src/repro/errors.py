"""Exception hierarchy shared by every ODBIS subsystem.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch platform errors without also swallowing programming
mistakes such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# --- database engine -------------------------------------------------------

class EngineError(ReproError):
    """Base class for errors raised by the embedded SQL engine."""


class SqlSyntaxError(EngineError):
    """The SQL text could not be parsed.

    Carries the source position of the offending token when known, so
    tooling (and the static analyzer) can point at the exact spot.
    """

    def __init__(self, message: str, line: "int | None" = None,
                 column: "int | None" = None,
                 offset: "int | None" = None):
        super().__init__(message)
        self.line = line
        self.column = column
        self.offset = offset


class CatalogError(EngineError):
    """A schema object is missing, duplicated or inconsistent."""


class ConstraintViolation(EngineError):
    """A NOT NULL, UNIQUE or PRIMARY KEY constraint was violated."""


class TypeMismatch(EngineError):
    """A value does not fit the declared column type."""


class TransactionError(EngineError):
    """Invalid use of the transaction API (double commit, etc.)."""


class SnapshotError(EngineError):
    """A database snapshot file is truncated, corrupt or malformed."""


class WalError(EngineError):
    """Misuse of the write-ahead log (bad magic, closed log, bad
    fsync policy).  Torn or corrupt *tails* are not errors — recovery
    discards them silently, because a torn tail is exactly what a
    crash is expected to leave behind."""


# --- ORM -------------------------------------------------------------------

class OrmError(ReproError):
    """Base class for persistence-layer errors."""


class MappingError(OrmError):
    """An entity class is not mapped correctly."""


class EntityNotFound(OrmError):
    """No row exists for the requested entity identity."""


class StaleSessionError(OrmError):
    """The session was used after being closed."""


# --- metamodeling ----------------------------------------------------------

class MofError(ReproError):
    """Base class for meta-object-facility errors."""


class MetamodelError(MofError):
    """A metamodel definition is invalid (unknown class, bad reference)."""


class ModelConstraintError(MofError):
    """A model element violates a metamodel constraint."""


class XmiError(MofError):
    """XMI serialization or deserialization failed."""


# --- MDA / 2TUP ------------------------------------------------------------

class MdaError(ReproError):
    """Base class for model-driven-architecture errors."""


class TransformationError(MdaError):
    """A QVT-style transformation failed to apply."""


class ProcessError(MdaError):
    """Invalid 2TUP process state transition."""


# --- ETL -------------------------------------------------------------------

class EtlError(ReproError):
    """Base class for integration-service errors."""


class JobValidationError(EtlError):
    """The job graph is malformed (cycle, missing input, ...)."""


class JobExecutionError(EtlError):
    """A job step failed while running."""


class SchedulerError(EtlError):
    """Invalid schedule definition or scheduler state."""


class JobQuarantinedError(EtlError):
    """The job is quarantined after repeated consecutive failures."""


# --- OLAP ------------------------------------------------------------------

class OlapError(ReproError):
    """Base class for analysis-service errors."""


class CubeDefinitionError(OlapError):
    """A cube schema is inconsistent with its star schema."""


class MdxSyntaxError(OlapError):
    """An MDX-lite query could not be parsed."""


class QueryError(OlapError):
    """A cube query referenced unknown members or measures."""


# --- reporting -------------------------------------------------------------

class ReportingError(ReproError):
    """Base class for reporting-service errors."""


class ReportDefinitionError(ReportingError):
    """A report design is invalid."""


class RenderError(ReportingError):
    """A report could not be rendered."""


# --- rules / BPM -----------------------------------------------------------

class RulesError(ReproError):
    """Base class for business-rules errors."""


class RuleSyntaxError(RulesError):
    """The rule DSL text could not be parsed."""


class BpmError(ReproError):
    """Base class for business-process errors."""


# --- static analysis -------------------------------------------------------

class AnalysisError(ReproError):
    """Misuse of the static-analysis subsystem (unknown artifact kind,
    malformed artifact payload, ...).  Findings about *artifacts* are
    reported as diagnostics, not exceptions."""


# --- resilience ------------------------------------------------------------

class ResilienceError(ReproError):
    """Base class for reliability-kernel errors."""


class RetryExhaustedError(ResilienceError):
    """Every permitted attempt failed; the last error is chained.

    ``attempts`` is how many times the operation ran; ``last_error``
    is the exception raised by the final attempt.
    """

    def __init__(self, message: str, attempts: int,
                 last_error: "BaseException | None" = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open; the call was not attempted.

    ``retry_after`` is the cooldown remaining in seconds (on the
    breaker's injected clock) before the breaker will half-open.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ResilienceError):
    """The request's time budget ran out before the operation finished."""


class BulkheadRejectedError(ResilienceError):
    """The bulkhead's concurrency cap is full; the call was shed."""


class BulkheadReleaseError(ResilienceError):
    """``release()`` was called without a matching ``try_acquire()``.

    A caller bug, not load: an unmatched release would drive the
    in-use counter negative and corrupt health reporting.  Under
    ``REPRO_SANITIZE=1`` the bulkhead floors at zero and files a
    sanitizer report instead of raising."""


class InjectedFault(ResilienceError):
    """A deliberate failure raised by the :class:`FaultInjector`.

    Chaos tests use this class to tell injected infrastructure
    failures apart from genuine bugs; production code treats it like
    any other transient infrastructure error.
    """

    def __init__(self, site: str, sequence: int):
        super().__init__(f"injected fault at {site!r} (#{sequence})")
        self.site = site
        self.sequence = sequence


class CrashPoint(InjectedFault):
    """Simulated process death at an exact byte offset of a log file.

    Raised by the :class:`FaultInjector` from inside a write-ahead-log
    append: every byte before ``offset`` reached the file, everything
    after is lost — the torn-tail shape a real ``kill -9`` leaves.
    Code under test must treat the owning object as dead and recover
    from disk; unlike other injected faults, a crash point is never
    retried past.
    """

    def __init__(self, site: str, sequence: int, offset: int):
        super().__init__(site, sequence)
        self.offset = offset
        self.args = (f"simulated crash at {site!r} byte offset "
                     f"{offset} (#{sequence})",)


# --- security --------------------------------------------------------------

class SecurityError(ReproError):
    """Base class for security errors."""


class AuthenticationError(SecurityError):
    """Credentials or session token were rejected."""


class AccessDeniedError(SecurityError):
    """The principal lacks the authority required by the operation."""


# --- ESB / web -------------------------------------------------------------

class EsbError(ReproError):
    """Base class for service-bus errors."""


class WebError(ReproError):
    """Base class for web-layer errors."""


class HttpError(WebError):
    """An HTTP-style error carrying a status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


# --- platform core ---------------------------------------------------------

class PlatformError(ReproError):
    """Base class for ODBIS platform errors."""


class TenantError(PlatformError):
    """Unknown tenant, duplicate tenant or cross-tenant access."""


class ProvisioningError(PlatformError):
    """Tenant provisioning failed."""


class SubscriptionError(PlatformError):
    """Metering/billing misuse (unknown plan, closed period, ...)."""


class ServiceError(PlatformError):
    """A core BI service rejected an operation."""


class GatewayShutdownError(PlatformError):
    """The request gateway is draining; new submissions are rejected."""


class ShardError(PlatformError):
    """Shard-map misuse: empty ring, unknown or duplicate shard, a
    replica with a replication gap and no snapshot to resync from."""


class StaleEpochError(ShardError):
    """A routed statement carried a shard generation that is no longer
    current — the dispatch raced a promotion.  Retryable by contract:
    re-resolve the route (the new primary answers) and re-dispatch;
    the gateway maps it to a 503 with ``"retryable": true``.

    ``carried_generation`` is the epoch the handle was resolved at;
    ``current_generation`` is where the shard actually is.
    """

    def __init__(self, shard: str, carried_generation: int,
                 current_generation: int, why: str):
        super().__init__(
            f"shard {shard!r} epoch is stale: the dispatch carried "
            f"generation {carried_generation} but the shard is at "
            f"{current_generation} ({why}); re-route and retry")
        self.shard = shard
        self.carried_generation = carried_generation
        self.current_generation = current_generation


class SupervisionError(PlatformError):
    """The shard supervisor refused an operation — most importantly a
    failover attempt rejected by flap damping (too soon after the last
    promotion, or the per-window budget is exhausted).  ``retry_after``
    is how long (on the supervisor's clock) until the damping window
    admits another attempt.
    """

    def __init__(self, message: str, shard: "str | None" = None,
                 reason: "str | None" = None,
                 retry_after: float = 0.0):
        super().__init__(message)
        self.shard = shard
        self.reason = reason
        self.retry_after = retry_after
