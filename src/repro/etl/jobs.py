"""ETL job definition, validation, execution and job graphs."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.engine.database import Database
from repro.errors import JobExecutionError, JobValidationError
from repro.etl.operators import Operator, Row, RowError
from repro.etl.sources import Source

_LOAD_MODES = ("append", "replace")


class Load:
    """The load step: write rows into a table of an embedded database."""

    def __init__(self, database: Database, table: str,
                 mode: str = "append"):
        if mode not in _LOAD_MODES:
            raise JobValidationError(
                f"load mode must be one of {_LOAD_MODES}, got {mode!r}")
        self.database = database
        self.table = table
        self.mode = mode

    def describe(self) -> str:
        return f"load({self.table}, {self.mode})"

    def write(self, rows: Iterator[Row]) -> int:
        if not self.database.catalog.has_table(self.table):
            raise JobExecutionError(
                f"load target table {self.table!r} does not exist")
        if self.mode == "replace":
            self.database.execute(f"DELETE FROM {self.table}")
        schema = self.database.storage(self.table).schema
        written = 0
        for row in rows:
            usable = {key: value for key, value in row.items()
                      if schema.has_column(key)}
            if not usable:
                raise JobExecutionError(
                    f"row has no columns matching table "
                    f"{self.table!r}: {row!r}")
            columns = ", ".join(usable)
            placeholders = ", ".join("?" for _ in usable)
            self.database.execute(
                f"INSERT INTO {self.table} ({columns}) "
                f"VALUES ({placeholders})",
                tuple(usable.values()))
            written += 1
        return written


class EtlJob:
    """A named pipeline: source → operators → load.

    A job without a load target is a *probe* job: running it returns
    the transformed rows instead of writing them.
    """

    def __init__(self, name: str, source: Source,
                 operators: Sequence[Operator] = (),
                 load: Optional[Load] = None):
        self.name = name
        self.source = source
        self.operators = list(operators)
        self.load = load
        self.validate()

    def __repr__(self) -> str:
        return f"<EtlJob {self.name!r} steps={len(self.operators)}>"

    def validate(self) -> None:
        if not isinstance(self.source, Source):
            raise JobValidationError(
                f"job {self.name!r}: source must be a Source, "
                f"got {type(self.source).__name__}")
        for operator in self.operators:
            if not isinstance(operator, Operator):
                raise JobValidationError(
                    f"job {self.name!r}: {operator!r} is not an Operator")

    def describe(self) -> List[str]:
        steps = [f"extract({self.source.describe()})"]
        steps.extend(operator.describe() for operator in self.operators)
        if self.load is not None:
            steps.append(self.load.describe())
        return steps


@dataclass
class JobResult:
    """Statistics of one job run."""

    job: str
    rows_read: int = 0
    rows_written: int = 0
    rows_rejected: int = 0
    duration_seconds: float = 0.0
    attempts: int = 1
    errors: List[str] = field(default_factory=list)
    output: List[Row] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return True  # a result object only exists for completed runs


class JobRunner:
    """Executes jobs with an error policy.

    * ``error_policy='fail'`` — the first bad row aborts the run and
      nothing is committed (the load runs inside a transaction).
    * ``error_policy='skip'`` — bad rows are counted and skipped.

    Every failure mode — bad rows, a throwing operator, a load-step
    write error, an injected infrastructure fault — surfaces as
    :class:`~repro.errors.JobExecutionError` with the original
    exception chained, so callers (the scheduler, the integration
    service) have exactly one failure type to handle.

    ``retry_policy`` (a :class:`~repro.core.resilience.RetryPolicy`,
    duck-typed) re-runs the whole job on failure: each attempt
    rebuilds the row stream from the source, and the load step's
    per-attempt transaction guarantees a failed attempt leaves
    nothing behind.  ``faults`` is consulted at the ``etl.job`` site.
    """

    def __init__(self, error_policy: str = "fail", retry_policy=None,
                 clock=None, faults=None):
        if error_policy not in ("fail", "skip"):
            raise JobValidationError(
                f"error policy must be 'fail' or 'skip', "
                f"got {error_policy!r}")
        self.error_policy = error_policy
        self.retry_policy = retry_policy
        self.clock = clock
        self.faults = faults
        self.history: List[JobResult] = []

    def run(self, job: EtlJob, retry_policy=None) -> JobResult:
        """Run ``job`` (retrying per policy); returns the final result."""
        policy = retry_policy if retry_policy is not None \
            else self.retry_policy
        attempts = [0]

        def attempt() -> JobResult:
            attempts[0] += 1
            return self._attempt(job)

        if policy is None:
            result = attempt()
        else:
            try:
                result = policy.call(attempt, clock=self.clock)
            except JobExecutionError:
                raise
            except Exception as exc:
                # RetryExhaustedError (or a policy misconfiguration):
                # keep the one-failure-type contract.
                last = getattr(exc, "last_error", None) or exc
                raise JobExecutionError(
                    f"job {job.name!r} failed after {attempts[0]} "
                    f"attempts: {last}") from last
        result.attempts = attempts[0]
        self.history.append(result)
        return result

    def _attempt(self, job: EtlJob) -> JobResult:
        """One complete source → operators → load pass."""
        result = JobResult(job=job.name)
        started = time.perf_counter()

        def counting_source() -> Iterator[Row]:
            for row in job.source.rows():
                result.rows_read += 1
                yield row

        def sink(error: RowError) -> None:
            result.rows_rejected += 1
            result.errors.append(str(error))

        stream: Iterator[Row] = counting_source()
        for operator in job.operators:
            operator.error_sink = sink if self.error_policy == "skip" \
                else None
            stream = operator.process(stream)

        try:
            if self.faults is not None:
                self.faults.fire("etl.job")
                self.faults.fire(f"etl.job.{job.name}")
            if job.load is None:
                result.output = list(stream)
                result.rows_written = len(result.output)
            else:
                database = job.load.database
                own_transaction = not database.in_transaction
                if own_transaction:
                    database.begin()
                try:
                    result.rows_written = job.load.write(stream)
                except Exception:
                    if own_transaction:
                        database.rollback()
                    raise
                else:
                    if own_transaction:
                        database.commit()
        except Exception as exc:
            raise JobExecutionError(
                f"job {job.name!r} failed: {exc}") from exc
        finally:
            for operator in job.operators:
                operator.error_sink = None
            result.duration_seconds = time.perf_counter() - started

        return result


class JobGraph:
    """Dependencies between jobs with topological execution order."""

    def __init__(self) -> None:
        self._jobs: Dict[str, EtlJob] = {}
        self._depends_on: Dict[str, List[str]] = {}

    def add(self, job: EtlJob,
            depends_on: Sequence[str] = ()) -> "JobGraph":
        if job.name in self._jobs:
            raise JobValidationError(
                f"job {job.name!r} already in the graph")
        self._jobs[job.name] = job
        self._depends_on[job.name] = list(depends_on)
        return self

    def job_names(self) -> List[str]:
        return sorted(self._jobs)

    def execution_order(self) -> List[str]:
        """Topological order; raises on cycles or unknown dependencies."""
        for name, dependencies in self._depends_on.items():
            for dependency in dependencies:
                if dependency not in self._jobs:
                    raise JobValidationError(
                        f"job {name!r} depends on unknown job "
                        f"{dependency!r}")
        order: List[str] = []
        state: Dict[str, str] = {}

        def visit(name: str) -> None:
            mark = state.get(name)
            if mark == "done":
                return
            if mark == "doing":
                raise JobValidationError(
                    f"dependency cycle involving job {name!r}")
            state[name] = "doing"
            for dependency in self._depends_on[name]:
                visit(dependency)
            state[name] = "done"
            order.append(name)

        for name in sorted(self._jobs):
            visit(name)
        return order

    def run_all(self, runner: JobRunner) -> Dict[str, JobResult]:
        """Run every job in dependency order."""
        results: Dict[str, JobResult] = {}
        for name in self.execution_order():
            results[name] = runner.run(self._jobs[name])
        return results
