"""Transform operators for ETL pipelines.

Operators are composable row-stream transformers: each consumes an
iterator of row dicts and yields transformed rows.  A row that cannot
be processed raises :class:`RowError`, which the job runner either
counts-and-skips or escalates depending on its error policy.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import EtlError

Row = Dict[str, Any]


class RowError(EtlError):
    """A single row failed inside an operator."""

    def __init__(self, message: str, row: Row):
        super().__init__(message)
        self.row = dict(row)


class Operator:
    """Base class: subclasses override :meth:`process`.

    Per-row failures are routed through :meth:`_reject`: when the job
    runner installed an ``error_sink`` (skip policy) the bad row is
    recorded and the stream continues; otherwise the RowError
    propagates (fail policy).
    """

    name = "operator"
    error_sink: Optional[Callable[[RowError], None]] = None

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def _reject(self, message: str, row: Row) -> None:
        error = RowError(f"{self.describe()}: {message}", row)
        if self.error_sink is None:
            raise error
        self.error_sink(error)


class Project(Operator):
    """Keep only the listed columns (missing columns are an error)."""

    name = "project"

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise EtlError("Project needs at least one column")
        self.columns = list(columns)

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for row in rows:
            missing = [c for c in self.columns if c not in row]
            if missing:
                self._reject(f"row lacks column {missing[0]!r}", row)
                continue
            yield {column: row[column] for column in self.columns}


class Rename(Operator):
    """Rename columns: ``Rename({'old': 'new'})``."""

    name = "rename"

    def __init__(self, renames: Dict[str, str]):
        self.renames = dict(renames)

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for row in rows:
            yield {self.renames.get(key, key): value
                   for key, value in row.items()}


class Filter(Operator):
    """Keep rows for which the predicate is truthy."""

    name = "filter"

    def __init__(self, predicate: Callable[[Row], bool],
                 label: str = "predicate"):
        self.predicate = predicate
        self.label = label

    def describe(self) -> str:
        return f"filter({self.label})"

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for row in rows:
            if self.predicate(row):
                yield row


class Derive(Operator):
    """Add (or overwrite) a column computed from the row."""

    name = "derive"

    def __init__(self, column: str, compute: Callable[[Row], Any]):
        self.column = column
        self.compute = compute

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for row in rows:
            updated = dict(row)
            updated[self.column] = self.compute(row)
            yield updated


class TypeCast(Operator):
    """Cast named columns to int/float/str/bool/date; bad values error."""

    _CASTS: Dict[str, Callable[[Any], Any]] = {
        "int": lambda value: int(value),
        "float": lambda value: float(value),
        "str": lambda value: str(value),
        "bool": lambda value: str(value).strip().lower()
        in ("1", "true", "yes", "y"),
        "date": lambda value: value
        if isinstance(value, datetime.date)
        else datetime.date.fromisoformat(str(value).strip()),
    }

    name = "typecast"

    def __init__(self, casts: Dict[str, str]):
        for column, type_name in casts.items():
            if type_name not in self._CASTS:
                raise EtlError(
                    f"typecast: unknown type {type_name!r} "
                    f"for column {column!r}")
        self.casts = dict(casts)

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for row in rows:
            updated = dict(row)
            bad = False
            for column, type_name in self.casts.items():
                value = updated.get(column)
                if value is None or value == "":
                    updated[column] = None
                    continue
                try:
                    updated[column] = self._CASTS[type_name](value)
                except (ValueError, TypeError):
                    self._reject(
                        f"cannot cast {column}={value!r} to {type_name}",
                        row)
                    bad = True
                    break
            if not bad:
                yield updated


class Lookup(Operator):
    """Enrich rows from a key→values mapping (a hash lookup join).

    ``on`` names the row column holding the key; matched mapping values
    (a dict) are merged into the row.  Unmatched rows pass through
    unchanged with ``default`` merged in, or raise when
    ``required=True``.
    """

    name = "lookup"

    def __init__(self, on: str, mapping: Dict[Any, Dict[str, Any]],
                 required: bool = False,
                 default: Optional[Dict[str, Any]] = None):
        self.on = on
        self.mapping = dict(mapping)
        self.required = required
        self.default = dict(default or {})

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for row in rows:
            key = row.get(self.on)
            match = self.mapping.get(key)
            if match is not None:
                yield {**row, **match}
            elif self.required:
                self._reject(f"no match for {self.on}={key!r}", row)
            else:
                yield {**row, **self.default}


class Deduplicate(Operator):
    """Drop rows whose key columns repeat an already-seen combination."""

    name = "deduplicate"

    def __init__(self, keys: Sequence[str]):
        if not keys:
            raise EtlError("Deduplicate needs at least one key column")
        self.keys = list(keys)

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        seen = set()
        for row in rows:
            marker = tuple(repr(row.get(key)) for key in self.keys)
            if marker in seen:
                continue
            seen.add(marker)
            yield row


class Sort(Operator):
    """Sort the stream (materializes it) by one or more columns.

    Prefix a column with ``-`` for descending order.
    """

    name = "sort"

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise EtlError("Sort needs at least one column")
        self.columns = list(columns)

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        materialized = list(rows)
        for column in reversed(self.columns):
            descending = column.startswith("-")
            name = column[1:] if descending else column
            materialized.sort(
                key=lambda row: (row.get(name) is None, row.get(name)),
                reverse=descending)
        yield from materialized


class SurrogateKey(Operator):
    """Assign a dense integer surrogate key column."""

    name = "surrogate-key"

    def __init__(self, column: str, start: int = 1):
        self.column = column
        self.start = start

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for offset, row in enumerate(rows):
            updated = dict(row)
            updated[self.column] = self.start + offset
            yield updated


class Aggregate(Operator):
    """Group rows and compute aggregates.

    ``aggregations`` maps output column → ``(function, input column)``
    where function is one of sum/avg/min/max/count.
    """

    _FUNCTIONS = ("sum", "avg", "min", "max", "count")

    name = "aggregate"

    def __init__(self, group_by: Sequence[str],
                 aggregations: Dict[str, tuple]):
        for output, (function, _column) in aggregations.items():
            if function not in self._FUNCTIONS:
                raise EtlError(
                    f"aggregate: unknown function {function!r} "
                    f"for {output!r}")
        self.group_by = list(group_by)
        self.aggregations = dict(aggregations)

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        groups: Dict[tuple, List[Row]] = {}
        order: List[tuple] = []
        for row in rows:
            key = tuple(repr(row.get(column)) for column in self.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        for key in order:
            members = groups[key]
            result: Row = {
                column: members[0].get(column)
                for column in self.group_by
            }
            for output, (function, column) in self.aggregations.items():
                values = [member.get(column) for member in members
                          if member.get(column) is not None]
                if function == "count":
                    result[output] = len(values)
                elif not values:
                    result[output] = None
                elif function == "sum":
                    result[output] = sum(values)
                elif function == "avg":
                    result[output] = sum(values) / len(values)
                elif function == "min":
                    result[output] = min(values)
                elif function == "max":
                    result[output] = max(values)
            yield result


class Validate(Operator):
    """Raise RowError for rows failing any rule.

    ``rules`` maps a rule label to a predicate over the row.
    """

    name = "validate"

    def __init__(self, rules: Dict[str, Callable[[Row], bool]]):
        if not rules:
            raise EtlError("Validate needs at least one rule")
        self.rules = dict(rules)

    def process(self, rows: Iterator[Row]) -> Iterator[Row]:
        for row in rows:
            failed = None
            for label, predicate in self.rules.items():
                if not predicate(row):
                    failed = label
                    break
            if failed is not None:
                self._reject(f"rule {failed!r} failed", row)
            else:
                yield row
