"""Slowly-changing-dimension (Type 2) loading.

The paper's TCIM carries a ``history_tracking`` flag and the PIM→PSM
transformation emits ``valid_from``/``valid_to`` columns for it; this
module supplies the matching load strategy.  A Type-2 load keys rows
by a *natural key*: when a tracked attribute changes, the current
version is closed (``valid_to`` set, ``is_current`` cleared) and a new
version is inserted — full history is preserved.

Target-table contract: the natural-key and tracked columns, plus a
surrogate-key INTEGER column (``row_key`` by default, configurable to
reuse a generated schema's own surrogate), ``valid_from DATE``,
``valid_to DATE`` and ``is_current BOOLEAN``.
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, Iterator, List, Sequence

from repro.engine.database import Database
from repro.errors import JobExecutionError, JobValidationError
from repro.etl.jobs import Load
from repro.etl.operators import Row



class ScdType2Load(Load):
    """A Load that maintains Type-2 history in a dimension table."""

    def __init__(self, database: Database, table: str,
                 natural_key: Sequence[str],
                 tracked: Sequence[str],
                 effective_date: datetime.date,
                 surrogate: str = "row_key"):
        super().__init__(database, table, mode="append")
        if not natural_key:
            raise JobValidationError(
                "SCD2 load needs at least one natural-key column")
        if not tracked:
            raise JobValidationError(
                "SCD2 load needs at least one tracked column")
        overlap = set(natural_key) & set(tracked)
        if overlap:
            raise JobValidationError(
                f"columns {sorted(overlap)} cannot be both key and "
                f"tracked")
        self.natural_key = list(natural_key)
        self.tracked = list(tracked)
        self.effective_date = effective_date
        self.surrogate = surrogate

    def describe(self) -> str:
        return (f"scd2-load({self.table}, "
                f"key={'+'.join(self.natural_key)})")

    def _check_contract(self) -> None:
        schema = self.database.storage(self.table).schema
        needed = (list(self.natural_key) + list(self.tracked)
                  + [self.surrogate, "valid_from", "valid_to",
                     "is_current"])
        missing = [column for column in needed
                   if not schema.has_column(column)]
        if missing:
            raise JobExecutionError(
                f"SCD2 target {self.table!r} lacks columns {missing}")

    def _current_version(self, key_values: Sequence[Any]) \
            -> Dict[str, Any]:
        predicate = " AND ".join(
            f"{column} = ?" for column in self.natural_key)
        rows = self.database.query(
            f"SELECT * FROM {self.table} "
            f"WHERE {predicate} AND is_current = TRUE",
            tuple(key_values))
        return rows[0] if rows else None

    def _next_surrogate(self) -> int:
        current = self.database.query_value(
            f"SELECT MAX({self.surrogate}) FROM {self.table}")
        return 1 if current is None else int(current) + 1

    def _insert_version(self, row: Row) -> None:
        values = {column: row.get(column)
                  for column in self.natural_key + self.tracked}
        values[self.surrogate] = self._next_surrogate()
        values["valid_from"] = self.effective_date
        values["valid_to"] = None
        values["is_current"] = True
        columns = ", ".join(values)
        placeholders = ", ".join("?" for _ in values)
        self.database.execute(
            f"INSERT INTO {self.table} ({columns}) "
            f"VALUES ({placeholders})",
            tuple(values.values()))

    def _close_version(self, surrogate_value: int) -> None:
        self.database.execute(
            f"UPDATE {self.table} SET valid_to = ?, "
            f"is_current = FALSE WHERE {self.surrogate} = ?",
            (self.effective_date, surrogate_value))

    def write(self, rows: Iterator[Row]) -> int:
        """Apply the incoming rows as Type-2 changes.

        Returns the number of *new versions* written (unchanged rows
        write nothing).
        """
        if not self.database.catalog.has_table(self.table):
            raise JobExecutionError(
                f"load target table {self.table!r} does not exist")
        self._check_contract()
        written = 0
        for row in rows:
            missing = [column for column in self.natural_key
                       if row.get(column) is None]
            if missing:
                raise JobExecutionError(
                    f"SCD2 row lacks natural key {missing[0]!r}: "
                    f"{row!r}")
            key_values = [row[column] for column in self.natural_key]
            current = self._current_version(key_values)
            if current is None:
                self._insert_version(row)
                written += 1
                continue
            changed = any(current.get(column) != row.get(column)
                          for column in self.tracked)
            if not changed:
                continue
            self._close_version(current[self.surrogate])
            self._insert_version(row)
            written += 1
        return written
