"""ETL substrate (the Talend-style integration engine).

The integration service (IS) defines data-integration jobs as a chain
of operators between an extractor and a loader, validates them, runs
them with per-run statistics, and schedules them on a simulated clock:

* :mod:`repro.etl.sources` — extractors (tables, rows, CSV, callables)
* :mod:`repro.etl.operators` — transform operators (project, filter,
  derive, lookup, aggregate, dedupe, surrogate keys, type casts, ...)
* :mod:`repro.etl.jobs` — job definition, validation, runner, job graph
* :mod:`repro.etl.scheduler` — cron-lite scheduling on a virtual clock
"""

from repro.etl.jobs import EtlJob, JobGraph, JobResult, JobRunner, Load
from repro.etl.operators import (
    Aggregate,
    Deduplicate,
    Derive,
    Filter,
    Lookup,
    Operator,
    Project,
    Rename,
    RowError,
    Sort,
    SurrogateKey,
    TypeCast,
    Validate,
)
from repro.etl.scheduler import ExecutionRecord, Schedule, Scheduler
from repro.etl.sources import (
    CallableSource,
    CsvSource,
    RowsSource,
    Source,
    TableSource,
    time_dimension_rows,
)

__all__ = [
    "Aggregate",
    "CallableSource",
    "CsvSource",
    "Deduplicate",
    "Derive",
    "EtlJob",
    "ExecutionRecord",
    "Filter",
    "JobGraph",
    "JobResult",
    "JobRunner",
    "Load",
    "Lookup",
    "Operator",
    "Project",
    "Rename",
    "RowError",
    "RowsSource",
    "Schedule",
    "Scheduler",
    "Sort",
    "Source",
    "SurrogateKey",
    "TableSource",
    "TypeCast",
    "Validate",
    "time_dimension_rows",
]
