"""Cron-lite job scheduling on a simulated clock.

The integration service schedules tenant jobs without real wall-clock
waits: the scheduler owns a virtual clock (minutes since epoch) and
:meth:`Scheduler.advance` runs everything that came due, round-robin
across owners so one tenant cannot starve the others — the fairness
property benchmark E10 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulerError
from repro.etl.jobs import EtlJob, JobResult, JobRunner

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class Schedule:
    """When a job runs: every N minutes, or daily at HH:MM.

    Exactly one of ``every_minutes`` / ``daily_at`` must be given.
    """

    every_minutes: Optional[int] = None
    daily_at: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.every_minutes is None) == (self.daily_at is None):
            raise SchedulerError(
                "Schedule needs exactly one of every_minutes= or daily_at=")
        if self.every_minutes is not None and self.every_minutes <= 0:
            raise SchedulerError("every_minutes must be positive")
        if self.daily_at is not None:
            self._parse_daily(self.daily_at)

    @staticmethod
    def _parse_daily(text: str) -> int:
        parts = text.split(":")
        if len(parts) != 2:
            raise SchedulerError(
                f"daily_at must be 'HH:MM', got {text!r}")
        try:
            hours, minutes = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise SchedulerError(
                f"daily_at must be 'HH:MM', got {text!r}") from exc
        if not (0 <= hours < 24 and 0 <= minutes < 60):
            raise SchedulerError(f"daily_at out of range: {text!r}")
        return hours * 60 + minutes

    def next_run_after(self, minute: int) -> int:
        """The first scheduled minute strictly after ``minute``."""
        if self.every_minutes is not None:
            return minute + self.every_minutes
        offset = self._parse_daily(self.daily_at)
        day_start = (minute // MINUTES_PER_DAY) * MINUTES_PER_DAY
        candidate = day_start + offset
        if candidate <= minute:
            candidate += MINUTES_PER_DAY
        return candidate


@dataclass
class ScheduledJob:
    job: EtlJob
    schedule: Schedule
    owner: str
    next_run: int
    runs: int = 0
    retry_policy: Optional[object] = None  # duck-typed RetryPolicy
    consecutive_failures: int = 0
    quarantined: bool = False


@dataclass
class ExecutionRecord:
    """One scheduler-triggered run (or the reported skip of one).

    ``status`` is ``"ok"`` (``result`` holds the statistics),
    ``"failed"`` (``error`` holds the normalized failure message),
    ``"quarantined"`` (the job was skipped-and-reported because it
    crossed the consecutive-failure threshold) or ``"deferred"`` (the
    platform's overload admission declined batch work this tick; the
    job retries at its next scheduled occurrence, and the deferral is
    neither a failure nor a dispatched run).
    """

    minute: int
    owner: str
    job: str
    result: Optional[JobResult]
    status: str = "ok"
    error: Optional[str] = None


class Scheduler:
    """A virtual-clock scheduler with round-robin fairness across owners.

    Ticks are failure-isolated: a job that raises records a failed
    :class:`ExecutionRecord` and the tick continues for the remaining
    owners, so one broken tenant job can never starve the round-robin.
    After ``quarantine_after`` *consecutive* failures a job is
    quarantined — on each due minute it is skipped-and-reported (a
    ``"quarantined"`` record, never a silent drop) until
    :meth:`unquarantine` readmits it.

    ``journal`` (a :class:`~repro.engine.wal.JournalLog`, duck-typed)
    makes the execution history crash-durable: every
    :class:`ExecutionRecord` and clock advance is appended, and a
    scheduler built over the surviving journal restores its clock,
    its run log and each job's quarantine posture.  Jobs themselves
    (callables) cannot be journaled — re-adding a job under its old
    name (as platform re-provisioning does) re-attaches the recovered
    state.  Journaled history records carry ``result=None``; the
    status/error fields are what survive.
    """

    def __init__(self, runner: Optional[JobRunner] = None,
                 start_minute: int = 0,
                 quarantine_after: Optional[int] = None,
                 journal=None,
                 admission: Optional[Callable[[str], bool]] = None):
        if quarantine_after is not None and quarantine_after < 1:
            raise SchedulerError("quarantine_after must be >= 1")
        self.runner = runner or JobRunner(error_policy="skip")
        self.now = start_minute
        self.quarantine_after = quarantine_after
        # ETL ticks are batch-class work: when the platform's brownout
        # ladder sheds batch, this hook (owner -> may-run?) defers due
        # jobs instead of running them into an overload.
        self.admission = admission
        self._entries: Dict[str, ScheduledJob] = {}
        self.log: List[ExecutionRecord] = []
        self._rotation: List[str] = []  # owner round-robin order
        self.journal = journal
        # job name -> state to re-attach when the job is re-added.
        self._recovered_jobs: Dict[str, Dict[str, Any]] = {}
        if journal is not None:
            for record in journal.recovered:
                self._replay_journal_record(record)

    def _replay_journal_record(self, record: Any) -> None:
        kind = record[0]
        if kind == "sched":
            data = record[1]
            self.log.append(ExecutionRecord(
                minute=data["minute"], owner=data["owner"],
                job=data["job"], result=None,
                status=data["status"], error=data.get("error")))
            state = self._recovered_jobs.setdefault(
                data["job"],
                {"runs": 0, "consecutive_failures": 0,
                 "quarantined": False})
            if data["status"] == "ok":
                state["runs"] += 1
                state["consecutive_failures"] = 0
            elif data["status"] == "failed":
                state["consecutive_failures"] += 1
                if self.quarantine_after is not None and \
                        state["consecutive_failures"] \
                        >= self.quarantine_after:
                    state["quarantined"] = True
        elif kind == "clock":
            self.now = max(self.now, record[1])
        elif kind == "unquarantine":
            state = self._recovered_jobs.get(record[1])
            if state is not None:
                state["quarantined"] = False
                state["consecutive_failures"] = 0

    def add(self, job: EtlJob, schedule: Schedule,
            owner: str = "default", retry_policy=None) -> None:
        if job.name in self._entries:
            raise SchedulerError(f"job {job.name!r} already scheduled")
        entry = ScheduledJob(
            job=job, schedule=schedule, owner=owner,
            next_run=schedule.next_run_after(self.now),
            retry_policy=retry_policy)
        recovered = self._recovered_jobs.get(job.name)
        if recovered is not None:
            entry.runs = recovered["runs"]
            entry.consecutive_failures = \
                recovered["consecutive_failures"]
            entry.quarantined = recovered["quarantined"]
        self._entries[job.name] = entry
        if owner not in self._rotation:
            self._rotation.append(owner)

    def remove(self, job_name: str) -> None:
        if job_name not in self._entries:
            raise SchedulerError(f"job {job_name!r} is not scheduled")
        del self._entries[job_name]

    def scheduled_jobs(self) -> List[str]:
        return sorted(self._entries)

    def advance(self, minutes: int) -> List[ExecutionRecord]:
        """Move the clock forward, running every due job along the way."""
        if minutes < 0:
            raise SchedulerError("cannot advance the clock backwards")
        target = self.now + minutes
        executed: List[ExecutionRecord] = []
        while True:
            due = [entry for entry in self._entries.values()
                   if entry.next_run <= target]
            if not due:
                break
            tick = min(entry.next_run for entry in due)
            due_now = [entry for entry in due if entry.next_run == tick]
            for entry in self._fair_order(due_now):
                record = self._run_due(entry, tick)
                self.log.append(record)
                executed.append(record)
                entry.next_run = entry.schedule.next_run_after(tick)
                if self.journal is not None:
                    self.journal.append(("sched", {
                        "minute": record.minute,
                        "owner": record.owner,
                        "job": record.job,
                        "status": record.status,
                        "error": record.error,
                    }))
        self.now = target
        if self.journal is not None and minutes:
            self.journal.append(("clock", target))
        return executed

    def _run_due(self, entry: ScheduledJob,
                 tick: int) -> ExecutionRecord:
        """Run (or skip-and-report) one due entry, never raising."""
        if entry.quarantined:
            return ExecutionRecord(
                minute=tick, owner=entry.owner, job=entry.job.name,
                result=None, status="quarantined",
                error=f"quarantined after "
                      f"{entry.consecutive_failures} consecutive "
                      f"failures")
        if self.admission is not None and \
                not self.admission(entry.owner):
            # Overload deferral: not a failure (no quarantine
            # pressure), not a run — the job waits for its next
            # scheduled occurrence.
            return ExecutionRecord(
                minute=tick, owner=entry.owner, job=entry.job.name,
                result=None, status="deferred",
                error="deferred under overload (batch shed)")
        try:
            result = self.runner.run(
                entry.job, retry_policy=entry.retry_policy)
        except Exception as exc:
            entry.consecutive_failures += 1
            if self.quarantine_after is not None and \
                    entry.consecutive_failures >= self.quarantine_after:
                entry.quarantined = True
            return ExecutionRecord(
                minute=tick, owner=entry.owner, job=entry.job.name,
                result=None, status="failed", error=str(exc))
        entry.consecutive_failures = 0
        entry.runs += 1
        return ExecutionRecord(
            minute=tick, owner=entry.owner, job=entry.job.name,
            result=result)

    def quarantined_jobs(self) -> List[str]:
        return sorted(name for name, entry in self._entries.items()
                      if entry.quarantined)

    def unquarantine(self, job_name: str) -> None:
        """Readmit a quarantined job (resets its failure count)."""
        entry = self._entries.get(job_name)
        if entry is None:
            raise SchedulerError(f"job {job_name!r} is not scheduled")
        entry.quarantined = False
        entry.consecutive_failures = 0
        if self.journal is not None:
            self.journal.append(("unquarantine", job_name))

    def _fair_order(self, entries: List[ScheduledJob]) \
            -> List[ScheduledJob]:
        """Round-robin by owner: rotate the owner list each dispatch."""
        ordered: List[ScheduledJob] = []
        remaining = list(entries)
        while remaining:
            for owner in list(self._rotation):
                for entry in remaining:
                    if entry.owner == owner:
                        ordered.append(entry)
                        remaining.remove(entry)
                        break
            if self._rotation:
                self._rotation.append(self._rotation.pop(0))
        return ordered

    def runs_by_owner(self) -> Dict[str, int]:
        """Dispatched runs per owner (quarantine skips and overload
        deferrals don't count — neither ever invoked the job)."""
        counts: Dict[str, int] = {}
        for record in self.log:
            if record.status not in ("quarantined", "deferred"):
                counts[record.owner] = counts.get(record.owner, 0) + 1
        return counts
