"""Extractors: where ETL jobs read their rows from.

Every source yields dictionaries (column name → value).  Sources are
re-iterable: each call to :meth:`Source.rows` starts a fresh pass, so
one job definition can run many times.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence, Union

from repro.engine.database import Database
from repro.errors import EtlError

Row = Dict[str, Any]


class Source:
    """Base class for extractors."""

    name = "source"

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class RowsSource(Source):
    """An in-memory list of rows (the unit-test and fixture workhorse)."""

    def __init__(self, rows: Sequence[Row], name: str = "rows"):
        self.name = name
        self._rows = [dict(row) for row in rows]

    def rows(self) -> Iterator[Row]:
        for row in self._rows:
            yield dict(row)


class TableSource(Source):
    """Rows of a table (or arbitrary SELECT) in an embedded database."""

    def __init__(self, database: Database, table: str = None,
                 query: str = None, params: Sequence[Any] = ()):
        if (table is None) == (query is None):
            raise EtlError(
                "TableSource needs exactly one of table= or query=")
        self.database = database
        self.query = query or f"SELECT * FROM {table}"
        self.params = tuple(params)
        self.name = table or "query"

    def rows(self) -> Iterator[Row]:
        for row in self.database.query(self.query, self.params):
            yield row


class CsvSource(Source):
    """Rows of a CSV file with a header line.

    Values are read as text; numeric typing belongs to a TypeCast
    operator downstream, mirroring real integration practice.
    """

    def __init__(self, path: Union[str, Path], delimiter: str = ","):
        self.path = Path(path)
        self.delimiter = delimiter
        self.name = self.path.name

    def rows(self) -> Iterator[Row]:
        if not self.path.exists():
            raise EtlError(f"CSV source file not found: {self.path}")
        with open(self.path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=self.delimiter)
            for row in reader:
                yield dict(row)


def time_dimension_rows(start, days: int,
                        key_column: str = "time_key"):
    """Generate calendar rows for a time dimension.

    Yields dicts with the conventional DW calendar attributes
    (``year``, ``quarter``, ``month``, ``day``, ``weekday``) plus a
    dense surrogate key — the standard seed for every star schema's
    time dimension.
    """
    import datetime as _dt

    if days <= 0:
        raise EtlError("time_dimension_rows needs days > 0")
    for offset in range(days):
        day = start + _dt.timedelta(days=offset)
        yield {
            key_column: offset + 1,
            "year": day.year,
            "quarter": f"Q{(day.month - 1) // 3 + 1}",
            "month": f"{day.year}-{day.month:02d}",
            "day": day,
            "weekday": day.strftime("%A").lower(),
        }


class CallableSource(Source):
    """Rows produced by a zero-argument callable (e.g. a generator fn)."""

    def __init__(self, producer: Callable[[], Iterable[Row]],
                 name: str = "callable"):
        self.producer = producer
        self.name = name

    def rows(self) -> Iterator[Row]:
        for row in self.producer():
            yield dict(row)
