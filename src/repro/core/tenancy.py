"""Multi-tenancy: tenant registry and data isolation.

The paper's §2: "the physical backend hardware infrastructure is shared
among many different customers but logically is unique for each
customer ... one database is used to store all customers' data, so this
makes the overall system scalable at a far lower cost."

Two isolation modes are implemented so experiment E7 can compare them:

* ``SHARED`` — one platform database holds every tenant's operational
  rows, discriminated by a ``tenant`` column (the paper's choice);
* ``ISOLATED`` — a dedicated database per tenant (the classical
  alternative the paper argues against on cost).

Each tenant additionally gets its own *warehouse* database — the
deployed DW the BI services query — in both modes, because analytic
workloads are tenant-private by construction.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.engine.database import Database
from repro.engine.wal import JournalLog
from repro.errors import TenantError


class TenancyMode(enum.Enum):
    SHARED = "shared"
    ISOLATED = "isolated"


@dataclass
class TenantContext:
    """Everything tenant-scoped the services need."""

    tenant_id: str
    display_name: str
    plan: str
    operational_db: Database  # shared or private, per mode
    warehouse_db: Database    # always private
    active: bool = True

    def __repr__(self) -> str:
        return f"<TenantContext {self.tenant_id!r} plan={self.plan}>"


class TenantManager:
    """Registers tenants and hands out their contexts.

    ``database_factory`` is the durability hook: when the platform
    runs against a data directory it supplies a factory that recovers
    each database from its snapshot + WAL instead of creating it
    blank.  ``journal`` (a :class:`~repro.engine.wal.JournalLog`)
    records one ``("tenant", ...)`` record per registration so a
    restarted platform can re-provision the same tenants.
    """

    def __init__(self, mode: TenancyMode = TenancyMode.SHARED,
                 database_factory: Optional[
                     Callable[[str], Database]] = None,
                 journal: Optional[JournalLog] = None,
                 operational_router: Optional[
                     Callable[[str], Database]] = None):
        self.mode = mode
        self._factory = database_factory or (
            lambda name: Database(name))
        self.journal = journal
        # Sharded deployments place each tenant's operational data by
        # consistent hash: the router (e.g. ``ShardMap.primary_for``)
        # overrides the SHARED/ISOLATED operational choice.  Kept as a
        # duck-typed callable so tenancy never imports sharding (the
        # gateway imports tenancy, and sharding sits above both).
        self._operational_router = operational_router
        # Registration is control-plane work that may run concurrently
        # with request dispatch; guard the check-then-insert.
        self._tenants: Dict[str, TenantContext] = {}  # guarded-by: _registry_lock
        self._registry_lock = threading.Lock()
        if mode is TenancyMode.SHARED:
            self._shared_db: Optional[Database] = \
                self._factory("platform")
        else:
            self._shared_db = None

    @property
    def platform_db(self) -> Database:
        """The database holding platform-wide (cross-tenant) state."""
        if self._shared_db is not None:
            return self._shared_db
        # In isolated mode platform state still needs one home.
        with self._registry_lock:
            if not hasattr(self, "_platform_only_db"):
                self._platform_only_db = self._factory("platform")
            return self._platform_only_db

    def register(self, tenant_id: str, display_name: str,
                 plan: str = "starter") -> TenantContext:
        with self._registry_lock:
            if tenant_id in self._tenants:
                raise TenantError(
                    f"tenant {tenant_id!r} already registered")
            if self._operational_router is not None:
                operational = self._operational_router(tenant_id)
            elif self.mode is TenancyMode.SHARED:
                operational = self._shared_db
            else:
                operational = self._factory(f"op-{tenant_id}")
            context = TenantContext(
                tenant_id=tenant_id,
                display_name=display_name,
                plan=plan,
                operational_db=operational,
                warehouse_db=self._factory(f"dw-{tenant_id}"),
            )
            self._tenants[tenant_id] = context
            if self.journal is not None:
                self.journal.append(
                    ("tenant", tenant_id, display_name, plan))
            return context

    def deactivate(self, tenant_id: str) -> None:
        with self._registry_lock:
            context = self._tenants.get(tenant_id)
            if context is None:
                raise TenantError(f"unknown tenant {tenant_id!r}")
            context.active = False
            # Re-store through the guarded mapping so the flip is a
            # locked registry state transition, serialized against
            # register() and visible to the lock-discipline check.
            self._tenants[tenant_id] = context

    def repoint_operational(self, old: Database,
                            new: Database) -> List[str]:
        """Swap every context on ``old`` over to ``new`` (failover).

        Runs under the registry lock so a repoint is atomic against
        registration: a tenant registered concurrently either routed
        to the new primary already or is repointed here, never split.
        Returns the moved tenant ids.
        """
        with self._registry_lock:
            moved: List[str] = []
            for tenant_id, context in self._tenants.items():
                if context.operational_db is old:
                    context.operational_db = new
                    self._tenants[tenant_id] = context
                    moved.append(tenant_id)
            return moved

    def context(self, tenant_id: str) -> TenantContext:
        context = self._tenants.get(tenant_id)
        if context is None:
            raise TenantError(f"unknown tenant {tenant_id!r}")
        return context

    def require_active(self, tenant_id: str) -> TenantContext:
        context = self.context(tenant_id)
        if not context.active:
            raise TenantError(f"tenant {tenant_id!r} is deactivated")
        return context

    def tenant_ids(self) -> List[str]:
        return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    def database_count(self) -> int:
        """Distinct operational database objects (the E7 metric)."""
        seen = {id(context.operational_db)
                for context in self._tenants.values()}
        return len(seen)
