"""Concurrent request dispatch: the multi-tenant serving layer.

The paper's §2 economics rest on one shared physical backend serving
many tenants *at once*.  :class:`RequestGateway` puts a worker pool in
front of the web application so overlapping tenant requests really
overlap: each request is admission-checked against the tenant registry
— a deactivated or unknown tenant is rejected at dispatch, before any
worker thread or database time is spent — and then handled on a pool
thread through the normal middleware chain.

The gateway is also where the resilience kernel meets traffic:

* every accepted request carries a :class:`Deadline` (its remaining
  budget is checked after queue wait, so a request that aged out in
  the queue is answered 504 without burning a backend call),
* each tenant has a :class:`Bulkhead` concurrency cap — a hot tenant
  sheds load with a typed 429 instead of occupying every worker,
* each tenant has a :class:`CircuitBreaker`; while it is open the
  gateway answers from the stale-response cache with a typed
  :class:`DegradedResponse` (staleness marker included) instead of
  hammering the broken backend,
* no exception escapes to callers: worker failures become typed 500
  responses and count against the tenant's breaker.

Data-plane serialization is the engine's job, not the gateway's: every
:class:`~repro.engine.database.Database` carries a reader-writer lock
keyed off the statement class, so ISOLATED-mode tenants (private
operational databases) run truly in parallel while SHARED-mode tenants
serialize only on writes to the shared operational database — reads
overlap in both modes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.overload import (
    OverloadController,
    QueuedRequest,
    read_only_statement,
)
from repro.core.resilience import (
    Bulkhead,
    CircuitBreaker,
    Clock,
    Deadline,
    FaultInjector,
    MonotonicClock,
    TenantHealth,
)
from repro.core.tenancy import TenantManager
from repro.errors import GatewayShutdownError, TenantError
from repro.web import JsonResponse, Response, WebApplication

#: Default worker-pool width (the paper's "many concurrent tenants").
DEFAULT_WORKERS = 8

#: Per-tenant consecutive 5xx/exception count that opens the breaker.
DEFAULT_BREAKER_THRESHOLD = 5

#: Seconds (on the gateway clock) an open breaker stays open.
DEFAULT_BREAKER_COOLDOWN = 30.0

#: Entries kept in the stale-response cache before LRU eviction.
DEFAULT_STALE_CACHE_CAPACITY = 1024

#: Entries kept in the dispatch-log ring buffer.  The log is an
#: observable, not an audit trail: the ring keeps recent decisions for
#: tests and debugging while ``decision_counts`` stays exact forever.
DEFAULT_DISPATCH_LOG_CAPACITY = 10_000

#: Retry-After floor (seconds) when neither the breaker cooldown nor
#: the queue drain estimate suggests a better number — "come back
#: shortly", never "come back in 0s".
DEFAULT_RETRY_AFTER = 1.0


class DegradedResponse(JsonResponse):
    """A typed "serving degraded" answer — never an exception.

    When a tenant's breaker is open the gateway returns the last
    known-good body for the path with ``stale=True`` and a staleness
    marker (the gateway-clock time the cache entry was written), or a
    503-status degraded notice when nothing is cached.  ``degraded``
    is always True so callers can branch without parsing the body.
    """

    degraded = True

    def __init__(self, reason: str, payload: Any = None,
                 stale: bool = False,
                 stale_as_of: Optional[float] = None,
                 status: Optional[int] = None,
                 retry_after: Optional[float] = None):
        self.reason = reason
        self.stale = stale
        self.stale_as_of = stale_as_of
        body = {"degraded": True, "reason": reason, "stale": stale}
        if stale:
            body["stale_as_of"] = stale_as_of
            body["data"] = payload
        headers = None
        if retry_after is not None:
            retry_after = max(0.0, retry_after)
            self.retry_after = retry_after
            body["retry_after"] = round(retry_after, 3)
            headers = {"retry-after": f"{retry_after:.3f}"}
        super().__init__(
            body, status=status if status is not None
            else (200 if stale else 503), headers=headers)


class RequestGateway:
    """Dispatches tenant requests onto a worker pool.

    ``submit`` returns a :class:`~concurrent.futures.Future` resolving
    to the :class:`~repro.web.Response`; ``dispatch_all`` fans a batch
    out and gathers responses in request order.  The ``dispatch_log``
    records one ``(path, decision)`` pair per submission — the
    observable that admission control happened at dispatch time; it is
    a bounded ring (``dispatch_log_capacity``) whose exact per-decision
    tally survives in ``decision_counts``.  The decisions are
    ``accepted`` (plus the ``accepted-read`` / ``accepted-write``
    refinements when the body carries SQL), ``rejected`` (admission),
    ``shed`` (bulkhead full) and ``degraded`` (breaker open); with an
    :class:`~repro.core.overload.OverloadController` attached the
    overload path adds ``queued`` (parked behind the AIMD limit),
    ``queue-shed`` / ``queue-displaced`` (priority queue full),
    ``expired`` (deadline aged out while parked — answered 504 without
    ever touching a worker) and ``brownout-shed`` /
    ``brownout-degraded`` (the degradation ladder).

    Read/write classification matters under MVCC: a read-only
    statement — including ``EXPLAIN <anything>``, which only *plans*
    — runs on the engine's lock-free snapshot path and never queues
    behind an open write transaction, so the gateway no longer has a
    reason to treat it as contended work.
    """

    def __init__(self, web: WebApplication, tenants: TenantManager,
                 max_workers: int = DEFAULT_WORKERS,
                 clock: Optional[Clock] = None,
                 faults: Optional[FaultInjector] = None,
                 deadline_seconds: Optional[float] = None,
                 bulkhead_capacity: Optional[int] = None,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
                 stale_cache_capacity: int =
                 DEFAULT_STALE_CACHE_CAPACITY,
                 dispatch_log_capacity: int =
                 DEFAULT_DISPATCH_LOG_CAPACITY,
                 overload: Optional[OverloadController] = None):
        self.web = web
        self.tenants = tenants
        self.max_workers = max_workers
        self.clock = clock or MonotonicClock()
        self.faults = faults or FaultInjector()
        self.deadline_seconds = deadline_seconds
        self.bulkhead_capacity = bulkhead_capacity or max_workers
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        #: The overload-control kernel (None = legacy static
        #: admission): AIMD limiter as the true concurrency bound, the
        #: QoS priority queue behind it, the brownout ladder above it.
        self.overload = overload
        # The dispatch log is a bounded ring: a long-running gateway
        # must not grow a Python list forever.  The tuple shape stays
        # (path, decision); decision_counts keeps the exact tally even
        # after the ring has wrapped.
        if dispatch_log_capacity < 1:
            raise ValueError("dispatch_log_capacity must be >= 1")
        self.dispatch_log_capacity = dispatch_log_capacity
        self.dispatch_log: Deque[Tuple[str, str]] = deque(
            maxlen=dispatch_log_capacity)  # guarded-by: _log_lock
        self.decision_counts: Dict[str, int] = {}  # guarded-by: _log_lock
        self._log_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _pool_lock
        self._pool_lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}  # guarded-by: _guard_lock
        self._bulkheads: Dict[str, Bulkhead] = {}  # guarded-by: _guard_lock
        self._guard_lock = threading.Lock()
        # LRU-bounded last-known-good bodies for degraded serving: an
        # unbounded dict here grows with every distinct request
        # identity for the life of the gateway.
        if stale_cache_capacity < 1:
            raise ValueError("stale_cache_capacity must be >= 1")
        self.stale_cache_capacity = stale_cache_capacity
        self._stale_cache: "OrderedDict[Tuple[Any, ...], Tuple[Any, float]]" \
            = OrderedDict()  # guarded-by: _stale_lock
        self._stale_lock = threading.Lock()
        self._draining = False  # guarded-by: _drain
        self._inflight = 0  # guarded-by: _drain
        self._drain = threading.Condition()

    # -- pool lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="odbis-gateway")
            return self._pool

    def shutdown(self, wait: bool = True,
                 permanent: bool = False) -> None:
        """Drain in-flight requests, then tear the pool down.

        New submissions observe the draining flag *before* the pool is
        touched and are rejected with a typed
        :class:`~repro.errors.GatewayShutdownError` — they can no
        longer race the teardown.  With ``permanent=True`` the gateway
        stays in the draining state forever: platform shutdown uses
        this so nothing can be accepted after the WALs close.
        """
        with self._drain:
            self._draining = True
        # Parked queue entries hold in-flight counts but no worker;
        # answer them now (typed 503) or the drain below never ends.
        self._flush_queue()
        if wait:
            with self._drain:
                while self._inflight > 0:
                    self._drain.wait(timeout=0.1)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        if not permanent:
            with self._drain:
                self._draining = False

    def __enter__(self) -> "RequestGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # -- admission control ------------------------------------------------------

    @staticmethod
    def tenant_of(path: str) -> Optional[str]:
        """The tenant id of a ``/tenants/{id}/...`` path, else None."""
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 2 and parts[0] == "tenants":
            return parts[1]
        return None

    def _admit(self, path: str) -> Optional[Response]:
        """None when the request may proceed, else the rejection."""
        tenant_id = self.tenant_of(path)
        if tenant_id is None:
            return None
        try:
            context = self.tenants.context(tenant_id)
        except TenantError as exc:
            return JsonResponse({"error": str(exc)}, status=404)
        if not context.active:
            return JsonResponse(
                {"error": f"tenant {tenant_id!r} is deactivated"},
                status=403)
        return None

    # -- per-tenant resilience state ---------------------------------------------

    def breaker(self, tenant_id: str) -> CircuitBreaker:
        """The tenant's circuit breaker (created on first use)."""
        with self._guard_lock:
            if tenant_id not in self._breakers:
                self._breakers[tenant_id] = CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown,
                    clock=self.clock, name=f"tenant:{tenant_id}")
            return self._breakers[tenant_id]

    def bulkhead(self, tenant_id: str) -> Bulkhead:
        """The tenant's concurrency cap (created on first use)."""
        with self._guard_lock:
            if tenant_id not in self._bulkheads:
                self._bulkheads[tenant_id] = Bulkhead(
                    self.bulkhead_capacity, name=f"tenant:{tenant_id}")
            return self._bulkheads[tenant_id]

    def tenant_health(self) -> Dict[str, TenantHealth]:
        """Breaker + bulkhead posture per tenant seen so far."""
        with self._guard_lock:
            tenant_ids = set(self._breakers) | set(self._bulkheads)
        health: Dict[str, TenantHealth] = {}
        for tenant_id in sorted(tenant_ids):
            breaker = self.breaker(tenant_id)
            bulkhead = self.bulkhead(tenant_id)
            health[tenant_id] = TenantHealth(
                tenant=tenant_id,
                breaker_state=breaker.state,
                consecutive_failures=breaker.consecutive_failures,
                bulkhead_in_use=bulkhead.in_use,
                bulkhead_capacity=bulkhead.capacity)
        return health

    # -- dispatch ---------------------------------------------------------------

    def submit(self, method: str, path: str, body: Any = None,
               headers: Optional[Dict[str, str]] = None,
               query: Optional[Dict[str, Any]] = None) -> "Future[Response]":
        """Admission-check one request and hand it to the pool."""
        with self._drain:
            if self._draining:
                raise GatewayShutdownError(
                    f"gateway is shutting down; rejected "
                    f"{method} {path}")
            self._inflight += 1
        accepted = False
        try:
            future = self._submit_guarded(method, path, body,
                                          headers, query)
            accepted = True
            return future
        finally:
            if not accepted:
                self._request_done()

    def _request_done(self) -> None:
        with self._drain:
            self._inflight -= 1
            self._drain.notify_all()

    def _log(self, path: str, decision: str,
             qos: Optional[str] = None) -> None:
        with self._log_lock:
            self.dispatch_log.append((path, decision))
            self.decision_counts[decision] = \
                self.decision_counts.get(decision, 0) + 1
        if self.overload is not None and qos is not None:
            self.overload.record(path, qos, decision)

    def _resolved(self, path: str, decision: str,
                  response: Response,
                  qos: Optional[str] = None) -> "Future[Response]":
        self._log(path, decision, qos)
        future: "Future[Response]" = Future()
        future.set_result(response)
        self._request_done()
        return future

    # -- Retry-After --------------------------------------------------------------

    def _retry_after(self, breaker: Optional[CircuitBreaker] = None) \
            -> float:
        """Seconds a shed caller should wait before trying again.

        The larger of the breaker's remaining cooldown and the
        admission queue's estimated drain time, floored at
        ``DEFAULT_RETRY_AFTER`` so a shed response never advises an
        instant (thundering-herd) retry.
        """
        value = 0.0
        if breaker is not None:
            value = max(value, breaker.retry_after())
        if self.overload is not None:
            value = max(value, self.overload.estimated_drain())
        return value if value > 0 else DEFAULT_RETRY_AFTER

    @staticmethod
    def _shed_response(body: Dict[str, Any], status: int,
                       retry_after: float) -> JsonResponse:
        retry_after = max(0.0, retry_after)
        body = dict(body)
        body["retry_after"] = round(retry_after, 3)
        return JsonResponse(
            body, status=status,
            headers={"retry-after": f"{retry_after:.3f}"})

    @staticmethod
    def read_only_statement(sql: str) -> bool:
        """True when ``sql`` dispatches as a lock-free snapshot read.

        Delegates to :func:`repro.core.overload.read_only_statement`
        (the overload kernel needs the same classification for QoS and
        must not import the gateway): the decision is made on the
        *outermost* statement class, so ``EXPLAIN UPDATE ...`` is
        read-only, and unparseable SQL is conservatively a write.
        """
        return read_only_statement(sql)

    @staticmethod
    def _sql_of(body: Any) -> Optional[str]:
        """The SQL text a request body carries, if any."""
        if isinstance(body, dict):
            for key in ("sql", "query"):
                value = body.get(key)
                if isinstance(value, str):
                    return value
        return None

    def _submit_guarded(self, method: str, path: str, body: Any,
                        headers: Optional[Dict[str, str]],
                        query: Optional[Dict[str, Any]]) \
            -> "Future[Response]":
        sql = self._sql_of(body)
        qos = None
        if self.overload is not None:
            qos = self.overload.classify(method, path, sql)
            self.overload.observe()

        rejection = self._admit(path)
        if rejection is not None:
            return self._resolved(path, "rejected", rejection, qos)

        tenant_id = self.tenant_of(path)
        breaker = bulkhead = None
        if tenant_id is not None:
            breaker = self.breaker(tenant_id)

        # The brownout ladder gates *before* per-tenant guards: a shed
        # class is shed for every tenant alike — brownout is platform
        # pressure, not tenant fault, so it must not trip breakers or
        # occupy bulkhead slots.
        if self.overload is not None and qos is not None:
            brownout = self.overload.brownout
            if brownout.sheds(qos):
                return self._resolved(
                    path, "brownout-shed",
                    self._shed_response(
                        {"error": f"{qos} traffic is shed under "
                                  f"overload (brownout level "
                                  f"{brownout.level})",
                         "code": "brownout_shed"},
                        status=503,
                        retry_after=self._retry_after(breaker)), qos)
            if brownout.degrades(qos):
                return self._resolved(
                    path, "brownout-degraded",
                    self._brownout_degraded(tenant_id, method, path,
                                            body, query, brownout,
                                            breaker), qos)

        if breaker is not None and not breaker.allow():
            return self._resolved(
                path, "degraded",
                self._degraded_response(tenant_id, method, path,
                                        body, query, breaker), qos)
        if tenant_id is not None:
            bulkhead = self.bulkhead(tenant_id)
            if not bulkhead.try_acquire():
                return self._resolved(path, "shed", self._shed_response(
                    {"error": f"tenant {tenant_id!r} is over its "
                              f"concurrency cap of {bulkhead.capacity}",
                     "code": "bulkhead_rejected"}, status=429,
                    retry_after=self._retry_after(breaker)), qos)

        if sql is None:
            decision = "accepted"
        elif self.read_only_statement(sql):
            decision = "accepted-read"
        else:
            decision = "accepted-write"
        deadline = None
        if self.deadline_seconds is not None:
            deadline = Deadline(self.deadline_seconds, clock=self.clock)

        if self.overload is None:
            self._log(path, decision)
            return self._ensure_pool().submit(
                self._run_request, method, path, body, headers, query,
                tenant_id, breaker, bulkhead, deadline, None, False)

        # Overload path: the AIMD limit — not the worker pool — is the
        # true admission bound.  A free slot dispatches immediately; a
        # full limiter parks the request in the priority queue, where
        # its deadline keeps ticking.
        self._expire_queued()
        if self.overload.limiter.try_acquire():
            self._log(path, decision, qos)
            return self._dispatch(
                {"method": method, "path": path, "body": body,
                 "headers": headers, "query": query,
                 "tenant_id": tenant_id, "breaker": breaker,
                 "bulkhead": bulkhead, "deadline": deadline,
                 "qos": qos, "future": None})
        work: Dict[str, Any] = {
            "method": method, "path": path, "body": body,
            "headers": headers, "query": query,
            "tenant_id": tenant_id, "breaker": breaker,
            "bulkhead": bulkhead, "deadline": deadline, "qos": qos,
            "future": Future()}
        entry, displaced = self.overload.queue.offer(
            qos, deadline=deadline, payload=work)
        if displaced is not None:
            self._resolve_queued(
                displaced, "queue-displaced",
                self._shed_response(
                    {"error": "displaced from the admission queue by "
                              "higher-priority traffic",
                     "code": "queue_displaced"}, status=503,
                    retry_after=self._retry_after()))
        if entry is None:
            if bulkhead is not None:
                bulkhead.release()
            return self._resolved(path, "queue-shed", self._shed_response(
                {"error": "admission queue is full",
                 "code": "queue_full"}, status=503,
                retry_after=self._retry_after(breaker)), qos)
        self._log(path, "queued", qos)
        self.overload.observe()
        return work["future"]

    def _stale_cache_key(self, tenant_id: str, method: str, path: str,
                         body: Any, query: Optional[Dict[str, Any]]) \
            -> Optional[Tuple[Any, ...]]:
        """The degraded-serving identity of an idempotent read.

        Returns None for mutations: replaying a cached POST payload as
        a fresh 200 would fake a write that never ran, so mutations are
        never cached and never answered stale.  A POST whose body is a
        read-only SQL statement *is* an idempotent read — its identity
        includes the statement text.  The query string participates in
        the key in canonical (sorted) order so dict ordering cannot
        split or alias entries.
        """
        method = method.upper()
        canonical = tuple(sorted(
            (str(key), str(value))
            for key, value in (query or {}).items()))
        if method in ("GET", "HEAD"):
            return (tenant_id, method, path, canonical)
        sql = self._sql_of(body)
        if sql is not None and self.read_only_statement(sql):
            return (tenant_id, method, path,
                    canonical + (("sql", sql),))
        return None

    def _degraded_response(self, tenant_id: str, method: str,
                           path: str, body: Any,
                           query: Optional[Dict[str, Any]],
                           breaker: CircuitBreaker) \
            -> DegradedResponse:
        reason = (f"tenant {tenant_id!r} breaker is "
                  f"{breaker.state}; retry in "
                  f"{breaker.retry_after():.1f}s")
        key = self._stale_cache_key(tenant_id, method, path, body,
                                    query)
        cached = None
        if key is not None:
            with self._stale_lock:
                cached = self._stale_cache.get(key)
                if cached is not None:
                    # A hit is a use: keep entries that still serve
                    # degraded traffic away from the eviction end.
                    self._stale_cache.move_to_end(key)
        retry_after = self._retry_after(breaker)
        if cached is not None:
            payload, written_at = cached
            return DegradedResponse(reason, payload=payload,
                                    stale=True,
                                    stale_as_of=written_at,
                                    retry_after=retry_after)
        return DegradedResponse(reason, retry_after=retry_after)

    def _brownout_degraded(self, tenant_id: Optional[str],
                           method: str, path: str, body: Any,
                           query: Optional[Dict[str, Any]],
                           brownout: Any,
                           breaker: Optional[CircuitBreaker]) \
            -> DegradedResponse:
        """The brownout ladder's stale answer for a degraded class."""
        reason = (f"served stale under overload (brownout level "
                  f"{brownout.level})")
        cached = None
        if tenant_id is not None:
            key = self._stale_cache_key(tenant_id, method, path,
                                        body, query)
            if key is not None:
                with self._stale_lock:
                    cached = self._stale_cache.get(key)
                    if cached is not None:
                        self._stale_cache.move_to_end(key)
        retry_after = self._retry_after(breaker)
        if cached is not None:
            payload, written_at = cached
            return DegradedResponse(reason, payload=payload,
                                    stale=True,
                                    stale_as_of=written_at,
                                    retry_after=retry_after)
        return DegradedResponse(reason, retry_after=retry_after)

    def _stale_cache_put(self, key: Tuple[Any, ...],
                         payload: Any) -> None:
        with self._stale_lock:
            self._stale_cache[key] = (payload, self.clock.now())
            self._stale_cache.move_to_end(key)
            while len(self._stale_cache) > self.stale_cache_capacity:
                self._stale_cache.popitem(last=False)

    @staticmethod
    def _stale_epoch_response(response: Response) -> bool:
        """True for the web layer's typed stale-epoch 503."""
        if response.status != 503:
            return False
        try:
            payload = response.json()
        except (TypeError, ValueError):
            return False
        return isinstance(payload, dict) \
            and payload.get("code") == "stale_epoch"

    def _run_request(self, method: str, path: str, body: Any,
                     headers: Optional[Dict[str, str]],
                     query: Optional[Dict[str, Any]],
                     tenant_id: Optional[str],
                     breaker: Optional[CircuitBreaker],
                     bulkhead: Optional[Bulkhead],
                     deadline: Optional[Deadline],
                     qos: Optional[str] = None,
                     limiter_held: bool = False) -> Response:
        """The worker-side wrapper: budget, faults, typed failures."""
        started = self.clock.now()
        ok = False
        deadline_missed = False
        try:
            if deadline is not None and deadline.expired:
                deadline_missed = True
                return self._shed_response(
                    {"error": f"request exceeded its "
                              f"{deadline.budget_seconds:.3f}s budget "
                              f"waiting for a worker",
                     "code": "deadline_exceeded"}, status=504,
                    retry_after=self._retry_after(breaker))
            try:
                self.faults.fire("gateway.handle")
                response = self.web.request(method, path, body,
                                            headers, query)
            except Exception as exc:
                if breaker is not None:
                    breaker.record_failure()
                return JsonResponse(
                    {"error": str(exc),
                     "code": "internal_failure"}, status=500)
            if deadline is not None and deadline.expired:
                deadline_missed = True
                if breaker is not None:
                    breaker.record_failure()
                return self._shed_response(
                    {"error": f"request exceeded its "
                              f"{deadline.budget_seconds:.3f}s budget",
                     "code": "deadline_exceeded"}, status=504,
                    retry_after=self._retry_after(breaker))
            if breaker is not None:
                if response.status >= 500:
                    # A stale-epoch 503 is retryable routing back-
                    # pressure from a promotion in flight, not a
                    # tenant-scoped fault — tripping the tenant's
                    # breaker over it would turn a failover blip
                    # into an outage for that tenant.
                    if not self._stale_epoch_response(response):
                        breaker.record_failure()
                else:
                    breaker.record_success()
            # The same reasoning exempts stale-epoch 503s from the
            # AIMD limiter: routing backpressure is not capacity.
            ok = response.status < 500 \
                or self._stale_epoch_response(response)
            if tenant_id is not None and response.ok and \
                    (self.overload is None
                     or self.overload.brownout.allows_cache_fill()):
                key = self._stale_cache_key(tenant_id, method, path,
                                            body, query)
                if key is not None:
                    try:
                        payload = response.json()
                    except ValueError:
                        payload = response.body  # non-JSON output
                    self._stale_cache_put(key, payload)
            return response
        finally:
            if bulkhead is not None:
                bulkhead.release()
            if self.overload is not None and limiter_held:
                self.overload.limiter.release()
                self.overload.note_result(
                    self.clock.now() - started, ok,
                    deadline_missed=deadline_missed)
            self._request_done()
            if self.overload is not None:
                self.pump()

    # -- the overload path: dispatch, queue pump, flush ----------------------------

    def _dispatch(self, work: Dict[str, Any]) -> "Future[Response]":
        """Hand one admitted work item (limiter slot held) to the pool.

        When the item was queued, its caller already holds
        ``work["future"]`` — the pool result is transferred onto it;
        a direct dispatch returns the pool future itself.
        """
        assert self.overload is not None
        try:
            pool_future = self._ensure_pool().submit(
                self._run_request, work["method"], work["path"],
                work["body"], work["headers"], work["query"],
                work["tenant_id"], work["breaker"], work["bulkhead"],
                work["deadline"], work["qos"], True)
        except RuntimeError:
            # Lost the race with pool teardown: undo the admission and
            # answer a typed shutdown shed instead of crashing.
            self.overload.limiter.release()
            bulkhead = work.get("bulkhead")
            if bulkhead is not None:
                bulkhead.release()
            response = self._shed_response(
                {"error": "gateway is shutting down",
                 "code": "gateway_shutdown"}, status=503,
                retry_after=DEFAULT_RETRY_AFTER)
            self._log(work["path"], "queue-shed", work.get("qos"))
            target = work["future"]
            if target is None:
                target = Future()
            if not target.done():
                target.set_result(response)
            self._request_done()
            return target
        target = work["future"]
        if target is None:
            return pool_future

        def _transfer(done: "Future[Response]") -> None:
            if target.done():
                return
            error = done.exception()
            if error is not None:
                target.set_exception(error)
            else:
                target.set_result(done.result())

        pool_future.add_done_callback(_transfer)
        return target

    def _resolve_queued(self, entry: QueuedRequest, decision: str,
                        response: Response) -> None:
        """Answer a parked request without it ever touching a worker."""
        work = entry.payload
        bulkhead = work.get("bulkhead")
        if bulkhead is not None:
            bulkhead.release()
        self._log(work["path"], decision, work.get("qos"))
        future = work.get("future")
        if future is not None and not future.done():
            future.set_result(response)
        self._request_done()

    def _expire_queued(self) -> int:
        """Answer every queue entry whose deadline aged out with 504.

        The 504 is produced here, on the control path — the handler is
        never invoked for an expired entry, which is the whole point:
        under overload, work that already missed its deadline must not
        burn a worker.  Each expiry also feeds the AIMD limiter a
        deadline-miss signal.
        """
        if self.overload is None:
            return 0
        expired = self.overload.queue.take_expired()
        for entry in expired:
            work = entry.payload
            deadline = work.get("deadline")
            budget = deadline.budget_seconds if deadline is not None \
                else 0.0
            self._resolve_queued(entry, "expired", self._shed_response(
                {"error": f"request exceeded its {budget:.3f}s budget "
                          f"waiting in the admission queue",
                 "code": "deadline_exceeded"}, status=504,
                retry_after=self._retry_after()))
            self.overload.limiter.on_failure("deadline")
        return len(expired)

    def pump(self) -> int:
        """Expire aged entries, then fill free limiter slots from the
        queue (highest QoS class first).  Called automatically after
        every completion; public so fake-clock tests can advance time
        and then flush the consequences deterministically.  Returns
        the number of entries dispatched.
        """
        if self.overload is None:
            return 0
        self._expire_queued()
        dispatched = 0
        while True:
            with self._drain:
                if self._draining:
                    break
            if not self.overload.limiter.try_acquire():
                break
            entry = self.overload.queue.poll()
            if entry is None:
                self.overload.limiter.release()
                break
            self._dispatch(entry.payload)
            dispatched += 1
        self._expire_queued()
        self.overload.observe()
        return dispatched

    def _flush_queue(self) -> None:
        """Shutdown path: answer everything still parked, typed 503."""
        if self.overload is None:
            return
        self._expire_queued()
        while True:
            entry = self.overload.queue.poll()
            if entry is None:
                break
            self._resolve_queued(
                entry, "queue-shed", self._shed_response(
                    {"error": "gateway is shutting down",
                     "code": "gateway_shutdown"}, status=503,
                    retry_after=DEFAULT_RETRY_AFTER))
        self._expire_queued()

    def dispatch_all(self, requests: List[Dict[str, Any]]) \
            -> List[Response]:
        """Dispatch a batch concurrently; responses in request order.

        Each request is a dict with ``method`` and ``path`` plus
        optional ``body``/``headers``/``query`` — the same shape
        :meth:`~repro.web.WebApplication.request` takes.
        """
        futures = [
            self.submit(spec["method"], spec["path"],
                        spec.get("body"), spec.get("headers"),
                        spec.get("query"))
            for spec in requests
        ]
        return [future.result() for future in futures]
