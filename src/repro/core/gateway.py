"""Concurrent request dispatch: the multi-tenant serving layer.

The paper's §2 economics rest on one shared physical backend serving
many tenants *at once*.  :class:`RequestGateway` puts a worker pool in
front of the web application so overlapping tenant requests really
overlap: each request is admission-checked against the tenant registry
— a deactivated or unknown tenant is rejected at dispatch, before any
worker thread or database time is spent — and then handled on a pool
thread through the normal middleware chain.

Data-plane serialization is the engine's job, not the gateway's: every
:class:`~repro.engine.database.Database` carries a reader-writer lock
keyed off the statement class, so ISOLATED-mode tenants (private
operational databases) run truly in parallel while SHARED-mode tenants
serialize only on writes to the shared operational database — reads
overlap in both modes.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.core.tenancy import TenantManager
from repro.errors import TenantError
from repro.web import JsonResponse, Response, WebApplication

#: Default worker-pool width (the paper's "many concurrent tenants").
DEFAULT_WORKERS = 8


class RequestGateway:
    """Dispatches tenant requests onto a worker pool.

    ``submit`` returns a :class:`~concurrent.futures.Future` resolving
    to the :class:`~repro.web.Response`; ``dispatch_all`` fans a batch
    out and gathers responses in request order.  The ``dispatch_log``
    records one ``(path, decision)`` pair per submission — the
    observable that admission control happened at dispatch time.
    """

    def __init__(self, web: WebApplication, tenants: TenantManager,
                 max_workers: int = DEFAULT_WORKERS):
        self.web = web
        self.tenants = tenants
        self.max_workers = max_workers
        self.dispatch_log: List[Tuple[str, str]] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- pool lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="odbis-gateway")
            return self._pool

    def shutdown(self, wait: bool = True) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "RequestGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # -- admission control ------------------------------------------------------

    @staticmethod
    def tenant_of(path: str) -> Optional[str]:
        """The tenant id of a ``/tenants/{id}/...`` path, else None."""
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 2 and parts[0] == "tenants":
            return parts[1]
        return None

    def _admit(self, path: str) -> Optional[Response]:
        """None when the request may proceed, else the rejection."""
        tenant_id = self.tenant_of(path)
        if tenant_id is None:
            return None
        try:
            context = self.tenants.context(tenant_id)
        except TenantError as exc:
            return JsonResponse({"error": str(exc)}, status=404)
        if not context.active:
            return JsonResponse(
                {"error": f"tenant {tenant_id!r} is deactivated"},
                status=403)
        return None

    # -- dispatch ---------------------------------------------------------------

    def submit(self, method: str, path: str, body: Any = None,
               headers: Optional[Dict[str, str]] = None,
               query: Optional[Dict[str, Any]] = None) -> "Future[Response]":
        """Admission-check one request and hand it to the pool."""
        rejection = self._admit(path)
        if rejection is not None:
            self.dispatch_log.append((path, "rejected"))
            future: "Future[Response]" = Future()
            future.set_result(rejection)
            return future
        self.dispatch_log.append((path, "accepted"))
        return self._ensure_pool().submit(
            self.web.request, method, path, body, headers, query)

    def dispatch_all(self, requests: List[Dict[str, Any]]) \
            -> List[Response]:
        """Dispatch a batch concurrently; responses in request order.

        Each request is a dict with ``method`` and ``path`` plus
        optional ``body``/``headers``/``query`` — the same shape
        :meth:`~repro.web.WebApplication.request` takes.
        """
        futures = [
            self.submit(spec["method"], spec["path"],
                        spec.get("body"), spec.get("headers"),
                        spec.get("query"))
            for spec in requests
        ]
        return [future.result() for future in futures]
