"""RS — the reporting service.

Per the paper (§3.3) the reporting service provides: (i) report-group
and report management; (ii) a BIRT module that uploads and executes
report designs; (iii) an ad-hoc module for chart reports, data-table
reports and dashboards.  All three are implemented here, with report
designs persisted in the tenant's operational database and all data
flowing through the metadata service's data sets.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis import dataset_columns_from_sql, lint_dashboard
from repro.core.metadata_service import MetadataService
from repro.core.subscription import BillingService
from repro.core.tenancy import TenantManager
from repro.engine.database import Database
from repro.errors import ServiceError
import json

from repro.reporting import (
    AdhocReportBuilder,
    BirtRunner,
    Dashboard,
    DashboardDefinition,
    parse_report_design,
)
from repro.reporting.birt import ReportOutput


class ReportingService:
    """BIRT-style and ad-hoc reporting per tenant."""

    def __init__(self, tenants: TenantManager,
                 metadata: MetadataService,
                 billing: Optional[BillingService] = None):
        self.tenants = tenants
        self.metadata = metadata
        self.billing = billing
        self._dashboards: Dict[tuple, Dashboard] = {}

    def _db(self, tenant_id: str) -> Database:
        context = self.tenants.require_active(tenant_id)
        database = context.operational_db
        database.execute(
            "CREATE TABLE IF NOT EXISTS rs_report_groups ("
            "tenant TEXT NOT NULL, name TEXT NOT NULL)")
        database.execute(
            "CREATE TABLE IF NOT EXISTS rs_reports ("
            "tenant TEXT NOT NULL, report_group TEXT NOT NULL, "
            "name TEXT NOT NULL, design TEXT NOT NULL, "
            "datasource TEXT NOT NULL)")
        database.execute(
            "CREATE TABLE IF NOT EXISTS rs_dashboards ("
            "tenant TEXT NOT NULL, name TEXT NOT NULL, "
            "definition TEXT NOT NULL)")
        return database

    # -- report groups ------------------------------------------------------------------

    def create_report_group(self, tenant_id: str, name: str) -> None:
        database = self._db(tenant_id)
        existing = database.query(
            "SELECT name FROM rs_report_groups "
            "WHERE tenant = ? AND name = ?", (tenant_id, name))
        if existing:
            raise ServiceError(
                f"tenant {tenant_id!r} already has report group "
                f"{name!r}")
        database.execute(
            "INSERT INTO rs_report_groups VALUES (?, ?)",
            (tenant_id, name))

    def report_groups(self, tenant_id: str) -> List[str]:
        database = self._db(tenant_id)
        rows = database.query(
            "SELECT name FROM rs_report_groups WHERE tenant = ? "
            "ORDER BY name", (tenant_id,))
        return [row["name"] for row in rows]

    # -- BIRT-style reports --------------------------------------------------------------

    def upload_report(self, tenant_id: str, report_group: str,
                      design_xml: str, datasource: str) -> str:
        """Upload a report design; returns the report name."""
        if report_group not in self.report_groups(tenant_id):
            raise ServiceError(
                f"tenant {tenant_id!r} has no report group "
                f"{report_group!r}")
        self.metadata.resolve_datasource(tenant_id, datasource)
        design = parse_report_design(design_xml)  # validates
        database = self._db(tenant_id)
        existing = database.query(
            "SELECT name FROM rs_reports "
            "WHERE tenant = ? AND name = ?", (tenant_id, design.name))
        if existing:
            raise ServiceError(
                f"tenant {tenant_id!r} already has report "
                f"{design.name!r}")
        database.execute(
            "INSERT INTO rs_reports VALUES (?, ?, ?, ?, ?)",
            (tenant_id, report_group, design.name, design_xml,
             datasource))
        return design.name

    def reports(self, tenant_id: str,
                report_group: Optional[str] = None) -> List[str]:
        database = self._db(tenant_id)
        if report_group is None:
            rows = database.query(
                "SELECT name FROM rs_reports WHERE tenant = ? "
                "ORDER BY name", (tenant_id,))
        else:
            rows = database.query(
                "SELECT name FROM rs_reports "
                "WHERE tenant = ? AND report_group = ? ORDER BY name",
                (tenant_id, report_group))
        return [row["name"] for row in rows]

    def run_report(self, tenant_id: str, name: str,
                   parameters: Optional[Dict[str, Any]] = None) \
            -> ReportOutput:
        """Execute an uploaded report under the integrated viewer."""
        database = self._db(tenant_id)
        rows = database.query(
            "SELECT design, datasource FROM rs_reports "
            "WHERE tenant = ? AND name = ?", (tenant_id, name))
        if not rows:
            raise ServiceError(
                f"tenant {tenant_id!r} has no report {name!r}")
        design = parse_report_design(rows[0]["design"])
        target = self.metadata.resolve_datasource(
            tenant_id, rows[0]["datasource"])
        output = BirtRunner(target).run(design, parameters)
        if self.billing is not None:
            self.billing.meter(tenant_id, "report", 1)
        return output

    # -- ad-hoc reporting ----------------------------------------------------------------

    def adhoc_builder(self, tenant_id: str,
                      dataset: str) -> AdhocReportBuilder:
        """An ad-hoc builder over a metadata-service data set."""
        rows = self.metadata.dataset_rows(tenant_id, dataset)
        if self.billing is not None:
            self.billing.meter(tenant_id, "query", 1)
        return AdhocReportBuilder(rows)

    def define_dashboard(self, tenant_id: str,
                         definition: DashboardDefinition,
                         validate: bool = True) -> None:
        """Persist a dashboard definition (re-rendered on access).

        With ``validate`` on (the default) the definition is linted
        against the output columns of the tenant's data sets and
        rejected when any element reads an unknown data set or a
        column its data set does not produce.
        """
        if not definition.rows:
            raise ServiceError(
                f"dashboard {definition.name!r} has no rows")
        for dataset in definition.datasets():
            known = {entry["name"]
                     for entry in self.metadata.datasets(tenant_id)}
            if dataset not in known:
                raise ServiceError(
                    f"dashboard {definition.name!r} references "
                    f"unknown data set {dataset!r}")
        if validate:
            collector = lint_dashboard(
                definition, self._dataset_shapes(tenant_id),
                source=definition.name)
            if collector.has_errors():
                collector.raise_if_errors(
                    ServiceError,
                    prefix=f"dashboard {definition.name!r} rejected")
        database = self._db(tenant_id)
        existing = database.query(
            "SELECT name FROM rs_dashboards "
            "WHERE tenant = ? AND name = ?",
            (tenant_id, definition.name))
        if existing:
            raise ServiceError(
                f"tenant {tenant_id!r} already has dashboard "
                f"definition {definition.name!r}")
        database.execute(
            "INSERT INTO rs_dashboards VALUES (?, ?, ?)",
            (tenant_id, definition.name,
             json.dumps(definition.to_dict())))

    def _dataset_shapes(self, tenant_id: str) -> Dict[str, Any]:
        """Output columns of each tenant data set (None = unknown)."""
        shapes: Dict[str, Any] = {}
        for record in self.metadata.datasets(tenant_id):
            target = self.metadata.resolve_datasource(
                tenant_id, record["datasource"])
            shapes.update(dataset_columns_from_sql(
                {record["name"]: record["sql"]},
                target.catalog, target.views))
        return shapes

    def dashboard_definitions(self, tenant_id: str) -> List[str]:
        database = self._db(tenant_id)
        rows = database.query(
            "SELECT name FROM rs_dashboards WHERE tenant = ? "
            "ORDER BY name", (tenant_id,))
        return [row["name"] for row in rows]

    def render_dashboard(self, tenant_id: str,
                         name: str) -> Dashboard:
        """Re-render a stored definition from the live data sets."""
        database = self._db(tenant_id)
        rows = database.query(
            "SELECT definition FROM rs_dashboards "
            "WHERE tenant = ? AND name = ?", (tenant_id, name))
        if not rows:
            raise ServiceError(
                f"tenant {tenant_id!r} has no dashboard definition "
                f"{name!r}")
        definition = DashboardDefinition.from_dict(
            json.loads(rows[0]["definition"]))
        rendered = definition.render(
            lambda dataset: self.metadata.dataset_rows(
                tenant_id, dataset))
        if self.billing is not None:
            self.billing.meter(tenant_id, "dashboard", 1)
        return rendered

    def save_dashboard(self, tenant_id: str,
                       dashboard: Dashboard) -> None:
        self.tenants.require_active(tenant_id)
        key = (tenant_id, dashboard.name)
        if key in self._dashboards:
            raise ServiceError(
                f"tenant {tenant_id!r} already has dashboard "
                f"{dashboard.name!r}")
        self._dashboards[key] = dashboard
        if self.billing is not None:
            self.billing.meter(tenant_id, "dashboard", 1)

    def dashboards(self, tenant_id: str) -> List[str]:
        return sorted(name for (tenant, name) in self._dashboards
                      if tenant == tenant_id)

    def dashboard(self, tenant_id: str, name: str) -> Dashboard:
        dashboard = self._dashboards.get((tenant_id, name))
        if dashboard is None:
            raise ServiceError(
                f"tenant {tenant_id!r} has no dashboard {name!r}")
        return dashboard
