"""ODBIS platform assembly: the five-layer SaaS architecture (Fig. 1).

:class:`OdbisPlatform` wires the technical-resources layer, the DW
design & management layer (MDDWS), the administration & configuration
layer, the five core BI services and the end-user access layer (a web
application with an authentication filter and a tenant wall) into one
object.  Each handled request records which layers it traversed — the
observable artefact experiments E1 and E4 regenerate.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.admin_service import AdminService
from repro.core.analysis_service import AnalysisService
from repro.core.delivery_service import Channel, InformationDeliveryService
from repro.core.gateway import RequestGateway
from repro.core.integration_service import IntegrationService
from repro.core.mddws import MddwsService
from repro.core.metadata_service import MetadataService
from repro.core.overload import QOS_BATCH, OverloadController
from repro.core.provisioning import ProvisioningService
from repro.core.reporting_service import ReportingService
from repro.core.resilience import (
    Clock,
    FaultInjector,
    HealthReport,
    MonotonicClock,
)
from repro.core.resources import TechnicalResourcesLayer
from repro.core.sharding import ShardMap
from repro.core.subscription import BillingService
from repro.core.supervision import ShardSupervisor
from repro.core.tenancy import TenancyMode, TenantManager
from repro.engine.database import Database
from repro.engine.wal import JournalLog
from repro.errors import HttpError, ReproError
from repro.security import AccessDecisionManager
from repro.web import JsonResponse, Request, Response, WebApplication

#: The five layers of Fig. 1, outermost first.
LAYERS = (
    "end-user-access",
    "core-bi-services",
    "administration",
    "design-management",
    "technical-resources",
)

_PUBLIC_PATHS = ("/ping", "/login")


class OdbisPlatform:
    """The assembled on-demand BI platform.

    ``data_dir`` switches the platform into *durable* mode: every
    tenant database lives under ``data_dir/tenants/`` as a snapshot +
    write-ahead log pair (created via
    :meth:`~repro.engine.database.Database.recover`, so constructing
    the platform over an existing directory IS crash recovery), the
    tenant registry, the ETL scheduler history and the ESB dead-letter
    queue journal to ``platform.journal`` / ``etl.journal`` /
    ``esb.journal``, and recovered tenants are re-provisioned from the
    registry journal with all journals suspended so replay never
    re-journals itself.  ``fsync`` is the WAL policy for every log
    (``always`` / ``batch`` / ``off``).

    ``shards > 0`` additionally shards tenant *operational* data
    across that many engine instances under ``data_dir/shards/``
    (consistent-hash placement — see :mod:`repro.core.sharding`), each
    with ``replicas_per_shard`` WAL-shipped read replicas.  Read-only
    SQL submitted to ``POST /tenants/{tenant}/sql`` is served from a
    replica whenever one is within ``staleness_budget`` commit
    numbers of its primary; writes always hit the shard primary.
    Sharding requires a ``data_dir`` — replication ships the
    primaries' on-disk logs.
    """

    def __init__(self, mode: TenancyMode = TenancyMode.SHARED,
                 use_olap_cache: bool = True,
                 faults: Optional[FaultInjector] = None,
                 clock: Optional[Clock] = None,
                 deadline_seconds: Optional[float] = None,
                 bulkhead_capacity: Optional[int] = None,
                 data_dir: Optional[Union[str, Path]] = None,
                 fsync: str = "always",
                 shards: int = 0,
                 replicas_per_shard: int = 1,
                 staleness_budget: int = 0,
                 supervision: Optional[Dict[str, Any]] = None,
                 overload: Union[bool, Dict[str, Any], None] = None):
        # Cross-cutting: the resilience kernel's shared pieces.  One
        # injector serves every instrumented site so a chaos run has a
        # single deterministic fault history.
        self.faults = faults or FaultInjector()
        self.clock = clock or MonotonicClock()
        # Overload control: ``overload=True`` enables the adaptive
        # admission kernel with defaults; a dict passes knobs through
        # to :class:`OverloadController` (queue_capacity,
        # initial_limit, retry_budget_capacity, ...).  None/False
        # keeps the legacy static admission.
        self.overload: Optional[OverloadController] = None
        if overload:
            kwargs = dict(overload) if isinstance(overload, dict) \
                else {}
            self.overload = OverloadController(clock=self.clock,
                                               **kwargs)
        # Durability: data directory, journals and database factory.
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.fsync = fsync
        self._journals: List[JournalLog] = []
        tenant_journal = etl_journal = bus_journal = None
        database_factory = None
        if self.data_dir is not None:
            tenants_dir = self.data_dir / "tenants"
            tenants_dir.mkdir(parents=True, exist_ok=True)
            tenant_journal = JournalLog(
                self.data_dir / "platform.journal", fsync=fsync,
                faults=self.faults, site="journal.platform")
            etl_journal = JournalLog(
                self.data_dir / "etl.journal", fsync=fsync,
                faults=self.faults, site="journal.etl")
            bus_journal = JournalLog(
                self.data_dir / "esb.journal", fsync=fsync,
                faults=self.faults, site="journal.esb")
            self._journals = [tenant_journal, etl_journal, bus_journal]

            def database_factory(name: str) -> Database:
                return Database.recover(tenants_dir, name,
                                        fsync=fsync,
                                        faults=self.faults)

        # Horizontal capacity: the consistent-hash shard map placing
        # tenant operational data across engine instances, each with
        # WAL-shipped read replicas.
        self.shards: Optional[ShardMap] = None
        operational_router = None
        if shards > 0:
            if self.data_dir is None:
                raise ReproError(
                    "sharding requires a data_dir: replicas ship "
                    "the primaries' on-disk write-ahead logs")
            self.shards = ShardMap(
                self.data_dir / "shards", shards=shards,
                replicas=replicas_per_shard, fsync=fsync,
                clock=self.clock, faults=self.faults,
                staleness_budget=staleness_budget)
            operational_router = self.shards.primary_for
        # Supervision: the layer that notices a sick shard primary,
        # fails it over (re-pointing tenant contexts via
        # self.failover) and audits replicas for silent divergence.
        # Passive until driven — call supervisor.tick()/run() from a
        # scheduler or a chaos loop; kwargs come through the
        # ``supervision`` dict (probe cadence, damping, pump mode).
        self.supervisor: Optional[ShardSupervisor] = None
        if self.shards is not None:
            self.supervisor = ShardSupervisor(
                self.shards, clock=self.clock, faults=self.faults,
                failover=self.failover, **(supervision or {}))
        # Layer 5: technical resources.
        self.resources = TechnicalResourcesLayer(
            faults=self.faults, clock=self.clock,
            bus_journal=bus_journal)
        # Tenancy + layer 3: administration and configuration.
        self.tenants = TenantManager(
            mode, database_factory=database_factory,
            journal=tenant_journal,
            operational_router=operational_router)
        self.billing = BillingService(self.tenants.platform_db)
        self.admin = AdminService(self.tenants, self.billing)
        # Layer 4: core BI services.
        self.metadata = MetadataService(self.tenants, self.resources)
        self.integration = IntegrationService(
            self.tenants, self.resources, self.billing,
            journal=etl_journal)
        self.analysis = AnalysisService(
            self.tenants, self.resources, self.billing,
            use_cache=use_olap_cache,
            config_provider=lambda tenant:
                self.admin.configuration(tenant, "analysis"))
        self.reporting = ReportingService(
            self.tenants, self.metadata, self.billing)
        self.delivery = InformationDeliveryService()
        # Layer 2: DW design and management.
        self.mddws = MddwsService(
            self.tenants, self.resources, self.analysis)
        # Cross-cutting: provisioning.
        self.provisioning = ProvisioningService(
            self.tenants, self.resources, self.billing,
            self.admin, self.metadata)
        # Layer 1: end-user access (web), fronted by the concurrent
        # request gateway.  Layer traces are per-thread so overlapping
        # requests do not clobber each other's traversal record.
        self.web = WebApplication("odbis")
        self.gateway = RequestGateway(
            self.web, self.tenants, clock=self.clock,
            faults=self.faults, deadline_seconds=deadline_seconds,
            bulkhead_capacity=bulkhead_capacity,
            overload=self.overload)
        # Under brownout, ETL ticks are batch-class work: the
        # scheduler defers due jobs instead of running them while the
        # ladder sheds batch, and retries them on a later tick.
        if self.overload is not None:
            controller = self.overload
            self.integration.scheduler.admission = \
                lambda owner: not controller.brownout.sheds(QOS_BATCH)
        self._trace_local = threading.local()
        self.last_trace = []
        self._install_middleware()
        self._install_routes()
        # With a data directory, re-provision the tenants the registry
        # journal remembers — after every service is wired, so replay
        # runs through the same provisioning path as the original
        # registrations did.
        if tenant_journal is not None:
            self._recover_tenants(tenant_journal)

    @property
    def last_trace(self) -> List[str]:
        """The layer-traversal trace of this thread's last request."""
        trace = getattr(self._trace_local, "trace", None)
        if trace is None:
            trace = []
            self._trace_local.trace = trace
        return trace

    @last_trace.setter
    def last_trace(self, value: List[str]) -> None:
        self._trace_local.trace = value

    # -- durability ---------------------------------------------------------------------

    def _recover_tenants(self, tenant_journal: JournalLog) -> None:
        """Replay journaled tenant registrations through provisioning.

        All journals are suspended for the duration so the replay
        cannot append the records it is reading (or re-journal the
        provisioning events it re-fires).
        """
        records = [record for record in tenant_journal.recovered
                   if record and record[0] == "tenant"]
        if not records:
            return
        for journal in self._journals:
            journal.suspended = True
        try:
            for _, tenant_id, display_name, plan in records:
                self.provisioning.provision(
                    tenant_id, display_name, plan=plan, exist_ok=True)
        finally:
            for journal in self._journals:
                journal.suspended = False

    def checkpoint(self) -> Dict[str, int]:
        """Snapshot every durable database and truncate its WAL.

        Returns ``{database name: checkpoint ordinal}``.  Requires a
        ``data_dir`` platform; recovery after a checkpoint loads the
        fresh snapshots and replays only what came after.
        """
        if self.data_dir is None:
            raise ReproError(
                "checkpoint requires a platform with a data_dir")
        ordinals: Dict[str, int] = {}
        for database in self._durable_databases():
            ordinals[database.name] = database.checkpoint()
        return ordinals

    def close(self) -> None:
        """Drain traffic, then flush and close every WAL and journal.

        Ordering is the shutdown contract: the gateway is drained
        *permanently* first, so every accepted in-flight request either
        commits (and its WAL frames are flushed below) or was rejected
        with :class:`~repro.errors.GatewayShutdownError` at submit —
        no worker can reach a database whose log is already closed,
        and no accepted write is ever silently lost.
        """
        self.gateway.shutdown(permanent=True)
        for database in self._durable_databases():
            database.close()
        for journal in self._journals:
            journal.close()
        if self.shards is not None:
            self.shards.close()

    def failover(self, shard_id: str) -> Dict[str, Any]:
        """Fence a shard's primary and promote a caught-up replica.

        Delegates the fence/trip/catch-up/promote sequence to the
        shard map, then re-points every tenant context that held the
        old primary at the promoted engine — under the registry lock,
        so no request routes to the fenced database afterwards.
        """
        if self.shards is None:
            raise ReproError("platform has no shard map")
        shard = self.shards.shard(shard_id)
        old_primary = shard.primary
        promoted = self.shards.failover(shard_id)
        moved = self.tenants.repoint_operational(
            old_primary, shard.primary)
        return {"shard": shard_id, "promoted": promoted,
                "tenants_moved": moved}

    def _durable_databases(self) -> List[Database]:
        """Distinct databases carrying a WAL, platform db included."""
        seen: Dict[int, Database] = {}
        candidates = [self.tenants.platform_db]
        if self.shards is not None:
            candidates.extend(shard.primary
                              for shard in self.shards.all_shards())
        for tenant_id in self.tenants.tenant_ids():
            context = self.tenants.context(tenant_id)
            candidates.extend(
                [context.operational_db, context.warehouse_db])
        for database in candidates:
            if database.wal is not None:
                seen.setdefault(id(database), database)
        return list(seen.values())

    # -- access layer wiring ---------------------------------------------------------

    def _install_middleware(self) -> None:
        def trace_layer(request: Request, next_handler):
            self.last_trace = ["end-user-access"]
            return next_handler(request)

        def authentication_filter(request: Request, next_handler):
            if request.path in _PUBLIC_PATHS:
                return next_handler(request)
            token = request.header("x-auth-token")
            if token is None:
                raise HttpError(401, "missing X-Auth-Token header")
            self.last_trace.append("administration")
            request.principal = self.admin.authentication.validate(token)
            return next_handler(request)

        def tenant_wall(request: Request, next_handler):
            parts = [part for part in request.path.split("/") if part]
            if len(parts) >= 2 and parts[0] == "tenants":
                request.tenant = parts[1]
                if request.principal is not None:
                    AccessDecisionManager().check_tenant(
                        request.principal, request.tenant)
            return next_handler(request)

        self.web.use(trace_layer)
        self.web.use(authentication_filter)
        self.web.use(tenant_wall)

    def _trace(self, *layers: str) -> None:
        for layer in layers:
            if layer not in self.last_trace:
                self.last_trace.append(layer)

    def _install_routes(self) -> None:
        web = self.web
        web.get("/ping", lambda r: JsonResponse({"status": "up"}))
        web.post("/login", self._handle_login)
        web.get("/tenants/{tenant}/datasources",
                self._handle_datasources)
        web.get("/tenants/{tenant}/datasets", self._handle_datasets)
        web.get("/tenants/{tenant}/datasets/{name}/rows",
                self._handle_dataset_rows)
        web.get("/tenants/{tenant}/cubes", self._handle_cubes)
        web.post("/tenants/{tenant}/mdx", self._handle_mdx)
        web.get("/tenants/{tenant}/reports", self._handle_reports)
        web.post("/tenants/{tenant}/reports/{name}/run",
                 self._handle_run_report)
        web.get("/tenants/{tenant}/dashboards", self._handle_dashboards)
        web.post("/tenants/{tenant}/dashboards",
                 self._handle_define_dashboard)
        web.get("/tenants/{tenant}/dashboards/{name}",
                self._handle_deliver_dashboard)
        web.post("/tenants/{tenant}/sql", self._handle_sql)
        web.get("/tenants/{tenant}/project", self._handle_project)
        web.post("/tenants/{tenant}/design", self._handle_design)
        web.get("/admin/usage", self._handle_usage)
        web.get("/admin/health", self._handle_health)

    # -- route handlers ----------------------------------------------------------------

    def _handle_login(self, request: Request) -> Response:
        body = request.body or {}
        session = self.admin.login(
            body.get("username", ""), body.get("password", ""))
        self._trace("administration")
        return JsonResponse({
            "token": session.token,
            "username": session.principal.username,
            "tenant": session.principal.tenant,
            "authorities": sorted(session.principal.authorities),
        })

    def _handle_datasources(self, request: Request) -> Response:
        self._trace("core-bi-services", "technical-resources")
        return JsonResponse(self.metadata.datasources(request.tenant))

    def _handle_datasets(self, request: Request) -> Response:
        self._trace("core-bi-services", "technical-resources")
        return JsonResponse(self.metadata.datasets(request.tenant))

    def _handle_dataset_rows(self, request: Request) -> Response:
        self._trace("core-bi-services", "technical-resources")
        rows = self.metadata.dataset_rows(
            request.tenant, request.require_param("name"))
        self.billing.meter(request.tenant, "query", 1)
        return JsonResponse({"rows": rows})

    def _handle_cubes(self, request: Request) -> Response:
        self._trace("core-bi-services")
        return JsonResponse(self.analysis.cubes(request.tenant))

    def _handle_mdx(self, request: Request) -> Response:
        self._trace("core-bi-services", "technical-resources")
        statement = (request.body or {}).get("statement")
        if not statement:
            raise HttpError(400, "body needs a 'statement' field")
        cells = self.analysis.execute_mdx(request.tenant, statement)
        return JsonResponse({
            "measures": cells.measures,
            "axes": [list(axis) for axis in cells.axes],
            "rows": cells.rows,
        })

    def _handle_reports(self, request: Request) -> Response:
        self._trace("core-bi-services")
        return JsonResponse(self.reporting.reports(request.tenant))

    def _handle_run_report(self, request: Request) -> Response:
        self._trace("core-bi-services", "technical-resources")
        output = self.reporting.run_report(
            request.tenant, request.require_param("name"),
            request.body or {})
        payload = []
        for element in output.elements:
            if hasattr(element, "series"):
                payload.append({"name": element.name,
                                "series": element.series})
            else:
                payload.append({"name": element.name,
                                "rows": element.rows})
        return JsonResponse({"report": output.design.name,
                             "elements": payload})

    def _handle_dashboards(self, request: Request) -> Response:
        self._trace("core-bi-services")
        return JsonResponse(self.reporting.dashboards(request.tenant))

    def _handle_define_dashboard(self, request: Request) -> Response:
        """Publish a dashboard definition from its JSON form."""
        from repro.reporting import DashboardDefinition

        if request.principal is not None \
                and not request.principal.has_authority("REPORT_EDIT"):
            raise HttpError(403, "REPORT_EDIT authority required")
        self._trace("core-bi-services")
        definition = DashboardDefinition.from_dict(request.body or {})
        self.reporting.define_dashboard(request.tenant, definition)
        return JsonResponse({"dashboard": definition.name},
                            status=201)

    def _handle_deliver_dashboard(self, request: Request) -> Response:
        self._trace("core-bi-services")
        name = request.require_param("name")
        if name in self.reporting.dashboard_definitions(request.tenant):
            dashboard = self.reporting.render_dashboard(
                request.tenant, name)
        else:
            dashboard = self.reporting.dashboard(request.tenant, name)
        channel_name = request.query.get("channel", "webservice")
        try:
            channel = Channel(channel_name)
        except ValueError as exc:
            raise HttpError(400,
                            f"unknown channel {channel_name!r}") from exc
        delivered = self.delivery.deliver_dashboard(dashboard, channel)
        if channel is Channel.WEB_SERVICE:
            return JsonResponse(delivered)
        return Response(status=200, body=delivered)

    def _handle_sql(self, request: Request) -> Response:
        """Run SQL against the tenant's operational store.

        The read path honors the replication contract (DESIGN.md §6):
        a read-only statement — classified by the same
        :meth:`RequestGateway.read_only_statement` the dispatcher uses
        — may be served by a shard replica whose lag fits the
        staleness budget (``max_staleness`` in the body overrides the
        platform default); the routing record comes back with the
        rows.  Writes always execute on the tenant's primary.

        On a sharded platform every dispatch is *epoch-fenced*
        (DESIGN.md §7): the route resolves to a handle pinned at the
        shard's generation, and the execute re-checks it — a
        statement racing a promotion gets a typed
        :class:`~repro.errors.StaleEpochError` (a retryable 503 at
        the web layer), never a silent commit on a fenced engine.
        """
        self._trace("core-bi-services", "technical-resources")
        body = request.body or {}
        sql = body.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise HttpError(400, "body needs a 'sql' field")
        params = tuple(body.get("params", ()))
        context = self.tenants.require_active(request.tenant)
        if RequestGateway.read_only_statement(sql):
            if self.shards is not None:
                budget = body.get("max_staleness")
                if budget is not None and \
                        (not isinstance(budget, int) or budget < 0):
                    raise HttpError(
                        400, "'max_staleness' must be an integer >= 0")
                handle = self.shards.read_handle(request.tenant,
                                                 budget)
                if self.overload is not None and \
                        handle.served_by != "primary":
                    # Tail-latency hedge (DESIGN.md §8): a replica
                    # read that is slow past the p95 window fires a
                    # backup against the primary; first answer wins,
                    # and the hedge spends a retry-budget token so
                    # hedging cannot amplify an overload.
                    backup = self.shards.write_handle(request.tenant)
                    rows, route = self.shards.dispatch_read_hedged(
                        handle, backup, sql, params,
                        hedge_after=self.overload.hedge_after(),
                        budget=self.overload.budget(request.tenant))
                else:
                    rows = self.shards.dispatch_read(handle, sql,
                                                     params)
                    route = handle.route
            else:
                rows = context.operational_db.query(sql, params)
                route = {"served_by": "primary", "replica_lag": 0}
            self.billing.meter(request.tenant, "query", 1)
            return JsonResponse({"rows": rows, **route})
        if self.shards is not None:
            handle = self.shards.write_handle(request.tenant)
            result = self.shards.dispatch_write(handle, sql, params)
            extra = {"shard": handle.shard,
                     "generation": handle.generation}
        else:
            result = context.operational_db.execute(sql, params)
            extra = {}
        rowcount = result if isinstance(result, int) else None
        return JsonResponse({"ok": True, "served_by": "primary",
                             "rowcount": rowcount, **extra})

    def _handle_project(self, request: Request) -> Response:
        self._trace("design-management")
        return JsonResponse(self.mddws.project_status(request.tenant))

    def _handle_design(self, request: Request) -> Response:
        """Run a model-driven design from a JSON CIM (MDDWS web UI)."""
        from repro.mda import CimModel

        if request.principal is not None \
                and not request.principal.has_authority("DW_DESIGN"):
            raise HttpError(403, "DW_DESIGN authority required")
        self._trace("design-management", "technical-resources")
        payload = request.body or {}
        cim = CimModel.from_dict(payload.get("cim", payload))
        layer = payload.get("layer", "warehouse")
        summary = self.mddws.design_warehouse(
            request.tenant, cim, layer=layer)
        return JsonResponse({
            "layer": summary["layer"],
            "iteration": summary["iteration"],
            "tables": summary["deployed"]["tables"],
            "cubes": summary["deployed"]["cubes"],
            "completion_points":
                summary["artifacts"].completion_points,
        }, status=201)

    def _handle_usage(self, request: Request) -> Response:
        if request.principal is None \
                or not request.principal.has_authority("PLATFORM_ADMIN"):
            raise HttpError(403, "PLATFORM_ADMIN authority required")
        self._trace("administration")
        return JsonResponse(self.admin.usage_report())

    def _handle_health(self, request: Request) -> Response:
        if request.principal is None \
                or not request.principal.has_authority("PLATFORM_ADMIN"):
            raise HttpError(403, "PLATFORM_ADMIN authority required")
        self._trace("administration")
        return JsonResponse(self.health_report().to_dict())

    # -- resilience observability ------------------------------------------------------

    def health_report(self) -> HealthReport:
        """Aggregate breaker/bulkhead/quarantine state per tenant.

        The administration layer's SLA/monitoring view (Fig. 1): one
        report covering the gateway's per-tenant circuit breakers and
        bulkheads, the integration service's quarantined jobs, the
        bus dead-letter backlog, and the faults injected so far (zero
        outside chaos runs).
        """
        report = HealthReport(
            dead_letters=len(self.resources.bus.dead_letters),
            fault_sites=self.faults.summary())
        if self.shards is not None:
            report.shards = self.shards.health()
        if self.supervisor is not None:
            report.supervision = self.supervisor.health()
        if self.overload is not None:
            report.overload = self.overload.snapshot()
        for tenant_id, health in self.gateway.tenant_health().items():
            report.tenants[tenant_id] = health
        for name in self.integration.scheduler.quarantined_jobs():
            tenant_id, job = name.split(":", 1)
            report.tenant(tenant_id).quarantined_jobs.append(job)
        if self.data_dir is not None:
            for tenant_id in self.tenants.tenant_ids():
                context = self.tenants.context(tenant_id)
                databases = {id(db): db for db in
                             (context.operational_db,
                              context.warehouse_db)
                             if db.wal is not None}
                if not databases:
                    continue
                health = report.tenant(tenant_id)
                # Committed-but-not-checkpointed transactions across
                # this tenant's databases (the shared operational db
                # counts for every tenant using it), plus the newest
                # checkpoint ordinal — the durability posture an
                # operator reads off /admin/health.
                health.wal_lag = sum(
                    db.wal_lag or 0 for db in databases.values())
                checkpoints = [db.last_checkpoint
                               for db in databases.values()
                               if db.last_checkpoint is not None]
                health.last_checkpoint = (
                    max(checkpoints) if checkpoints else None)
        return report
