"""Pay-as-you-go metering and billing.

"On-Demand and pay-as-you-go models mean that in a SaaS model, costs
are directly aligned with usage" (paper §2).  The billing service
meters every chargeable action (queries, reports, ETL rows), and turns
a month's meter readings plus the tenant's plan into an invoice.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.database import Database
from repro.errors import SubscriptionError

#: Chargeable usage kinds and their unit labels.
USAGE_KINDS = ("query", "report", "etl_rows", "dashboard", "storage_mb")


@dataclass(frozen=True)
class Plan:
    """A subscription plan: monthly fee + included units + overage."""

    name: str
    monthly_fee: float
    included: Dict[str, int] = field(default_factory=dict)
    overage_price: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind in list(self.included) + list(self.overage_price):
            if kind not in USAGE_KINDS:
                raise SubscriptionError(
                    f"plan {self.name!r}: unknown usage kind {kind!r}")


DEFAULT_PLANS = {
    "starter": Plan(
        "starter", monthly_fee=49.0,
        included={"query": 1000, "report": 100, "etl_rows": 50_000},
        overage_price={"query": 0.01, "report": 0.25,
                       "etl_rows": 0.0002}),
    "team": Plan(
        "team", monthly_fee=249.0,
        included={"query": 10_000, "report": 1_000,
                  "etl_rows": 1_000_000},
        overage_price={"query": 0.005, "report": 0.15,
                       "etl_rows": 0.0001}),
    "enterprise": Plan(
        "enterprise", monthly_fee=999.0,
        included={"query": 100_000, "report": 20_000,
                  "etl_rows": 20_000_000},
        overage_price={"query": 0.002, "report": 0.10,
                       "etl_rows": 0.00005}),
}


@dataclass
class InvoiceLine:
    kind: str
    used: int
    included: int
    overage_units: int
    amount: float


@dataclass
class Invoice:
    tenant: str
    period: str
    plan: str
    base_fee: float
    lines: List[InvoiceLine]

    @property
    def total(self) -> float:
        return round(self.base_fee
                     + sum(line.amount for line in self.lines), 2)


class BillingService:
    """Meters usage into the platform database and issues invoices."""

    def __init__(self, platform_db: Database,
                 plans: Optional[Dict[str, Plan]] = None):
        self.database = platform_db
        self.plans = dict(plans or DEFAULT_PLANS)
        self.database.execute(
            "CREATE TABLE IF NOT EXISTS usage_events ("
            "id INTEGER, tenant TEXT NOT NULL, period TEXT NOT NULL, "
            "kind TEXT NOT NULL, units INTEGER NOT NULL)")
        # Gateway workers meter concurrently; the id counter is a
        # check-then-increment that must not mint duplicates.
        self._next_id = 1  # guarded-by: _meter_lock
        self._meter_lock = threading.Lock()

    def plan(self, name: str) -> Plan:
        plan = self.plans.get(name)
        if plan is None:
            raise SubscriptionError(f"unknown plan {name!r}")
        return plan

    # -- metering ------------------------------------------------------------------

    def meter(self, tenant: str, kind: str, units: int = 1,
              period: str = "current") -> None:
        """Record one usage event."""
        if kind not in USAGE_KINDS:
            raise SubscriptionError(f"unknown usage kind {kind!r}")
        if units < 0:
            raise SubscriptionError("usage units cannot be negative")
        with self._meter_lock:
            event_id = self._next_id
            self._next_id += 1
        self.database.execute(
            "INSERT INTO usage_events VALUES (?, ?, ?, ?, ?)",
            (event_id, tenant, period, kind, units))

    def usage(self, tenant: str,
              period: str = "current") -> Dict[str, int]:
        """Total units per kind for one tenant and period."""
        rows = self.database.query(
            "SELECT kind, SUM(units) AS total FROM usage_events "
            "WHERE tenant = ? AND period = ? GROUP BY kind",
            (tenant, period))
        return {row["kind"]: int(row["total"]) for row in rows}

    def platform_usage(self, period: str = "current") \
            -> Dict[str, Dict[str, int]]:
        """Usage per tenant — the administration layer's view."""
        rows = self.database.query(
            "SELECT tenant, kind, SUM(units) AS total FROM usage_events "
            "WHERE period = ? GROUP BY tenant, kind", (period,))
        out: Dict[str, Dict[str, int]] = {}
        for row in rows:
            out.setdefault(row["tenant"], {})[row["kind"]] = \
                int(row["total"])
        return out

    # -- invoicing -------------------------------------------------------------------

    def invoice(self, tenant: str, plan_name: str,
                period: str = "current") -> Invoice:
        """Pay-as-you-go invoice: base fee + metered overage."""
        plan = self.plan(plan_name)
        usage = self.usage(tenant, period)
        lines: List[InvoiceLine] = []
        for kind, used in sorted(usage.items()):
            included = plan.included.get(kind, 0)
            overage = max(0, used - included)
            price = plan.overage_price.get(kind, 0.0)
            lines.append(InvoiceLine(
                kind=kind, used=used, included=included,
                overage_units=overage,
                amount=round(overage * price, 4)))
        return Invoice(tenant=tenant, period=period, plan=plan.name,
                       base_fee=plan.monthly_fee, lines=lines)
