"""IS — the integration service.

"The integration service offers an ad-hoc way to define data
integration jobs, jobs scheduling, etc." (paper §3.1).  Jobs are
defined against the tenant's registered databases, validated, run
through the ETL substrate and optionally scheduled; every run is
metered for pay-as-you-go billing and journalled.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.resources import TechnicalResourcesLayer
from repro.core.subscription import BillingService
from repro.core.tenancy import TenantManager
from repro.errors import JobQuarantinedError, ServiceError
from repro.etl import (
    EtlJob,
    JobGraph,
    JobResult,
    JobRunner,
    Load,
    Operator,
    Schedule,
    Scheduler,
    Source,
    TableSource,
)


class IntegrationService:
    """Per-tenant ETL job management and scheduling."""

    #: Consecutive scheduled failures before a job is quarantined.
    QUARANTINE_AFTER = 3

    def __init__(self, tenants: TenantManager,
                 resources: TechnicalResourcesLayer,
                 billing: Optional[BillingService] = None,
                 journal=None):
        self.tenants = tenants
        self.resources = resources
        self.billing = billing
        self._jobs: Dict[Tuple[str, str], EtlJob] = {}
        self._runner = JobRunner(error_policy="skip",
                                 faults=resources.faults)
        # One shared JournalLog carries both vocabularies: the
        # scheduler's ("sched"/"clock"/"unquarantine") records and
        # this service's ("run", {...}) history — each reader skips
        # the other's kinds.
        self.journal = journal
        self.scheduler = Scheduler(
            self._runner, quarantine_after=self.QUARANTINE_AFTER,
            journal=journal)
        self._run_journal: List[Dict[str, Any]] = []
        if journal is not None:
            for record in journal.recovered:
                if record and record[0] == "run":
                    self._run_journal.append(dict(record[1]))

    # -- job definition ---------------------------------------------------------------

    def define_job(self, tenant_id: str, name: str, source: Source,
                   operators: Sequence[Operator] = (),
                   target_database: Optional[str] = None,
                   target_table: Optional[str] = None,
                   mode: str = "append") -> EtlJob:
        """Define (and register) an ETL job for a tenant."""
        self.tenants.require_active(tenant_id)
        key = (tenant_id, name)
        if key in self._jobs:
            raise ServiceError(
                f"tenant {tenant_id!r} already has a job {name!r}")
        load = None
        if target_table is not None:
            database = self.resources.database(
                tenant_id, target_database or "warehouse")
            load = Load(database, target_table, mode=mode)
        job = EtlJob(f"{tenant_id}:{name}", source, operators, load)
        self._jobs[key] = job
        return job

    def define_table_copy(self, tenant_id: str, name: str,
                          source_database: str, source_table: str,
                          target_database: str, target_table: str,
                          operators: Sequence[Operator] = (),
                          mode: str = "append") -> EtlJob:
        """Convenience: copy a table between two tenant databases."""
        source_db = self.resources.database(tenant_id, source_database)
        return self.define_job(
            tenant_id, name,
            TableSource(source_db, source_table),
            operators,
            target_database=target_database,
            target_table=target_table,
            mode=mode)

    def jobs(self, tenant_id: str) -> List[str]:
        return sorted(name for (tenant, name) in self._jobs
                      if tenant == tenant_id)

    def job(self, tenant_id: str, name: str) -> EtlJob:
        job = self._jobs.get((tenant_id, name))
        if job is None:
            raise ServiceError(
                f"tenant {tenant_id!r} has no job {name!r}")
        return job

    # -- execution ---------------------------------------------------------------------

    def run_job(self, tenant_id: str, name: str) -> JobResult:
        """Run a job now; meters the rows written.

        A job the scheduler has quarantined is refused with a typed
        :class:`~repro.errors.JobQuarantinedError` until
        :meth:`unquarantine_job` readmits it — manual runs must not
        silently bypass the platform's failure containment.
        """
        job = self.job(tenant_id, name)
        if job.name in self.scheduler.quarantined_jobs():
            raise JobQuarantinedError(
                f"job {name!r} of tenant {tenant_id!r} is "
                f"quarantined after repeated failures; "
                f"unquarantine it first")
        result = self._runner.run(job)
        self._journal(tenant_id, name, result)
        return result

    def unquarantine_job(self, tenant_id: str, name: str) -> None:
        """Readmit a quarantined scheduled job."""
        self.job(tenant_id, name)  # validates ownership
        self.scheduler.unquarantine(f"{tenant_id}:{name}")

    def run_graph(self, tenant_id: str,
                  dependencies: Dict[str, Sequence[str]]) \
            -> Dict[str, JobResult]:
        """Run several tenant jobs respecting dependencies.

        ``dependencies`` maps job name → names it depends on.
        """
        graph = JobGraph()
        for name, depends_on in dependencies.items():
            graph.add(self.job(tenant_id, name),
                      depends_on=[f"{tenant_id}:{dep}"
                                  for dep in depends_on])
        results = graph.run_all(self._runner)
        out: Dict[str, JobResult] = {}
        for qualified, result in results.items():
            short = qualified.split(":", 1)[1]
            self._journal(tenant_id, short, result)
            out[short] = result
        return out

    def _journal(self, tenant_id: str, name: str,
                 result: JobResult) -> None:
        if self.billing is not None:
            self.billing.meter(tenant_id, "etl_rows",
                               result.rows_written)
        entry = {
            "tenant": tenant_id,
            "job": name,
            "rows_read": result.rows_read,
            "rows_written": result.rows_written,
            "rows_rejected": result.rows_rejected,
        }
        self._run_journal.append(entry)
        if self.journal is not None:
            self.journal.append(("run", entry))
        self.resources.publish_event(
            tenant_id, "etl-run",
            f"{name}: {result.rows_written} rows")

    def run_history(self, tenant_id: str) -> List[Dict[str, Any]]:
        return [entry for entry in self._run_journal
                if entry["tenant"] == tenant_id]

    # -- datamart materialization --------------------------------------------------------

    def materialize_datamart(self, tenant_id: str, table: str,
                             sql: str, database: str = "warehouse",
                             refresh: bool = False) -> int:
        """Materialize a query into a datamart table (CTAS).

        With ``refresh=True`` an existing table is dropped and
        rebuilt — the nightly-datamart refresh pattern.  Returns the
        number of materialized rows (metered as etl_rows).
        """
        self.tenants.require_active(tenant_id)
        target = self.resources.database(tenant_id, database)
        if refresh:
            target.execute(f"DROP TABLE IF EXISTS {table}")
        rows = target.execute(f"CREATE TABLE {table} AS {sql}")
        if self.billing is not None:
            self.billing.meter(tenant_id, "etl_rows", int(rows))
        self.resources.publish_event(
            tenant_id, "datamart-materialized", f"{table}: {rows} rows")
        return int(rows)

    # -- scheduling --------------------------------------------------------------------

    def schedule_job(self, tenant_id: str, name: str,
                     schedule: Schedule, retry_policy=None) -> None:
        job = self.job(tenant_id, name)
        self.scheduler.add(job, schedule, owner=tenant_id,
                           retry_policy=retry_policy)

    def advance_clock(self, minutes: int) -> int:
        """Drive the virtual clock; returns the number of runs fired.

        Failed and quarantine-skipped runs are journalled too (with
        zero row counts) so the tenant's run history shows *why* data
        is missing, but only completed runs meter billing.
        """
        records = self.scheduler.advance(minutes)
        fired = 0
        for record in records:
            tenant_id, name = record.job.split(":", 1)
            if record.result is not None:
                self._journal(tenant_id, name, record.result)
                fired += 1
            else:
                entry = {
                    "tenant": tenant_id,
                    "job": name,
                    "rows_read": 0,
                    "rows_written": 0,
                    "rows_rejected": 0,
                    "status": record.status,
                    "error": record.error,
                }
                self._run_journal.append(entry)
                if self.journal is not None:
                    self.journal.append(("run", entry))
        return fired

    def quarantined_jobs(self, tenant_id: str) -> List[str]:
        """This tenant's quarantined scheduled jobs (short names)."""
        prefix = f"{tenant_id}:"
        return [name[len(prefix):]
                for name in self.scheduler.quarantined_jobs()
                if name.startswith(prefix)]
