"""The reliability kernel: retries, breakers, deadlines, bulkheads.

ODBIS sells BI as an always-on multi-tenant service, so partial
failure is the normal case, not the exception: an ETL source flakes,
an ESB endpoint throws, a snapshot write is torn mid-flight.  This
module is the one place failure policy lives; every layer composes the
same small parts:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic seeded jitter* (same seed ⇒ same delay sequence),
* :class:`CircuitBreaker` — closed/open/half-open on an injectable
  clock, so cooldowns never need a real ``time.sleep`` under test,
* :class:`Deadline` — a per-request time budget that propagates,
* :class:`Bulkhead` — a per-tenant concurrency cap that sheds load
  instead of queueing it,
* :class:`FaultInjector` — the seeded, rate- and site-targeted chaos
  harness that makes all of the above testable deterministically,
* :class:`DegradedResult` / :class:`HealthReport` — degraded modes as
  first-class, observable values rather than exceptions.

Everything here is pure-Python, thread-safe where it is shared across
gateway workers, and clock-injectable so the chaos battery replays
byte-for-byte.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.errors import (
    BulkheadRejectedError,
    BulkheadReleaseError,
    CircuitOpenError,
    CrashPoint,
    DeadlineExceededError,
    InjectedFault,
    ResilienceError,
    RetryExhaustedError,
)

__all__ = [
    "Bulkhead",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "DegradedResult",
    "FakeClock",
    "FaultInjector",
    "FaultRule",
    "HealthReport",
    "MonotonicClock",
    "RetryPolicy",
    "TenantHealth",
]


# -- clocks ---------------------------------------------------------------------------


class Clock:
    """Injectable time source: ``now()`` seconds plus ``sleep()``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real monotonic clock (production default)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A manual clock for tests: ``sleep`` advances virtual time.

    ``slept`` records every requested sleep so tests can assert the
    exact backoff schedule without ever waiting for real time.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self.slept: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self._now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        self._now += seconds


# -- retry ----------------------------------------------------------------------------


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``attempts`` is the *total* number of tries (1 means no retry).
    The delay before retry *k* (1-based) is
    ``min(max_delay, base_delay * multiplier**(k-1))`` plus a jitter
    drawn from ``random.Random(seed)`` — the generator is re-seeded
    per :meth:`call`, so every invocation sees the identical delay
    sequence and chaos runs replay exactly.

    ``retryable`` limits which exception classes are retried;
    ``non_retryable`` carves exceptions out of that set (checked
    first).  Anything non-retryable propagates raw on first failure.
    """

    def __init__(self, attempts: int = 3, base_delay: float = 0.0,
                 multiplier: float = 2.0, max_delay: float = 60.0,
                 jitter: float = 0.0, seed: int = 0,
                 retryable: Sequence[Type[BaseException]] = (Exception,),
                 non_retryable: Sequence[Type[BaseException]] = ()):
        if attempts < 1:
            raise ResilienceError("RetryPolicy needs attempts >= 1")
        if base_delay < 0 or max_delay < 0 or jitter < 0:
            raise ResilienceError("RetryPolicy delays must be >= 0")
        self.attempts = attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retryable = tuple(retryable)
        self.non_retryable = tuple(non_retryable)

    def delays(self) -> List[float]:
        """The deterministic backoff schedule (one entry per retry)."""
        rng = random.Random(self.seed)
        schedule: List[float] = []
        for retry in range(self.attempts - 1):
            delay = min(self.max_delay,
                        self.base_delay * (self.multiplier ** retry))
            if self.jitter:
                delay += rng.uniform(0.0, self.jitter)
            schedule.append(delay)
        return schedule

    def should_retry(self, error: BaseException) -> bool:
        if isinstance(error, self.non_retryable):
            return False
        return isinstance(error, self.retryable)

    def call(self, fn: Callable[[], Any],
             clock: Optional[Clock] = None,
             on_retry: Optional[Callable[[int, BaseException], None]]
             = None, budget: Optional[Any] = None) -> Any:
        """Run ``fn`` under this policy; sleeps go through ``clock``.

        ``budget`` is an optional retry budget (duck-typed to
        :class:`repro.core.overload.RetryBudget`): each retry must
        first win a ``try_spend()`` token, and a success on the very
        first attempt calls ``record_success()`` to refill it.  An
        exhausted budget ends the attempt loop immediately — under a
        real overload that is the retry *storm* being extinguished,
        not a lost request.

        Raises :class:`RetryExhaustedError` (last error chained) when
        every attempt fails with a retryable exception, or early when
        the budget denies a retry.
        """
        clock = clock or MonotonicClock()
        schedule = self.delays()
        last: Optional[BaseException] = None
        for attempt in range(1, self.attempts + 1):
            try:
                result = fn()
            except BaseException as exc:
                if not self.should_retry(exc):
                    raise
                last = exc
                if attempt < self.attempts:
                    if budget is not None and not budget.try_spend():
                        raise RetryExhaustedError(
                            f"retry budget exhausted after attempt "
                            f"{attempt}: {last}",
                            attempts=attempt,
                            last_error=last) from last
                    if on_retry is not None:
                        on_retry(attempt, exc)
                    clock.sleep(schedule[attempt - 1])
            else:
                if attempt == 1 and budget is not None:
                    budget.record_success()
                return result
        raise RetryExhaustedError(
            f"all {self.attempts} attempts failed: {last}",
            attempts=self.attempts, last_error=last) from last


# -- circuit breaker ------------------------------------------------------------------


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    While open, :meth:`allow` returns False until ``cooldown`` seconds
    elapse on the injected clock; the first call after cooldown is the
    half-open probe — its success closes the breaker, its failure
    re-opens it for another full cooldown.  Thread-safe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 30.0,
                 clock: Optional[Clock] = None,
                 name: str = ""):
        if failure_threshold < 1:
            raise ResilienceError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock or MonotonicClock()
        self.name = name
        self._state = self.CLOSED          # guarded-by: _lock
        self._consecutive_failures = 0     # guarded-by: _lock
        self._opened_at = 0.0              # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def _maybe_half_open(self) -> None:  # requires: _lock
        if self._state == self.OPEN and \
                self.clock.now() - self._opened_at >= self.cooldown:
            self._state = self.HALF_OPEN

    def allow(self) -> bool:
        """May a call proceed right now?"""
        with self._lock:
            self._maybe_half_open()
            return self._state != self.OPEN

    def retry_after(self) -> float:
        """Cooldown remaining before the breaker half-opens.

        Transitions to half-open first, so a breaker sitting exactly
        at (or past) the cooldown boundary reports 0.0 — never a
        negative value — and the clamp covers clock skew inside the
        window too.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state != self.OPEN:
                return 0.0
            elapsed = self.clock.now() - self._opened_at
            return max(0.0, self.cooldown - elapsed)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == self.HALF_OPEN:
                # The probe failed: straight back to open.
                self._state = self.OPEN
                self._opened_at = self.clock.now()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self.clock.now()

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` through the breaker, recording the outcome."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name or 'breaker'} is open",
                retry_after=self.retry_after())
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


# -- deadlines ------------------------------------------------------------------------


class Deadline:
    """A time budget measured on an injectable clock.

    Created once at the edge (the gateway) and handed down, so every
    layer shares the *same* remaining budget instead of each holding
    its own timeout.
    """

    def __init__(self, budget_seconds: float,
                 clock: Optional[Clock] = None):
        if budget_seconds < 0:
            raise ResilienceError("deadline budget must be >= 0")
        self.clock = clock or MonotonicClock()
        self.budget_seconds = budget_seconds
        self._started = self.clock.now()

    @classmethod
    def after(cls, seconds: float,
              clock: Optional[Clock] = None) -> "Deadline":
        return cls(seconds, clock=clock)

    def elapsed(self) -> float:
        return self.clock.now() - self._started

    def remaining(self) -> float:
        return self.budget_seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` when the budget is gone."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget_seconds:.3f}s budget "
                f"({self.elapsed():.3f}s elapsed)")


# -- bulkheads ------------------------------------------------------------------------


class Bulkhead:
    """A concurrency cap that sheds excess load immediately.

    Unlike a queue, a full bulkhead rejects: under overload the tenant
    gets a fast typed error instead of unbounded latency, and one hot
    tenant cannot occupy every gateway worker.
    """

    def __init__(self, capacity: int, name: str = ""):
        if capacity < 1:
            raise ResilienceError("bulkhead capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._in_use = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._in_use

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_use >= self.capacity:
                return False
            self._in_use += 1
            return True

    def release(self) -> None:
        """Release one slot; a release without a matching acquire is a
        caller bug.  Under ``REPRO_SANITIZE=1`` the counter floors at
        zero and the sanitizer records the violation (so a long chaos
        run keeps going with honest health numbers); otherwise the
        typed :class:`~repro.errors.BulkheadReleaseError` surfaces the
        bug at the call site.
        """
        with self._lock:
            if self._in_use <= 0:
                from repro.analysis.concurrency.sanitizer import (
                    default_sanitizer,
                    sanitize_enabled,
                )
                if sanitize_enabled():
                    default_sanitizer().report(
                        "bulkhead-overrelease",
                        f"bulkhead {self.name or 'slot'} released "
                        f"more than acquired; flooring at 0",
                        bulkhead=self.name, capacity=self.capacity)
                    self._in_use = 0
                    return
                raise BulkheadReleaseError(
                    f"bulkhead {self.name or 'slot'} released more "
                    f"than acquired")
            self._in_use -= 1

    def __enter__(self) -> "Bulkhead":
        if not self.try_acquire():
            raise BulkheadRejectedError(
                f"bulkhead {self.name or 'slot'} is full "
                f"({self.capacity} in use)")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


# -- fault injection ------------------------------------------------------------------


@dataclass
class FaultRule:
    """One targeted chaos rule: fire at ``site`` with ``rate``.

    Each rule owns its own ``random.Random(seed)`` stream, so the
    decision sequence at a site depends only on (seed, number of
    draws) — never on wall time or other sites.  ``limit`` caps how
    many faults the rule may raise in total.
    """

    site: str
    rate: float
    seed: int
    error: Optional[Callable[[str, int], BaseException]] = None
    limit: Optional[int] = None
    draws: int = 0
    fired: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ResilienceError("fault rate must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def matches(self, site: str) -> bool:
        if self.site.endswith(".*"):
            return site.startswith(self.site[:-1]) \
                or site == self.site[:-2]
        return site == self.site

    def decide(self) -> bool:
        """Draw once; True when a fault should fire."""
        self.draws += 1
        if self.limit is not None and self.fired >= self.limit:
            return False
        if self._rng.random() < self.rate:
            self.fired += 1
            return True
        return False


class FaultInjector:
    """Seeded, rate- and site-targeted fault injection.

    Production code calls ``faults.fire("storage.write")`` at each
    instrumented site; with no rules registered this is a cheap no-op,
    and under chaos the registered rules decide *deterministically*
    whether that particular call fails.  ``history`` records every
    injected fault as ``(site, sequence)`` so two runs with the same
    seed can be asserted byte-identical.
    """

    def __init__(self) -> None:
        self._rules: List[FaultRule] = []          # guarded-by: _lock
        self.history: List[Tuple[str, int]] = []   # guarded-by: _lock
        self._sequence = 0                         # guarded-by: _lock
        self._lock = threading.Lock()
        self.enabled = True
        # site -> absolute byte offset at which the next log write
        # must "kill the process" (one-shot; see crash_cut/crash).
        self._crash_points: Dict[str, int] = {}    # guarded-by: _lock

    def inject(self, site: str, rate: float = 1.0, seed: int = 0,
               error: Optional[Callable[[str, int], BaseException]]
               = None, limit: Optional[int] = None) -> FaultRule:
        """Register a chaos rule; returns it for later inspection."""
        rule = FaultRule(site=site, rate=rate, seed=seed,
                         error=error, limit=limit)
        with self._lock:
            self._rules.append(rule)
        return rule

    def clear(self) -> None:
        with self._lock:
            self._rules.clear()
            self.history.clear()
            self._crash_points.clear()
            self._sequence = 0

    # -- crash points (write-ahead-log process death) -----------------------------

    def crash_at(self, site: str, offset: int) -> None:
        """Arm a one-shot crash at byte ``offset`` of ``site``'s log.

        The next append whose byte window reaches ``offset`` writes
        exactly the bytes before it, then dies with
        :class:`~repro.errors.CrashPoint` — the torn-tail shape of a
        real ``kill -9`` mid-write.  One crash point per site; arming
        again replaces it.
        """
        if offset < 0:
            raise ResilienceError("crash offset must be >= 0")
        with self._lock:
            self._crash_points[site] = offset

    def crash_cut(self, site: str, start: int,
                  end: int) -> Optional[int]:
        """Where (if anywhere) this ``[start, end)`` write must cut.

        Returns the absolute offset to stop at, or None when the write
        may complete.  An armed offset at or before ``start`` cuts
        immediately (the process should already be dead); one beyond
        ``end`` leaves this write alone.
        """
        if not self.enabled:
            return None
        with self._lock:
            offset = self._crash_points.get(site)
        if offset is None or offset > end:
            return None
        return max(offset, start)

    def crash(self, site: str, offset: int) -> None:
        """Record and raise the armed crash (disarming it)."""
        with self._lock:
            self._crash_points.pop(site, None)
            self._sequence += 1
            sequence = self._sequence
            self.history.append((site, sequence))
        raise CrashPoint(site, sequence, offset)

    @property
    def active(self) -> bool:
        return self.enabled and bool(self._rules)

    def fire(self, site: str) -> None:
        """Raise an injected fault at ``site`` when a rule says so."""
        if not self.enabled:
            return
        with self._lock:
            for rule in self._rules:
                if not rule.matches(site):
                    continue
                if rule.decide():
                    self._sequence += 1
                    self.history.append((site, self._sequence))
                    if rule.error is not None:
                        raise rule.error(site, self._sequence)
                    raise InjectedFault(site, self._sequence)

    def summary(self) -> Dict[str, int]:
        """Faults fired per site (for :class:`HealthReport`)."""
        counts: Dict[str, int] = {}
        with self._lock:
            for site, _ in self.history:
                counts[site] = counts.get(site, 0) + 1
        return counts


# -- degraded modes and health --------------------------------------------------------


@dataclass
class DegradedResult:
    """A first-class "here is the best I could do" value.

    Returned instead of raising when a layer can still serve
    something useful — typically a stale cached artefact — while its
    backend is broken.  ``stale_as_of`` marks how old the payload is
    (an opaque marker: a virtual-clock reading or a request counter).
    """

    payload: Any
    reason: str
    stale: bool = False
    stale_as_of: Optional[float] = None

    @property
    def degraded(self) -> bool:
        return True


@dataclass
class TenantHealth:
    """One tenant's resilience posture."""

    tenant: str
    breaker_state: str = CircuitBreaker.CLOSED
    consecutive_failures: int = 0
    bulkhead_in_use: int = 0
    bulkhead_capacity: int = 0
    quarantined_jobs: List[str] = field(default_factory=list)
    #: Committed transactions in the tenant warehouse WAL since its
    #: last checkpoint (None when the platform runs without a data
    #: directory — nothing durable to lag behind).
    wal_lag: Optional[int] = None
    #: How many checkpoints the tenant warehouse has taken (0 =
    #: recovery would replay the whole log); None without a data dir.
    last_checkpoint: Optional[int] = None

    @property
    def healthy(self) -> bool:
        return self.breaker_state == CircuitBreaker.CLOSED \
            and not self.quarantined_jobs

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "tenant": self.tenant,
            "breaker": self.breaker_state,
            "consecutive_failures": self.consecutive_failures,
            "bulkhead": {"in_use": self.bulkhead_in_use,
                         "capacity": self.bulkhead_capacity},
            "quarantined_jobs": list(self.quarantined_jobs),
            "healthy": self.healthy,
        }
        if self.wal_lag is not None:
            payload["wal_lag"] = self.wal_lag
            payload["last_checkpoint"] = self.last_checkpoint
        return payload


@dataclass
class HealthReport:
    """The platform-level aggregate the admin layer exposes."""

    tenants: Dict[str, TenantHealth] = field(default_factory=dict)
    dead_letters: int = 0
    fault_sites: Dict[str, int] = field(default_factory=dict)
    # Per-shard posture (primary, generation, breaker, replica lag)
    # when the platform runs a shard map; empty otherwise.  Duck-typed
    # dicts so the resilience kernel never imports sharding.
    shards: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # Supervisor posture (detector watches, incidents, quarantined
    # replicas) when the platform runs a shard supervisor; same
    # duck-typing rationale.
    supervision: Dict[str, Any] = field(default_factory=dict)
    # Overload-control posture (AIMD limiter, admission queue depths,
    # brownout level, per-tenant retry budgets) when the platform runs
    # an OverloadController; same duck-typing rationale.
    overload: Dict[str, Any] = field(default_factory=dict)

    def tenant(self, tenant_id: str) -> TenantHealth:
        if tenant_id not in self.tenants:
            self.tenants[tenant_id] = TenantHealth(tenant=tenant_id)
        return self.tenants[tenant_id]

    @property
    def healthy(self) -> bool:
        return self.dead_letters == 0 and \
            all(entry.healthy for entry in self.tenants.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "healthy": self.healthy,
            "dead_letters": self.dead_letters,
            "fault_sites": dict(sorted(self.fault_sites.items())),
            "tenants": {tenant_id: entry.to_dict()
                        for tenant_id, entry
                        in sorted(self.tenants.items())},
            "shards": {shard_id: dict(entry)
                       for shard_id, entry
                       in sorted(self.shards.items())},
            "supervision": dict(self.supervision),
            "overload": dict(self.overload),
        }
