"""Adaptive overload control: degrade gracefully, never collapse.

The ODBIS pitch is many tenants sharing one platform; the failure mode
that breaks the pitch is *congestion collapse* — past saturation a
statically-admitted system spends its workers on requests that have
already missed their deadlines, retries amplify the very overload that
caused them, and goodput falls off a cliff for every tenant at once.
This module is the platform's overload-control kernel, composed by the
request gateway (see :mod:`repro.core.gateway`) and driven entirely on
injectable clocks so every admission decision replays deterministically:

* **QoS classes** — every request is classified ``interactive``
  (dashboards, SQL reads) > ``reporting`` (report runs) > ``batch``
  (ETL, admin, SQL writes) from its path and statement class;
* :class:`AdmissionQueue` — a bounded priority queue; requests carry
  their :class:`~repro.core.resilience.Deadline` into the queue, and
  anything that ages out is answered 504 *without ever burning a
  worker*.  A full queue displaces the newest lowest-class entry
  before it refuses a higher-class arrival;
* :class:`AIMDLimiter` — the true admission limit: additive-increase
  on success, multiplicative-decrease on deadline misses and 5xx, and
  a latency gradient (observed EWMA vs. a slow baseline) that backs
  off *before* errors appear;
* :class:`RetryBudget` — a per-tenant token bucket wired into
  :meth:`~repro.core.resilience.RetryPolicy.call`: retries spend
  tokens, successful first attempts refill them, so a retry storm
  self-extinguishes instead of amplifying an outage;
* :class:`BrownoutController` — the degradation ladder.  As measured
  pressure rises the platform first stops stale-cache fills, then
  sheds ``batch``, then degrades ``reporting`` to stale answers —
  keeping ``interactive`` goodput flat through 4x offered load
  (benchmark E19);
* :func:`hedged_call` — tail-latency hedging for replica reads: fire
  a backup after the p95 delay, first response wins, the loser is
  cancelled — and the hedge itself spends a retry-budget token, so
  hedging can never become its own storm.

The contract (invariants, ladder order, limiter behaviour) is
DESIGN.md §8; EXPERIMENTS.md E19 records the goodput-vs-offered-load
curves this module exists to bend.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.core.resilience import Clock, Deadline, MonotonicClock
from repro.engine.parser import (
    CompoundSelect,
    ExplainStatement,
    SelectStatement,
    parse_sql,
)
from repro.errors import ResilienceError

__all__ = [
    "QOS_BATCH",
    "QOS_CLASSES",
    "QOS_INTERACTIVE",
    "QOS_REPORTING",
    "AIMDLimiter",
    "AdmissionQueue",
    "BrownoutController",
    "LatencyTracker",
    "OverloadController",
    "QueuedRequest",
    "RetryBudget",
    "classify_request",
    "hedged_call",
    "read_only_statement",
]

#: QoS classes, highest priority first.  ``interactive`` is the
#: dashboard/SQL-read traffic whose goodput the brownout ladder
#: protects; ``batch`` is the first thing shed.
QOS_INTERACTIVE = "interactive"
QOS_REPORTING = "reporting"
QOS_BATCH = "batch"
QOS_CLASSES: Tuple[str, ...] = (QOS_INTERACTIVE, QOS_REPORTING,
                                QOS_BATCH)

#: Path segments (after ``/tenants/{id}/``) that classify as
#: reporting-class work.
_REPORTING_SEGMENTS = frozenset({"reports"})

#: Path segments that classify as batch-class work (ETL, design and
#: other admin-shaped mutations).
_BATCH_SEGMENTS = frozenset({"design", "etl", "jobs"})


def read_only_statement(sql: str) -> bool:
    """True when ``sql`` dispatches as a lock-free snapshot read.

    The decision is made on the *outermost* statement class, so
    ``EXPLAIN UPDATE ...`` is a read — EXPLAIN renders a plan, it
    never executes the wrapped DML.  Unparseable SQL is conservatively
    classified as a write (the engine will reject it under the
    exclusive lock with a proper error).
    """
    try:
        statement = parse_sql(sql)
    except Exception:
        return False
    return isinstance(statement, (SelectStatement, CompoundSelect,
                                  ExplainStatement))


def classify_request(method: str, path: str,
                     sql: Optional[str] = None) -> str:
    """The QoS class of one request, from path + statement class.

    ``interactive``: dashboards, datasets, MDX, cubes and read-only
    SQL — the latency-sensitive traffic a human is waiting on.
    ``reporting``: report listing and report runs.  ``batch``:
    ``/admin`` surfaces, warehouse design, ETL jobs, and SQL writes —
    work that tolerates deferral.
    """
    parts = [part for part in path.split("/") if part]
    if parts and parts[0] == "admin":
        return QOS_BATCH
    if len(parts) >= 3 and parts[0] == "tenants":
        service = parts[2]
        if service in _REPORTING_SEGMENTS:
            return QOS_REPORTING
        if service in _BATCH_SEGMENTS:
            return QOS_BATCH
        if service == "sql":
            if sql is not None and read_only_statement(sql):
                return QOS_INTERACTIVE
            return QOS_BATCH
    return QOS_INTERACTIVE


# -- latency observation ----------------------------------------------------------


class LatencyTracker:
    """A windowed latency sample set with mean and p95 estimates.

    The window is a ring of the most recent ``window`` samples, so the
    estimates track the *current* regime, not the whole run.  Used for
    the hedged-read trigger delay (p95) and the queue's estimated
    drain time (mean).  Thread-safe.
    """

    def __init__(self, window: int = 256):
        if window < 1:
            raise ResilienceError("latency window must be >= 1")
        self._samples: Deque[float] = deque(maxlen=window)  # guarded-by: _lock
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(max(0.0, seconds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def mean(self) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            return sum(self._samples) / len(self._samples)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) of the window, 0 empty."""
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1,
                   max(0, int(q * len(ordered))))
        return ordered[rank]

    def p95(self) -> float:
        return self.quantile(0.95)


# -- AIMD concurrency limiter -----------------------------------------------------


class AIMDLimiter:
    """An adaptive concurrency limit: probe up gently, back off hard.

    The limit replaces a fixed worker count as the platform's true
    admission bound.  Per successful completion the limit grows by
    ``increase / limit`` (classic additive increase: ~+1 per full
    window of successes); a deadline miss or 5xx multiplies it by
    ``decrease``.  A *latency gradient* backs off early: when the fast
    EWMA of observed latency exceeds ``gradient_tolerance`` times the
    slow baseline EWMA, the limiter treats it as congestion even
    though nothing has failed yet.  Multiplicative decreases are
    rate-limited to one per ``decrease_cooldown`` seconds on the
    injected clock, so a single burst of misses (one RTT's worth)
    costs one halving, not a collapse to the floor.  Thread-safe and
    fully deterministic given the same event sequence and clock.
    """

    def __init__(self, initial_limit: int = 8, min_limit: int = 1,
                 max_limit: int = 256, increase: float = 1.0,
                 decrease: float = 0.5,
                 gradient_tolerance: float = 2.0,
                 baseline_smoothing: float = 0.05,
                 observed_smoothing: float = 0.3,
                 decrease_cooldown: float = 1.0,
                 clock: Optional[Clock] = None):
        if not (1 <= min_limit <= initial_limit <= max_limit):
            raise ResilienceError(
                "need 1 <= min_limit <= initial_limit <= max_limit")
        if not (0.0 < decrease < 1.0):
            raise ResilienceError("decrease must be in (0, 1)")
        if gradient_tolerance <= 1.0:
            raise ResilienceError("gradient_tolerance must be > 1")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.decrease = decrease
        self.gradient_tolerance = gradient_tolerance
        self.baseline_smoothing = baseline_smoothing
        self.observed_smoothing = observed_smoothing
        self.decrease_cooldown = decrease_cooldown
        self.clock = clock or MonotonicClock()
        self._limit = float(initial_limit)     # guarded-by: _lock
        self._in_flight = 0                    # guarded-by: _lock
        self._baseline: Optional[float] = None  # guarded-by: _lock
        self._observed: Optional[float] = None  # guarded-by: _lock
        self._last_decrease: Optional[float] = None  # guarded-by: _lock
        self._successes = 0                    # guarded-by: _lock
        self._failures = 0                     # guarded-by: _lock
        self._gradient_decreases = 0           # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def limit(self) -> int:
        """The current admission limit (whole slots)."""
        with self._lock:
            return max(self.min_limit, int(self._limit))

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def try_acquire(self) -> bool:
        """Claim an admission slot; False when the limit is reached."""
        with self._lock:
            if self._in_flight >= max(self.min_limit, int(self._limit)):
                return False
            self._in_flight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1

    def _decrease_locked(self) -> bool:  # requires: _lock
        now = self.clock.now()
        if self._last_decrease is not None and \
                now - self._last_decrease < self.decrease_cooldown:
            return False
        self._limit = max(float(self.min_limit),
                          self._limit * self.decrease)
        self._last_decrease = now
        return True

    def on_success(self, latency: float) -> None:
        """A completion inside its deadline: grow, unless the latency
        gradient says the backend is already congested."""
        with self._lock:
            self._successes += 1
            latency = max(0.0, latency)
            if self._observed is None:
                self._observed = latency
                self._baseline = latency
            else:
                self._observed += self.observed_smoothing * \
                    (latency - self._observed)
                self._baseline += self.baseline_smoothing * \
                    (latency - self._baseline)
            if self._baseline and self._baseline > 0 and \
                    self._observed > self.gradient_tolerance \
                    * self._baseline:
                if self._decrease_locked():
                    self._gradient_decreases += 1
                return
            self._limit = min(
                float(self.max_limit),
                self._limit + self.increase / max(1.0, self._limit))

    def on_failure(self, kind: str = "error") -> None:
        """A deadline miss or 5xx: multiplicative decrease."""
        with self._lock:
            self._failures += 1
            self._decrease_locked()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "limit": max(self.min_limit, int(self._limit)),
                "in_flight": self._in_flight,
                "successes": self._successes,
                "failures": self._failures,
                "gradient_decreases": self._gradient_decreases,
                "latency_observed": self._observed,
                "latency_baseline": self._baseline,
            }


# -- bounded priority admission queue ---------------------------------------------


@dataclass
class QueuedRequest:
    """One parked admission: QoS class, deadline, opaque payload.

    ``payload`` is whatever the caller needs to resume the request
    (the gateway parks its whole work item there); the queue itself
    only reads ``qos`` and ``deadline``.
    """

    qos: str
    seq: int
    enqueued_at: float
    deadline: Optional[Deadline] = None
    payload: Any = None

    @property
    def expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired


class AdmissionQueue:
    """A bounded, deadline-aware priority queue over the QoS classes.

    ``poll`` serves strictly by class (interactive before reporting
    before batch), FIFO within a class.  ``offer`` on a full queue
    *displaces* the newest entry of a strictly lower class before it
    refuses the arrival — priority means something exactly when the
    queue is full.  Entries whose deadline ages out while parked are
    harvested by :meth:`take_expired` so the caller can answer them
    504 without a worker ever seeing them.  Thread-safe.
    """

    def __init__(self, capacity: int = 64,
                 clock: Optional[Clock] = None):
        if capacity < 1:
            raise ResilienceError("queue capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock or MonotonicClock()
        self._queues: Dict[str, Deque[QueuedRequest]] = {
            qos: deque() for qos in QOS_CLASSES}  # guarded-by: _lock
        self._seq = 0          # guarded-by: _lock
        self._displaced = 0    # guarded-by: _lock
        self._refused = 0      # guarded-by: _lock
        self._expired = 0      # guarded-by: _lock
        # Entries that aged out under poll(); drained by take_expired()
        # so no 504 is ever silently dropped.
        self._graveyard: List[QueuedRequest] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def depths(self) -> Dict[str, int]:
        with self._lock:
            return {qos: len(q) for qos, q in self._queues.items()}

    def offer(self, qos: str, deadline: Optional[Deadline] = None,
              payload: Any = None) \
            -> Tuple[Optional[QueuedRequest],
                     Optional[QueuedRequest]]:
        """Park one admission; returns ``(entry, displaced)``.

        ``entry`` is None when the queue refused the arrival (full of
        same-or-higher-class work); ``displaced`` is the lower-class
        entry that was evicted to make room, for the caller to answer
        with a typed shed.
        """
        if qos not in QOS_CLASSES:
            raise ResilienceError(f"unknown QoS class {qos!r}")
        with self._lock:
            displaced: Optional[QueuedRequest] = None
            total = sum(len(q) for q in self._queues.values())
            if total >= self.capacity:
                # Evict the newest entry of the lowest class strictly
                # below the arrival — shedding old work would waste
                # the wait it has already endured.
                for lower in reversed(QOS_CLASSES):
                    if QOS_CLASSES.index(lower) <= QOS_CLASSES.index(qos):
                        break
                    if self._queues[lower]:
                        displaced = self._queues[lower].pop()
                        self._displaced += 1
                        break
                if displaced is None:
                    self._refused += 1
                    return None, None
            self._seq += 1
            entry = QueuedRequest(qos=qos, seq=self._seq,
                                  enqueued_at=self.clock.now(),
                                  deadline=deadline, payload=payload)
            self._queues[qos].append(entry)
            return entry, displaced

    def poll(self) -> Optional[QueuedRequest]:
        """The next live entry, highest class first, FIFO within."""
        with self._lock:
            for qos in QOS_CLASSES:
                queue = self._queues[qos]
                while queue:
                    entry = queue.popleft()
                    if entry.expired:
                        self._expired += 1
                        # Hand it back through take_expired's contract:
                        # the caller polls expired separately, so stash
                        # it for the next harvest.
                        self._graveyard.append(entry)
                        continue
                    return entry
            return None

    def take_expired(self) -> List[QueuedRequest]:
        """Remove and return every entry whose deadline has aged out."""
        with self._lock:
            harvested: List[QueuedRequest] = list(self._graveyard)
            self._graveyard.clear()
            for qos in QOS_CLASSES:
                queue = self._queues[qos]
                live = deque(entry for entry in queue
                             if not entry.expired)
                expired_here = len(queue) - len(live)
                if expired_here:
                    harvested.extend(entry for entry in queue
                                     if entry.expired)
                    self._expired += expired_here
                    self._queues[qos] = live
            return sorted(harvested, key=lambda entry: entry.seq)

    def estimated_drain(self, service_seconds: float,
                        concurrency: int) -> float:
        """Seconds until a new arrival would reach a worker."""
        depth = len(self)
        if depth == 0 or service_seconds <= 0:
            return 0.0
        return depth * service_seconds / max(1, concurrency)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "depths": {qos: len(q)
                           for qos, q in self._queues.items()},
                "displaced": self._displaced,
                "refused": self._refused,
                "expired": self._expired,
            }


# -- per-tenant retry budgets -----------------------------------------------------


class RetryBudget:
    """A token bucket bounding how much retry traffic a tenant adds.

    Every retry (and every hedged request) spends one token; every
    successful *first* attempt refills ``refill_per_success`` of a
    token, up to ``capacity``.  When the bucket is empty, retries stop
    — which is exactly when they were amplifying an overload rather
    than papering over a blip: a healthy backend refills the bucket
    faster than transient failures drain it, a collapsed backend
    cannot refill it at all.  Thread-safe.
    """

    def __init__(self, capacity: float = 10.0,
                 refill_per_success: float = 0.1,
                 initial: Optional[float] = None, name: str = ""):
        if capacity <= 0:
            raise ResilienceError("retry budget capacity must be > 0")
        if refill_per_success < 0:
            raise ResilienceError("refill_per_success must be >= 0")
        self.capacity = capacity
        self.refill_per_success = refill_per_success
        self.name = name
        self._tokens = capacity if initial is None \
            else min(capacity, max(0.0, initial))  # guarded-by: _lock
        self._spent = 0      # guarded-by: _lock
        self._denied = 0     # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens for one retry/hedge; False = denied."""
        with self._lock:
            if self._tokens < cost:
                self._denied += 1
                return False
            self._tokens -= cost
            self._spent += 1
            return True

    def record_success(self) -> None:
        """A successful first attempt refills the bucket."""
        with self._lock:
            self._tokens = min(self.capacity,
                               self._tokens + self.refill_per_success)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"tokens": round(self._tokens, 3),
                    "capacity": self.capacity,
                    "spent": self._spent,
                    "denied": self._denied}


# -- brownout ladder --------------------------------------------------------------

#: The degradation ladder, mildest first.  Order is the contract:
#: stale-cache fills stop before anything is shed, batch sheds before
#: reporting degrades, and interactive is never touched.
BROWNOUT_STAGES: Tuple[str, ...] = (
    "normal",             # level 0: everything runs
    "no-cache-fill",      # level 1: stop refreshing the stale cache
    "shed-batch",         # level 2: batch answered 503 + Retry-After
    "degrade-reporting",  # level 3: reporting answered stale
)


class BrownoutController:
    """Maps measured pressure onto the degradation ladder.

    ``observe(pressure)`` feeds a smoothed pressure signal (0 = idle,
    1 = saturated); the level steps *up* the moment the smoothed value
    crosses a threshold and steps *down* only ``hysteresis`` below it
    and after ``min_dwell`` seconds at the current level — so the
    ladder cannot flap at a threshold boundary.  Deterministic on the
    injected clock.
    """

    def __init__(self, thresholds: Tuple[float, float, float] =
                 (0.5, 0.75, 0.9),
                 smoothing: float = 0.3, hysteresis: float = 0.1,
                 min_dwell: float = 1.0,
                 clock: Optional[Clock] = None):
        if len(thresholds) != len(BROWNOUT_STAGES) - 1 or \
                list(thresholds) != sorted(thresholds):
            raise ResilienceError(
                "brownout needs one ascending threshold per rung")
        self.thresholds = tuple(thresholds)
        self.smoothing = smoothing
        self.hysteresis = hysteresis
        self.min_dwell = min_dwell
        self.clock = clock or MonotonicClock()
        self._pressure = 0.0       # guarded-by: _lock
        self._level = 0            # guarded-by: _lock
        self._changed_at = self.clock.now()  # guarded-by: _lock
        self._transitions: List[Tuple[float, int]] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def stage(self) -> str:
        return BROWNOUT_STAGES[self.level]

    @property
    def pressure(self) -> float:
        with self._lock:
            return self._pressure

    def observe(self, pressure: float) -> int:
        """Feed one pressure sample; returns the (new) level."""
        pressure = min(1.0, max(0.0, pressure))
        with self._lock:
            self._pressure += self.smoothing * \
                (pressure - self._pressure)
            target = 0
            for index, threshold in enumerate(self.thresholds):
                if self._pressure >= threshold:
                    target = index + 1
            now = self.clock.now()
            if target > self._level:
                self._level = target
                self._changed_at = now
                self._transitions.append((now, target))
            elif target < self._level:
                # Step down one rung at a time, only once the smoothed
                # pressure has cleared the rung's threshold by the
                # hysteresis margin and the dwell time has passed.
                threshold = self.thresholds[self._level - 1]
                if self._pressure < threshold - self.hysteresis and \
                        now - self._changed_at >= self.min_dwell:
                    self._level -= 1
                    self._changed_at = now
                    self._transitions.append((now, self._level))
            return self._level

    # -- what the current level permits ------------------------------------------

    def allows_cache_fill(self) -> bool:
        return self.level < 1

    def sheds(self, qos: str) -> bool:
        """True when the ladder says this class is answered 503."""
        return qos == QOS_BATCH and self.level >= 2

    def degrades(self, qos: str) -> bool:
        """True when the ladder says this class is answered stale."""
        return qos == QOS_REPORTING and self.level >= 3

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"level": self._level,
                    "stage": BROWNOUT_STAGES[self._level],
                    "pressure": round(self._pressure, 4),
                    "transitions": len(self._transitions)}


# -- hedged calls -----------------------------------------------------------------

#: Lazily-built shared pool for hedge backups.  Small on purpose: a
#: hedge is a tail-latency patch, not a second serving fleet.
_hedge_pool: Optional[ThreadPoolExecutor] = None
_hedge_pool_lock = threading.Lock()


def _hedge_executor() -> ThreadPoolExecutor:
    global _hedge_pool
    with _hedge_pool_lock:
        if _hedge_pool is None:
            _hedge_pool = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="odbis-hedge")
        return _hedge_pool


def hedged_call(primary: Callable[[], Any],
                backup: Callable[[], Any],
                hedge_after: float,
                budget: Optional[RetryBudget] = None) \
        -> Tuple[Any, Dict[str, Any]]:
    """Run ``primary``; fire ``backup`` if it is slow.  First wins.

    Waits ``hedge_after`` real seconds for the primary; past that, if
    ``budget`` grants a token (a hedge is a speculative retry — it
    must not escape the retry budget), the backup launches and the
    first *successful* completion is returned.  The loser is cancelled
    when still queued; a running loser's result is discarded.  If both
    fail, the primary's error propagates.

    A primary that *errors* before the timer fires fails over to the
    backup immediately — that path is not speculative (the primary is
    already dead), so it never spends a budget token.

    Returns ``(result, info)`` where info carries ``winner``
    (``"primary"``/``"backup"``) and ``hedged`` (whether the backup
    launched).
    """
    pool = _hedge_executor()
    first = pool.submit(primary)
    done, _ = wait([first], timeout=max(0.0, hedge_after))
    if done:
        error = first.exception()
        if error is None:
            return first.result(), {"winner": "primary",
                                    "hedged": False}
        try:
            return backup(), {"winner": "backup", "hedged": True,
                              "failover": True}
        except BaseException:
            raise error from None
    if budget is not None and not budget.try_spend():
        return first.result(), {"winner": "primary", "hedged": False,
                                "hedge_denied": True}
    second = pool.submit(backup)
    futures = {first: "primary", second: "backup"}
    errors: Dict[str, BaseException] = {}
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            label = futures[future]
            try:
                result = future.result()
            except BaseException as exc:  # first success wins; keep
                errors[label] = exc       # errors in case both fail
                continue
            for loser in pending:
                loser.cancel()
            return result, {"winner": label, "hedged": True}
    raise errors.get("primary") or errors["backup"]


# -- the controller façade --------------------------------------------------------


class OverloadController:
    """Everything the gateway needs, behind one object.

    Owns the admission queue, the AIMD limiter, the brownout ladder,
    the latency window and the per-tenant retry budgets, and keeps the
    ``decision_log`` — one ``(path, qos, decision)`` triple per
    admission decision, the observable that makes overload behaviour
    replayable: the same seeded workload produces the identical log.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 queue_capacity: int = 64,
                 limiter: Optional[AIMDLimiter] = None,
                 brownout: Optional[BrownoutController] = None,
                 retry_budget_capacity: float = 10.0,
                 retry_budget_refill: float = 0.1,
                 hedge_floor: float = 0.001,
                 decision_log_capacity: int = 100_000,
                 **limiter_kwargs: Any):
        self.clock = clock or MonotonicClock()
        self.queue = AdmissionQueue(queue_capacity, clock=self.clock)
        self.limiter = limiter or AIMDLimiter(clock=self.clock,
                                              **limiter_kwargs)
        self.brownout = brownout or BrownoutController(clock=self.clock)
        self.latency = LatencyTracker()
        self.retry_budget_capacity = retry_budget_capacity
        self.retry_budget_refill = retry_budget_refill
        self.hedge_floor = hedge_floor
        self._budgets: Dict[str, RetryBudget] = {}  # guarded-by: _lock
        self.decision_log: Deque[Tuple[str, str, str]] = deque(
            maxlen=decision_log_capacity)  # guarded-by: _lock
        self._lock = threading.Lock()

    # -- classification and budgets ----------------------------------------------

    def classify(self, method: str, path: str,
                 sql: Optional[str] = None) -> str:
        return classify_request(method, path, sql)

    def budget(self, tenant_id: str) -> RetryBudget:
        """The tenant's retry budget (created on first use)."""
        with self._lock:
            if tenant_id not in self._budgets:
                self._budgets[tenant_id] = RetryBudget(
                    capacity=self.retry_budget_capacity,
                    refill_per_success=self.retry_budget_refill,
                    name=f"tenant:{tenant_id}")
            return self._budgets[tenant_id]

    # -- pressure -----------------------------------------------------------------

    def pressure(self) -> float:
        """The saturation signal the brownout ladder watches.

        Limiter utilisation alone tops out at 0.5 of the scale; queue
        fill carries the other half — so "limiter saturated, queue
        empty" reads 0.5 (first rung) while a filling queue walks the
        signal toward 1.0 (shedding rungs).
        """
        limit = self.limiter.limit
        utilisation = self.limiter.in_flight / limit if limit else 1.0
        fill = len(self.queue) / self.queue.capacity
        return 0.5 * min(1.0, utilisation) + 0.5 * min(1.0, fill)

    def observe(self) -> int:
        """Sample pressure into the ladder; returns the level."""
        return self.brownout.observe(self.pressure())

    # -- outcomes and the decision log --------------------------------------------

    def record(self, path: str, qos: str, decision: str) -> None:
        with self._lock:
            self.decision_log.append((path, qos, decision))

    def note_result(self, latency: float, ok: bool,
                    deadline_missed: bool = False) -> None:
        """Feed one completion into the limiter and latency window."""
        self.latency.record(latency)
        if deadline_missed:
            self.limiter.on_failure("deadline")
        elif ok:
            self.limiter.on_success(latency)
        else:
            self.limiter.on_failure("5xx")
        self.observe()

    def hedge_after(self) -> float:
        """The hedge trigger delay: p95 of the latency window."""
        return max(self.hedge_floor, self.latency.p95())

    def estimated_drain(self) -> float:
        """Seconds a new arrival would wait for a worker right now."""
        service = self.latency.mean() or 0.05
        return self.queue.estimated_drain(service, self.limiter.limit)

    # -- observability -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            budgets = {tenant: budget.snapshot()
                       for tenant, budget in sorted(
                           self._budgets.items())}
        return {
            "limiter": self.limiter.snapshot(),
            "queue": self.queue.snapshot(),
            "brownout": self.brownout.snapshot(),
            "retry_budgets": budgets,
            "latency_p95": round(self.latency.p95(), 6),
        }
