"""IDS — the information delivery service.

"The information delivery service is an abstraction level to support
many client interfaces and technologies (e.g., web browser, mobile,
office tools).  It can be also presented as a web service" (paper
§3.1).  One rendered artefact, four delivery formats.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List

from repro.errors import ServiceError
from repro.reporting import (
    Dashboard,
    RenderedChart,
    RenderedTable,
    render_dashboard_html,
    render_dashboard_text,
)


class Channel(enum.Enum):
    """The client technologies the IDS can deliver to."""

    WEB = "web"                # browser: full HTML
    MOBILE = "mobile"          # compact text
    OFFICE = "office"          # CSV-style tabular export
    WEB_SERVICE = "webservice"  # structured JSON-ready dict


class InformationDeliveryService:
    """Formats dashboards and report elements per delivery channel."""

    def deliver_report(self, output: Any, channel: Channel) -> Any:
        """Deliver a BIRT report output through any channel.

        ``output`` is a :class:`repro.reporting.birt.ReportOutput`;
        its elements are wrapped in a transient dashboard so every
        channel formatter applies uniformly.
        """
        wrapper = Dashboard(output.design.name)
        for element in output.elements:
            wrapper.add_row(element)
        return self.deliver_dashboard(wrapper, channel)

    def deliver_dashboard(self, dashboard: Dashboard,
                          channel: Channel) -> Any:
        if channel is Channel.WEB:
            return render_dashboard_html(dashboard)
        if channel is Channel.MOBILE:
            return self._mobile_text(dashboard)
        if channel is Channel.OFFICE:
            return self._office_export(dashboard)
        if channel is Channel.WEB_SERVICE:
            return self._structured(dashboard)
        raise ServiceError(f"unsupported channel {channel!r}")

    # -- channel formatters ---------------------------------------------------------

    @staticmethod
    def _mobile_text(dashboard: Dashboard) -> str:
        """A compact summary: element names plus headline numbers."""
        lines = [f"[{dashboard.name}]"]
        for row in dashboard.rows:
            for element in row:
                if isinstance(element, RenderedChart):
                    values = [value for value in element.values()
                              if isinstance(value, (int, float))]
                    total = sum(values) if values else 0
                    lines.append(
                        f"- {element.name}: {len(element.series)} "
                        f"series, total {total:,.0f}")
                elif isinstance(element, RenderedTable):
                    lines.append(
                        f"- {element.name}: {len(element.rows)} rows")
        return "\n".join(lines)

    @staticmethod
    def _office_export(dashboard: Dashboard) -> str:
        """CSV blocks, one per element (office-tool friendly)."""
        blocks: List[str] = []
        for row in dashboard.rows:
            for element in row:
                lines = [f"# {element.name}"]
                if isinstance(element, RenderedChart):
                    lines.append("category,value")
                    for category, value in element.series:
                        lines.append(f"{category},{value}")
                elif isinstance(element, RenderedTable):
                    columns = element.spec.columns
                    lines.append(",".join(columns))
                    for record in element.rows:
                        lines.append(",".join(
                            "" if record.get(column) is None
                            else str(record.get(column))
                            for column in columns))
                blocks.append("\n".join(lines))
        return "\n\n".join(blocks)

    @staticmethod
    def _structured(dashboard: Dashboard) -> Dict[str, Any]:
        """JSON-ready structure for web-service consumers."""
        elements: List[Dict[str, Any]] = []
        for row_index, row in enumerate(dashboard.rows):
            for element in row:
                if isinstance(element, RenderedChart):
                    elements.append({
                        "row": row_index,
                        "type": "chart",
                        "kind": element.spec.kind,
                        "name": element.name,
                        "series": [
                            {"category": category, "value": value}
                            for category, value in element.series
                        ],
                    })
                elif isinstance(element, RenderedTable):
                    elements.append({
                        "row": row_index,
                        "type": "table",
                        "name": element.name,
                        "columns": element.spec.columns,
                        "rows": element.rows,
                    })
        return {
            "dashboard": dashboard.name,
            "description": dashboard.description,
            "elements": elements,
        }
