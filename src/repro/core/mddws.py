"""MDDWS — the Model-Driven Data Warehouse Service.

The DW design-and-management layer (paper Figs. 2-3): a web-based
environment where a tenant designs its warehouse through the unified
MDA + 2TUP method.  One call to :meth:`MddwsService.design_warehouse`
runs a complete 2TUP iteration whose realization disciplines host the
MDA chain (BCIM → PIM → PSM → code), deploys the generated DDL into
the tenant's warehouse database, and registers the generated cubes
with the analysis service — on-demand DW design end to end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.analysis_service import AnalysisService
from repro.core.resources import TechnicalResourcesLayer
from repro.core.tenancy import TenantManager
from repro.errors import ServiceError
from repro.mda import (
    CimModel,
    DwProject,
    GeneratedArtifacts,
    cim_to_pim,
    generate_code,
    pim_to_psm,
)


class MddwsService:
    """Per-tenant model-driven DW design and project management."""

    def __init__(self, tenants: TenantManager,
                 resources: TechnicalResourcesLayer,
                 analysis: Optional[AnalysisService] = None):
        self.tenants = tenants
        self.resources = resources
        self.analysis = analysis
        self._projects: Dict[str, DwProject] = {}

    # -- project management (the methodology layer) ------------------------------------

    def create_project(self, tenant_id: str, name: str,
                       layers=("staging", "warehouse", "datamart")) \
            -> DwProject:
        self.tenants.require_active(tenant_id)
        if tenant_id in self._projects:
            raise ServiceError(
                f"tenant {tenant_id!r} already has a DW project")
        project = DwProject(name, layers=layers)
        project.add_risk("source data quality", "high",
                         "profile sources during preliminary study")
        project.add_risk("requirement drift", "medium",
                         "iterative 2TUP cycles keep scope in check")
        self._projects[tenant_id] = project
        return project

    def project(self, tenant_id: str) -> DwProject:
        project = self._projects.get(tenant_id)
        if project is None:
            raise ServiceError(
                f"tenant {tenant_id!r} has no DW project")
        return project

    def project_status(self, tenant_id: str) -> Dict[str, Any]:
        return self.project(tenant_id).status()

    # -- model-driven design (the design layer) ------------------------------------------

    def design_warehouse(self, tenant_id: str, cim: CimModel,
                         layer: str = "warehouse",
                         deploy: bool = True) -> Dict[str, Any]:
        """Run one full 2TUP iteration carrying the MDA chain.

        Returns a summary with the produced models, generated
        artifacts, the completed iteration and deployment results.
        """
        project = self.project(tenant_id)
        iteration = project.process.start_iteration(layer)

        # Functional branch: capture and refine the business CIM.
        iteration.complete("preliminary-study",
                           deliverable={"subjects": cim.subject_names()})
        iteration.complete("business-requirements", deliverable=cim)
        iteration.complete("analysis", deliverable=cim)

        # Technical branch: the TCIM and generic design.
        iteration.complete("technical-requirements",
                           deliverable=cim.technical)
        iteration.complete("generic-design",
                           deliverable={"platform":
                                        cim.technical.target_platform})

        # Realization: the MDA transformation process as a sub-process.
        pim, pim_traces = cim_to_pim(cim)
        iteration.complete("preliminary-design", deliverable=pim)
        psm, psm_context = pim_to_psm(pim, cim.technical)
        iteration.complete("detailed-design", deliverable=psm)
        artifacts = generate_code(psm, pim)
        iteration.complete("coding", deliverable=artifacts)
        iteration.complete(
            "code-completion",
            deliverable={"open_points": artifacts.completion_points})

        deployed: Dict[str, Any] = {"tables": [], "cubes": []}
        if deploy:
            deployed = self._deploy(tenant_id, artifacts)
        iteration.complete("tests",
                           deliverable={"model_problems":
                                        pim.validate() + psm.validate()})
        iteration.complete("deployment", deliverable=deployed)

        self._register_artifacts(project, layer, pim, psm, artifacts)
        return {
            "layer": layer,
            "iteration": iteration.number,
            "pim": pim,
            "psm": psm,
            "artifacts": artifacts,
            "pim_traces": pim_traces,
            "psm_traces": psm_context.traces,
            "deployed": deployed,
        }

    # -- deployment (the deployment layer) -------------------------------------------------

    def _deploy(self, tenant_id: str,
                artifacts: GeneratedArtifacts) -> Dict[str, Any]:
        warehouse = self.resources.database(tenant_id, "warehouse")
        created: List[str] = []
        for statement in artifacts.ddl:
            warehouse.execute(statement)
            if statement.startswith("CREATE TABLE"):
                created.append(statement.split()[2])
        cubes: List[str] = []
        if self.analysis is not None:
            for definition in artifacts.cube_definitions:
                self.analysis.define_cube(tenant_id, definition)
                cubes.append(definition["name"])
        self.resources.publish_event(
            tenant_id, "dw-deployed",
            f"{len(created)} tables, {len(cubes)} cubes")
        return {"tables": created, "cubes": cubes}

    @staticmethod
    def _register_artifacts(project: DwProject, layer: str,
                            pim, psm,
                            artifacts: GeneratedArtifacts) -> None:
        prefix = f"{layer}/iter{len(project.process.iterations)}"
        project.register_artifact(f"{prefix}/pim", pim)
        project.register_artifact(f"{prefix}/psm", psm)
        project.register_artifact(f"{prefix}/code", artifacts)
