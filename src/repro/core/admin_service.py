"""The administration and configuration layer.

"A web-based tool for administrators to manage users accounts, to
customize services configuration and to report some information on
platform usage and performance" (paper §3.1), plus the admin service's
authorities/roles/users/groups management and search (§3.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.subscription import BillingService
from repro.core.tenancy import TenantManager
from repro.errors import ServiceError
from repro.security import (
    AuthenticationManager,
    SecurityStore,
    SecuritySession,
)

#: The authorities the platform pre-installs.
DEFAULT_AUTHORITIES = (
    "PLATFORM_ADMIN", "TENANT_ADMIN", "DW_DESIGN",
    "ETL_MANAGE", "CUBE_QUERY", "REPORT_VIEW", "REPORT_EDIT",
)

#: Default roles with their authority bundles.
DEFAULT_ROLES = {
    "platform-admin": list(DEFAULT_AUTHORITIES),
    "tenant-admin": ["TENANT_ADMIN", "DW_DESIGN", "ETL_MANAGE",
                     "CUBE_QUERY", "REPORT_VIEW", "REPORT_EDIT"],
    "analyst": ["CUBE_QUERY", "REPORT_VIEW", "REPORT_EDIT"],
    "viewer": ["REPORT_VIEW"],
}


class AdminService:
    """Account management, configuration and usage reporting."""

    def __init__(self, tenants: TenantManager,
                 billing: BillingService):
        self.tenants = tenants
        self.billing = billing
        self.security = SecurityStore(tenants.platform_db)
        self.authentication = AuthenticationManager(self.security)
        self._config: Dict[str, Dict[str, Any]] = {}
        self._install_defaults()

    def _install_defaults(self) -> None:
        # Idempotent: a platform recovered from a data directory hands
        # this service a platform database that already holds the
        # defaults (they were WAL-committed before the crash).
        for authority in DEFAULT_AUTHORITIES:
            if not self.security.has_authority(authority):
                self.security.create_authority(authority)
        for role, authorities in DEFAULT_ROLES.items():
            if not self.security.has_role(role):
                self.security.create_role(role, authorities)

    # -- account management -----------------------------------------------------------

    def create_account(self, username: str, password: str,
                       tenant: Optional[str] = None,
                       roles: List[str] = ("viewer",),
                       groups: List[str] = ()) -> None:
        """Create a user account (tenant=None → platform operator)."""
        if tenant is not None:
            self.tenants.require_active(tenant)
        self.authentication.register_user(
            username, password, tenant=tenant,
            roles=list(roles), groups=list(groups))

    def login(self, username: str, password: str) -> SecuritySession:
        return self.authentication.authenticate(username, password)

    def search_accounts(self, pattern: str) -> List[str]:
        return [user.username
                for user in self.security.search_users(pattern)]

    def accounts_of_tenant(self, tenant_id: str) -> List[str]:
        return [user.username for user in self.security.list_users()
                if user.tenant == tenant_id]

    # -- service configuration -----------------------------------------------------------

    def configure(self, tenant_id: str, service: str,
                  **settings: Any) -> None:
        """Store per-tenant service configuration overrides."""
        self.tenants.require_active(tenant_id)
        bucket = self._config.setdefault(tenant_id, {})
        bucket.setdefault(service, {}).update(settings)

    def configuration(self, tenant_id: str,
                      service: str) -> Dict[str, Any]:
        return dict(self._config.get(tenant_id, {}).get(service, {}))

    # -- usage and performance reporting ---------------------------------------------------

    def usage_report(self, period: str = "current") -> Dict[str, Any]:
        """Platform-wide usage: per-tenant metered units + invoices."""
        per_tenant = self.billing.platform_usage(period)
        invoices = {}
        for tenant_id in self.tenants.tenant_ids():
            context = self.tenants.context(tenant_id)
            invoice = self.billing.invoice(
                tenant_id, context.plan, period)
            invoices[tenant_id] = invoice.total
        return {
            "period": period,
            "tenants": len(self.tenants),
            "usage": per_tenant,
            "invoice_totals": invoices,
        }

    def performance_report(self) -> Dict[str, Any]:
        """Engine-level statistics for the shared platform database."""
        database = self.tenants.platform_db
        return {
            "statements": database.statistics["statements"],
            "rows_returned": database.statistics["rows_returned"],
            "tables": len(database.table_names()),
            "active_sessions": self.authentication.active_sessions(),
        }
