"""AS — the analysis service.

"The analysis service allows definition of analysis data models (OLAP
data cube), data cube visualization and navigation" (paper §3.1).
Cubes are defined per tenant over the tenant's warehouse star schema;
queries run through the OLAP engine (with its aggregate cache) or
through MDX-lite, and navigation state is served per user session.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import lint_cube_schema
from repro.core.resources import TechnicalResourcesLayer
from repro.core.subscription import BillingService
from repro.core.tenancy import TenantManager
from repro.errors import ServiceError
from repro.olap import (
    CellSet,
    CubeNavigator,
    CubeSchema,
    OlapEngine,
    parse_mdx,
)


class AnalysisService:
    """Per-tenant cube registry and query execution."""

    def __init__(self, tenants: TenantManager,
                 resources: TechnicalResourcesLayer,
                 billing: Optional[BillingService] = None,
                 use_cache: bool = True,
                 config_provider=None):
        self.tenants = tenants
        self.resources = resources
        self.billing = billing
        self.use_cache = use_cache
        # Per-tenant overrides from the administration layer
        # ("customize services configuration", paper §3.1).
        self.config_provider = config_provider
        self._engines: Dict[Tuple[str, str], OlapEngine] = {}

    def _tenant_config(self, tenant_id: str) -> Dict[str, Any]:
        if self.config_provider is None:
            return {}
        return self.config_provider(tenant_id) or {}

    # -- cube management ---------------------------------------------------------------

    def define_cube(self, tenant_id: str,
                    definition: Dict[str, Any],
                    database: str = "warehouse",
                    validate: bool = True) -> CubeSchema:
        """Register a cube from a definition dict (e.g. MDA codegen).

        With ``validate`` on (the default) the cube is statically
        checked against the target database's catalog and rejected
        when its fact table, measure columns, dimension tables, keys
        or level columns do not resolve.
        """
        self.tenants.require_active(tenant_id)
        schema = CubeSchema.from_definition(definition) \
            if isinstance(definition, dict) else definition
        key = (tenant_id, schema.name)
        if key in self._engines:
            raise ServiceError(
                f"tenant {tenant_id!r} already has cube "
                f"{schema.name!r}")
        target = self.resources.database(tenant_id, database)
        if validate:
            collector = lint_cube_schema(schema, target.catalog,
                                         source=schema.name)
            if collector.has_errors():
                collector.raise_if_errors(
                    ServiceError,
                    prefix=f"cube {schema.name!r} rejected")
        config = self._tenant_config(tenant_id)
        use_cache = bool(config.get("use_cache", self.use_cache))
        self._engines[key] = OlapEngine(
            target, schema, use_cache=use_cache)
        self.resources.publish_event(
            tenant_id, "cube-defined", schema.name)
        return schema

    def cubes(self, tenant_id: str) -> List[str]:
        return sorted(name for (tenant, name) in self._engines
                      if tenant == tenant_id)

    def engine(self, tenant_id: str, cube: str) -> OlapEngine:
        engine = self._engines.get((tenant_id, cube))
        if engine is None:
            raise ServiceError(
                f"tenant {tenant_id!r} has no cube {cube!r}")
        return engine

    def invalidate_cube(self, tenant_id: str, cube: str) -> None:
        """Drop cached aggregates (call after warehouse loads)."""
        self.engine(tenant_id, cube).invalidate_cache()

    # -- querying ---------------------------------------------------------------------

    def query(self, tenant_id: str, cube: str,
              measures: List[str],
              axes: List[Tuple[str, str]] = (),
              slicers: List[Tuple[str, str, Any]] = ()) -> CellSet:
        engine = self.engine(tenant_id, cube)
        result = engine.query(measures, axes, slicers)
        if self.billing is not None:
            self.billing.meter(tenant_id, "query", 1)
        return result

    def execute_mdx(self, tenant_id: str, statement: str) -> CellSet:
        """Parse and run an MDX-lite statement against a tenant cube."""
        query = parse_mdx(statement)
        engine = self.engine(tenant_id, query.cube)
        result = query.execute(engine)
        if self.billing is not None:
            self.billing.meter(tenant_id, "query", 1)
        return result

    def navigator(self, tenant_id: str, cube: str,
                  measures: Optional[List[str]] = None) \
            -> CubeNavigator:
        """A fresh navigation session over a tenant cube."""
        return CubeNavigator(self.engine(tenant_id, cube), measures)

    def members(self, tenant_id: str, cube: str, dimension: str,
                level: str) -> List[Any]:
        return self.engine(tenant_id, cube).members(dimension, level)
