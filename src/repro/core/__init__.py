"""The ODBIS platform: on-demand business intelligence services.

This package is the paper's primary contribution — the five-layer SaaS
architecture of Fig. 1:

1. **technical resources** — per-tenant databases, the ESB, BI engines
   (:class:`~repro.core.platform.TechnicalResourcesLayer`),
2. **DW design and management** — the MDDWS environment
   (:mod:`repro.core.mddws`),
3. **administration and configuration** —
   :mod:`repro.core.admin_service` and :mod:`repro.core.subscription`,
4. **core business intelligence services** — MDS, IS, AS, RS and IDS
   (one module each),
5. **end-user access tools** — the web application wired by
   :class:`~repro.core.platform.OdbisPlatform`.

Multi-tenancy (:mod:`repro.core.tenancy`) and provisioning
(:mod:`repro.core.provisioning`) cut across all five layers.
"""

from repro.core.admin_service import AdminService
from repro.core.analysis_service import AnalysisService
from repro.core.delivery_service import Channel, InformationDeliveryService
from repro.core.gateway import DegradedResponse, RequestGateway
from repro.core.integration_service import IntegrationService
from repro.core.resilience import (
    Bulkhead,
    CircuitBreaker,
    Clock,
    Deadline,
    DegradedResult,
    FakeClock,
    FaultInjector,
    HealthReport,
    MonotonicClock,
    RetryPolicy,
    TenantHealth,
)
from repro.core.mddws import MddwsService
from repro.core.metadata_service import MetadataService
from repro.core.overload import (
    AIMDLimiter,
    AdmissionQueue,
    BrownoutController,
    LatencyTracker,
    OverloadController,
    RetryBudget,
    classify_request,
    hedged_call,
)
from repro.core.platform import OdbisPlatform, TechnicalResourcesLayer
from repro.core.provisioning import ARTIFACT_KINDS, ProvisioningService
from repro.core.reporting_service import ReportingService
from repro.core.sharding import (
    HashRing,
    ReadReplica,
    RouteHandle,
    Shard,
    ShardMap,
    content_checksum,
)
from repro.core.subscription import BillingService, Plan
from repro.core.supervision import Incident, ShardSupervisor
from repro.core.tenancy import TenancyMode, TenantContext, TenantManager

__all__ = [
    "AIMDLimiter",
    "ARTIFACT_KINDS",
    "AdminService",
    "AdmissionQueue",
    "AnalysisService",
    "BillingService",
    "BrownoutController",
    "Bulkhead",
    "Channel",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "DegradedResponse",
    "DegradedResult",
    "FakeClock",
    "FaultInjector",
    "HashRing",
    "HealthReport",
    "Incident",
    "InformationDeliveryService",
    "IntegrationService",
    "LatencyTracker",
    "MddwsService",
    "MetadataService",
    "MonotonicClock",
    "OdbisPlatform",
    "OverloadController",
    "Plan",
    "ProvisioningService",
    "ReadReplica",
    "ReportingService",
    "RequestGateway",
    "RetryBudget",
    "RetryPolicy",
    "RouteHandle",
    "Shard",
    "ShardMap",
    "ShardSupervisor",
    "TechnicalResourcesLayer",
    "TenancyMode",
    "TenantContext",
    "TenantHealth",
    "TenantManager",
    "classify_request",
    "content_checksum",
    "hedged_call",
]
