"""Tenant provisioning: on-boarding a customer across every layer."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis import (
    DiagnosticCollector,
    analyze_script,
    dataset_columns_from_sql,
    lint_cube_schema,
    lint_dashboard,
    lint_model,
    lint_rules,
)
from repro.core.admin_service import AdminService
from repro.core.metadata_service import MetadataService
from repro.core.resources import TechnicalResourcesLayer
from repro.core.subscription import BillingService
from repro.core.tenancy import TenantContext, TenantManager
from repro.errors import ProvisioningError

#: artifact kinds register_artifact() knows how to validate.
ARTIFACT_KINDS = ("sql", "rules", "model", "dashboard", "cube")


class ProvisioningService:
    """Creates everything a new tenant needs to start working."""

    def __init__(self, tenants: TenantManager,
                 resources: TechnicalResourcesLayer,
                 billing: BillingService,
                 admin: AdminService,
                 metadata: MetadataService,
                 validate_artifacts: bool = True):
        self.tenants = tenants
        self.resources = resources
        self.billing = billing
        self.admin = admin
        self.metadata = metadata
        #: platform-wide opt-out for static artifact validation.
        self.validate_artifacts = validate_artifacts
        self.provision_log: List[Dict[str, Any]] = []
        self.artifact_log: List[Dict[str, Any]] = []

    def provision(self, tenant_id: str, display_name: str,
                  plan: str = "starter",
                  admin_username: Optional[str] = None,
                  admin_password: str = "changeme",
                  exist_ok: bool = False) -> TenantContext:
        """On-board one tenant across all platform layers.

        Steps: validate the plan, register the tenancy, attach the
        warehouse database to the technical-resources layer, register
        the default data source, and create the tenant-admin account.

        ``exist_ok=True`` is the crash-recovery replay mode: the
        tenant's recovered databases may already hold the datasource
        row and the admin account (they were WAL-committed before the
        crash), so those steps are skipped instead of failing.
        """
        self.billing.plan(plan)  # unknown plan fails before any change
        context = self.tenants.register(tenant_id, display_name, plan)
        steps: List[str] = ["tenancy-registered"]

        self.resources.register_database(
            tenant_id, "warehouse", context.warehouse_db)
        steps.append("warehouse-attached")

        existing_sources = ()
        if exist_ok:
            existing_sources = [source["name"] for source in
                                self.metadata.datasources(tenant_id)]
        if "warehouse" not in existing_sources:
            self.metadata.create_datasource(
                tenant_id, "warehouse", "repro://warehouse")
            steps.append("default-datasource")

        username = admin_username or f"admin@{tenant_id}"
        if not (exist_ok and
                self.admin.security.find_user(username) is not None):
            self.admin.create_account(
                username, admin_password, tenant=tenant_id,
                roles=["tenant-admin"])
            steps.append("admin-account")

        self.resources.publish_event(tenant_id, "provisioned",
                                     display_name)
        self.provision_log.append({
            "tenant": tenant_id,
            "plan": plan,
            "steps": steps,
        })
        return context

    # -- artifact registration -------------------------------------------------

    def register_artifact(self, tenant_id: str, kind: str,
                          payload: Any, *,
                          name: Optional[str] = None,
                          database: str = "warehouse",
                          validate: Optional[bool] = None
                          ) -> DiagnosticCollector:
        """Statically validate and record one tenant artifact.

        ``kind`` is one of :data:`ARTIFACT_KINDS`; ``payload`` is the
        artifact itself (SQL/rule text, a model extent, a dashboard
        definition or a cube definition dict).  When validation is on
        (the default — pass ``validate=False`` or construct the service
        with ``validate_artifacts=False`` to opt out) any *error*-level
        diagnostic rejects the artifact with a
        :class:`~repro.errors.ProvisioningError`; warnings are returned
        to the caller in the collector either way.
        """
        self.tenants.require_active(tenant_id)
        if kind not in ARTIFACT_KINDS:
            raise ProvisioningError(
                f"unknown artifact kind {kind!r}; expected one of "
                f"{', '.join(ARTIFACT_KINDS)}")
        label = name or f"{kind}-artifact"
        collector = DiagnosticCollector(label)
        target = self.resources.database(tenant_id, database)

        if kind == "sql":
            analyze_script(payload, target.catalog, collector,
                           source=label, views=dict(target.views))
        elif kind == "rules":
            lint_rules(payload, collector, source=label)
        elif kind == "model":
            lint_model(payload, collector, source=label)
        elif kind == "dashboard":
            shapes = self._dataset_shapes(tenant_id)
            lint_dashboard(payload, shapes, collector, source=label)
        elif kind == "cube":
            lint_cube_schema(payload, target.catalog, collector,
                             source=label)

        should_validate = self.validate_artifacts \
            if validate is None else validate
        if should_validate and collector.has_errors():
            collector.raise_if_errors(
                ProvisioningError,
                prefix=f"artifact {label!r} rejected")
        self.artifact_log.append({
            "tenant": tenant_id,
            "kind": kind,
            "name": label,
            "errors": len(collector.errors),
            "warnings": len(collector.warnings),
        })
        self.resources.publish_event(tenant_id, "artifact-registered",
                                     f"{kind}:{label}")
        return collector

    def _dataset_shapes(self, tenant_id: str) -> Dict[str, Any]:
        """Output columns of every data set the tenant has defined."""
        shapes: Dict[str, Any] = {}
        for record in self.metadata.datasets(tenant_id):
            target = self.metadata.resolve_datasource(
                tenant_id, record["datasource"])
            shapes.update(dataset_columns_from_sql(
                {record["name"]: record["sql"]},
                target.catalog, target.views))
        return shapes

    def deprovision(self, tenant_id: str) -> None:
        """Deactivate a tenant (data retained, access revoked)."""
        context = self.tenants.context(tenant_id)
        if not context.active:
            raise ProvisioningError(
                f"tenant {tenant_id!r} is already deactivated")
        self.tenants.deactivate(tenant_id)
        self.resources.publish_event(tenant_id, "deprovisioned")
