"""Tenant provisioning: on-boarding a customer across every layer."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.admin_service import AdminService
from repro.core.metadata_service import MetadataService
from repro.core.resources import TechnicalResourcesLayer
from repro.core.subscription import BillingService
from repro.core.tenancy import TenantContext, TenantManager
from repro.errors import ProvisioningError


class ProvisioningService:
    """Creates everything a new tenant needs to start working."""

    def __init__(self, tenants: TenantManager,
                 resources: TechnicalResourcesLayer,
                 billing: BillingService,
                 admin: AdminService,
                 metadata: MetadataService):
        self.tenants = tenants
        self.resources = resources
        self.billing = billing
        self.admin = admin
        self.metadata = metadata
        self.provision_log: List[Dict[str, Any]] = []

    def provision(self, tenant_id: str, display_name: str,
                  plan: str = "starter",
                  admin_username: Optional[str] = None,
                  admin_password: str = "changeme") -> TenantContext:
        """On-board one tenant across all platform layers.

        Steps: validate the plan, register the tenancy, attach the
        warehouse database to the technical-resources layer, register
        the default data source, and create the tenant-admin account.
        """
        self.billing.plan(plan)  # unknown plan fails before any change
        context = self.tenants.register(tenant_id, display_name, plan)
        steps: List[str] = ["tenancy-registered"]

        self.resources.register_database(
            tenant_id, "warehouse", context.warehouse_db)
        steps.append("warehouse-attached")

        self.metadata.create_datasource(
            tenant_id, "warehouse", "repro://warehouse")
        steps.append("default-datasource")

        username = admin_username or f"admin@{tenant_id}"
        self.admin.create_account(
            username, admin_password, tenant=tenant_id,
            roles=["tenant-admin"])
        steps.append("admin-account")

        self.resources.publish_event(tenant_id, "provisioned",
                                     display_name)
        self.provision_log.append({
            "tenant": tenant_id,
            "plan": plan,
            "steps": steps,
        })
        return context

    def deprovision(self, tenant_id: str) -> None:
        """Deactivate a tenant (data retained, access revoked)."""
        context = self.tenants.context(tenant_id)
        if not context.active:
            raise ProvisioningError(
                f"tenant {tenant_id!r} is already deactivated")
        self.tenants.deactivate(tenant_id)
        self.resources.publish_event(tenant_id, "deprovisioned")
