"""Tenant sharding: consistent-hash placement + WAL-shipped replicas.

The paper's economics ("one database is used to store all customers'
data") cap out at one engine instance; the ROADMAP's millions-of-users
north star needs horizontal capacity.  This module shards the shared
operational store across N engine instances and gives each shard
WAL-shipped read replicas:

* :class:`HashRing` — consistent hashing with virtual nodes, so adding
  or removing a shard moves only ~1/N of the tenants (bounded
  reshuffle) instead of rehashing the world;
* :class:`ReadReplica` — a follower that tails its primary's
  write-ahead log, applies every *committed* transaction to a local
  MVCC engine via :meth:`~repro.engine.database.Database.apply_committed`,
  and falls back to a snapshot resync when the primary has
  checkpointed past it.  ``replica_lag`` is measured in MVCC commit
  numbers — the same clock the WAL stamps — so "how stale is this
  read" has an exact, testable answer;
* :class:`Shard` — one primary engine plus its replicas, with failover
  that fences the old primary (closing its log turns a straggler
  commit into a typed :class:`~repro.errors.WalError`), trips its
  circuit breaker, and promotes the most caught-up replica onto the
  log's committed prefix — exactly the prefix crash recovery would
  keep;
* :class:`ShardMap` — the tenant-facing façade: ``place`` a tenant,
  ``primary_for`` writes, ``route_read`` to a replica when a staleness
  budget allows, ``failover`` a shard, ``add_shard``/``remove_shard``
  to rescale.

Replication is pull-based and synchronous-on-demand: a replica applies
frames when polled, so tests and benchmarks control exactly how far it
lags.  The contract for what a replica may serve is DESIGN.md §6.
"""

from __future__ import annotations

import bisect
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.resilience import CircuitBreaker, Clock, MonotonicClock
from repro.engine.database import Database
from repro.engine.wal import WriteAheadLog, committed_prefix
from repro.errors import ShardError

#: Virtual nodes per shard on the hash ring.  More vnodes smooth the
#: tenant distribution; 64 keeps the worst shard within ~2x of the
#: mean for realistic tenant counts.
DEFAULT_VNODES = 64

#: Read replicas created per shard.
DEFAULT_REPLICAS = 1

#: Commit numbers a replica may trail the primary by and still serve
#: a routed read.  0 = only a fully caught-up replica.
DEFAULT_STALENESS_BUDGET = 0


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node owns ``vnodes`` points on a 32-bit ring (CRC32, the same
    hash the WAL frames use); a key belongs to the owner of the first
    point at or after its own hash.  The ring is rebuilt from the full
    node set on every membership change, so point ownership is a pure
    function of the membership — placement never depends on the order
    shards were added or removed in.

    Not thread-safe on its own: :class:`ShardMap` serializes access.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ShardError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}

    @staticmethod
    def _hash(key: str) -> int:
        return zlib.crc32(key.encode("utf-8"))

    def _rebuild(self) -> None:
        self._points = []
        self._owners = {}
        # Sorted iteration + first-wins makes collisions (different
        # nodes hashing onto one point) deterministic.
        for node in sorted(self._nodes):
            for index in range(self.vnodes):
                point = self._hash(f"{node}#{index}")
                if point not in self._owners:
                    self._owners[point] = node
        self._points = sorted(self._owners)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ShardError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        self._rebuild()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ShardError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._rebuild()

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def node_for(self, key: str) -> str:
        if not self._points:
            raise ShardError("the hash ring has no nodes")
        index = bisect.bisect_right(self._points, self._hash(key))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[self._points[index]]

    def __len__(self) -> int:
        return len(self._nodes)


class ReadReplica:
    """A follower database fed by its primary's write-ahead log.

    ``poll`` reads the log file's committed prefix and applies every
    transaction numbered past what the replica already holds.  When
    the primary has checkpointed (snapshot + log reset) past the
    replica's position, the needed transactions are gone from the log
    — the replica reloads the primary's snapshot instead (cheap
    detection via the snapshot file's stat signature) and continues
    tailing from there.  Dangling ops and torn tails are invisible by
    construction: only committed transactions ship.
    """

    def __init__(self, shard_id: str, replica_id: str,
                 wal_path: Union[str, Path],
                 snapshot_path: Union[str, Path]):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.wal_path = Path(wal_path)
        self.snapshot_path = Path(snapshot_path)
        self.database = Database(replica_id)
        self.polls = 0
        self.resyncs = 0
        self._snapshot_signature: Optional[Tuple[int, int]] = None

    def __repr__(self) -> str:
        return (f"<ReadReplica {self.replica_id!r} "
                f"applied_cn={self.applied_cn}>")

    @property
    def applied_cn(self) -> int:
        """Highest primary commit number applied locally."""
        return self.database.committed_cn

    def _snapshot_stat(self) -> Optional[Tuple[int, int]]:
        try:
            stat = self.snapshot_path.stat()
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _resync_from_snapshot(self) -> None:
        signature = self._snapshot_stat()
        if signature is None:
            raise ShardError(
                f"replica {self.replica_id!r} has a replication gap "
                f"and {str(self.snapshot_path)!r} does not exist to "
                f"resync from")
        loaded = Database.load(self.snapshot_path)
        loaded.name = self.replica_id
        # A checkpoint can land while the replica is already current;
        # only swap engines when the snapshot is genuinely ahead.
        if loaded.committed_cn > self.applied_cn:
            self.database = loaded
            self.resyncs += 1
        self._snapshot_signature = signature

    def poll(self) -> int:
        """Ship newly committed primary transactions; returns count."""
        self.polls += 1
        transactions, _, _, _ = committed_prefix(self.wal_path)
        fresh = [(number, ops) for number, ops in transactions
                 if number > self.applied_cn]
        gap = fresh and fresh[0][0] != self.applied_cn + 1
        behind_snapshot = (not fresh
                           and self._snapshot_stat() is not None
                           and self._snapshot_stat()
                           != self._snapshot_signature)
        if gap or behind_snapshot:
            self._resync_from_snapshot()
            fresh = [(number, ops) for number, ops in transactions
                     if number > self.applied_cn]
        return self.database.apply_committed(fresh)


class Shard:
    """One engine instance of the shard map: primary + replicas.

    The primary is built with
    :meth:`~repro.engine.database.Database.recover`, so constructing a
    shard over an existing directory IS crash recovery.  Every replica
    tails the primary's log file directly — there is no second copy of
    the log to diverge from the one the primary fsyncs.
    """

    def __init__(self, shard_id: str, directory: Union[str, Path],
                 replicas: int = DEFAULT_REPLICAS,
                 fsync: str = "always",
                 clock: Optional[Clock] = None,
                 faults=None):
        self.shard_id = shard_id
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._clock = clock or MonotonicClock()
        self._faults = faults
        self.generation = 0
        self.primary = Database.recover(
            self.directory, shard_id, fsync=fsync, faults=faults)
        self.breaker = self._new_breaker()
        self.fenced_breaker: Optional[CircuitBreaker] = None
        self.replicas: List[ReadReplica] = [
            ReadReplica(shard_id, f"{shard_id}-replica-{index}",
                        self.wal_path, self.snapshot_path)
            for index in range(replicas)
        ]

    def __repr__(self) -> str:
        return (f"<Shard {self.shard_id!r} gen={self.generation} "
                f"replicas={len(self.replicas)}>")

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=1, clock=self._clock,
            name=f"shard:{self.shard_id}:gen{self.generation}")

    @property
    def wal_path(self) -> Path:
        return self.directory / f"{self.shard_id}.wal"

    @property
    def snapshot_path(self) -> Path:
        return self.directory / f"{self.shard_id}.snapshot"

    def poll_replicas(self) -> Dict[str, int]:
        """Ship pending commits to every replica; returns lag map."""
        for replica in self.replicas:
            replica.poll()
        return self.replica_lag()

    def replica_lag(self) -> Dict[str, int]:
        """Commit numbers each replica trails the primary by."""
        primary_cn = self.primary.committed_cn
        return {replica.replica_id:
                max(0, primary_cn - replica.applied_cn)
                for replica in self.replicas}

    def best_replica(self, staleness_budget: int) \
            -> Optional[ReadReplica]:
        """The freshest replica within budget, or None."""
        primary_cn = self.primary.committed_cn
        best: Optional[Tuple[int, ReadReplica]] = None
        for replica in self.replicas:
            lag = max(0, primary_cn - replica.applied_cn)
            if lag <= staleness_budget and \
                    (best is None or lag < best[0]):
                best = (lag, replica)
        return None if best is None else best[1]

    def failover(self) -> str:
        """Fence the primary and promote the most caught-up replica.

        The sequence is the correctness argument:

        1. *Fence*: close the old primary's log.  A straggler writer
           still holding the old primary gets a typed ``WalError``
           instead of a commit the promoted side would never see.
        2. *Trip*: the shard's breaker opens (threshold 1), so the
           resilience layer reports the old primary as down.
        3. *Catch up*: every replica polls the fenced log one last
           time — the committed prefix is complete and final now.
        4. *Promote*: the replica with the highest applied commit
           number takes over.  The log is truncated to its committed
           prefix (dropping dangling ops and any torn tail, exactly
           as crash recovery would) and reopened as the promoted
           engine's live WAL, numbering onward from the commit number
           the replica actually holds.

        Returns the promoted replica's id.
        """
        if not self.replicas:
            raise ShardError(
                f"shard {self.shard_id!r} has no replica to promote")
        # Close the log but leave it *attached*: detaching (what
        # Database.close does) would let a straggler commit succeed
        # silently in memory — attached-but-closed makes it raise.
        if self.primary.wal is not None:
            self.primary.wal.close()
        self.breaker.record_failure()
        self.fenced_breaker = self.breaker
        for replica in self.replicas:
            replica.poll()
        promoted = max(self.replicas,
                       key=lambda replica: replica.applied_cn)
        self.replicas.remove(promoted)
        _, committed_length, _, _ = committed_prefix(self.wal_path)
        if self.wal_path.exists() and \
                self.wal_path.stat().st_size > committed_length:
            with open(self.wal_path, "r+b") as handle:
                handle.truncate(committed_length)
        wal = WriteAheadLog(self.wal_path, fsync=self.fsync,
                            faults=self._faults)
        wal.last_number = max(wal.last_number,
                              promoted.database.committed_cn)
        promoted.database.attach_wal(wal, self.snapshot_path)
        self.primary = promoted.database
        self.generation += 1
        self.breaker = self._new_breaker()
        return promoted.replica_id

    def health(self) -> Dict[str, Any]:
        return {
            "primary": self.primary.name,
            "generation": self.generation,
            "breaker": self.breaker.state,
            "fenced_breaker": (None if self.fenced_breaker is None
                               else self.fenced_breaker.state),
            "committed_cn": self.primary.committed_cn,
            "replica_lag": self.replica_lag(),
        }

    def close(self) -> None:
        self.primary.close()


class ShardMap:
    """Consistent-hash placement of tenants across engine shards.

    All membership and routing state is guarded by one lock; shard
    operations (polling, failover) run under it too, so a routed read
    can never observe a shard halfway through a promotion.  The
    databases themselves do their own locking — holding the map lock
    while a routed statement *executes* is neither needed nor done.
    """

    def __init__(self, directory: Union[str, Path],
                 shards: int = 1,
                 replicas: int = DEFAULT_REPLICAS,
                 vnodes: int = DEFAULT_VNODES,
                 fsync: str = "always",
                 clock: Optional[Clock] = None,
                 faults=None,
                 staleness_budget: int = DEFAULT_STALENESS_BUDGET):
        if shards < 1:
            raise ShardError("a shard map needs at least one shard")
        if staleness_budget < 0:
            raise ShardError("staleness_budget must be >= 0")
        self.directory = Path(directory)
        self.replicas_per_shard = replicas
        self.fsync = fsync
        self.staleness_budget = staleness_budget
        self._clock = clock or MonotonicClock()
        self._faults = faults
        self._ring = HashRing(vnodes)  # guarded-by: _lock
        self._shards: Dict[str, Shard] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        for index in range(shards):
            self.add_shard(f"shard-{index}")

    # -- membership -------------------------------------------------------------

    def add_shard(self, shard_id: str) -> Shard:
        """Bring up a new shard (recovering its directory if present)
        and claim its ring points.  Only ~1/N of tenants move to it."""
        with self._lock:
            if shard_id in self._shards:
                raise ShardError(
                    f"shard {shard_id!r} already exists")
            shard = Shard(shard_id, self.directory / shard_id,
                          replicas=self.replicas_per_shard,
                          fsync=self.fsync, clock=self._clock,
                          faults=self._faults)
            self._shards[shard_id] = shard
            self._ring.add_node(shard_id)
            return shard

    def remove_shard(self, shard_id: str) -> List[str]:
        """Retire a shard; its tenants re-place onto the survivors.

        Returns the surviving shard ids.  Data migration is the
        caller's concern — the shard's directory stays on disk, so
        re-adding the same id recovers it.
        """
        with self._lock:
            shard = self._shards.pop(shard_id, None)
            if shard is None:
                raise ShardError(f"unknown shard {shard_id!r}")
            self._ring.remove_node(shard_id)
            shard.close()
            return sorted(self._shards)

    def shard_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._shards)

    def all_shards(self) -> List[Shard]:
        with self._lock:
            return [self._shards[shard_id]
                    for shard_id in sorted(self._shards)]

    def shard(self, shard_id: str) -> Shard:
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                raise ShardError(f"unknown shard {shard_id!r}")
            return shard

    # -- placement and routing --------------------------------------------------

    def place(self, tenant_id: str) -> str:
        """The shard id the tenant's operational data lives on."""
        with self._lock:
            return self._ring.node_for(tenant_id)

    def shard_for(self, tenant_id: str) -> Shard:
        with self._lock:
            return self._shards[self._ring.node_for(tenant_id)]

    def primary_for(self, tenant_id: str) -> Database:
        """The write target for a tenant (its shard's primary)."""
        return self.shard_for(tenant_id).primary

    def route_read(self, tenant_id: str,
                   max_staleness: Optional[int] = None) \
            -> Tuple[Database, Dict[str, Any]]:
        """Pick the engine a read-only statement should run on.

        Ships pending commits to the tenant's shard replicas first,
        then serves from the freshest replica whose lag fits the
        budget; when none qualifies the primary serves (never a
        wrong-er answer, just no offload).  Returns the database and
        a routing record: shard id, who served, and the lag in commit
        numbers the caller accepted.
        """
        budget = (self.staleness_budget if max_staleness is None
                  else max_staleness)
        if budget < 0:
            raise ShardError("max_staleness must be >= 0")
        with self._lock:
            shard_id = self._ring.node_for(tenant_id)
            shard = self._shards[shard_id]
            shard.poll_replicas()
            replica = shard.best_replica(budget)
            if replica is not None:
                lag = max(0, shard.primary.committed_cn
                          - replica.applied_cn)
                return replica.database, {
                    "shard": shard_id,
                    "served_by": replica.replica_id,
                    "replica_lag": lag,
                }
            return shard.primary, {
                "shard": shard_id,
                "served_by": "primary",
                "replica_lag": 0,
            }

    # -- failover and observability ---------------------------------------------

    def failover(self, shard_id: str) -> str:
        """Fence the shard's primary and promote a replica.

        Returns the promoted replica's id; the caller re-points
        whatever held the old primary (the platform re-points tenant
        contexts).
        """
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                raise ShardError(f"unknown shard {shard_id!r}")
            return shard.failover()

    def poll(self) -> Dict[str, Dict[str, int]]:
        """Ship pending commits everywhere; lag map per shard."""
        with self._lock:
            return {shard_id: shard.poll_replicas()
                    for shard_id, shard
                    in sorted(self._shards.items())}

    def health(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {shard_id: shard.health()
                    for shard_id, shard
                    in sorted(self._shards.items())}

    def close(self) -> None:
        with self._lock:
            for shard in self._shards.values():
                shard.close()
