"""Tenant sharding: consistent-hash placement + WAL-shipped replicas.

The paper's economics ("one database is used to store all customers'
data") cap out at one engine instance; the ROADMAP's millions-of-users
north star needs horizontal capacity.  This module shards the shared
operational store across N engine instances and gives each shard
WAL-shipped read replicas:

* :class:`HashRing` — consistent hashing with virtual nodes, so adding
  or removing a shard moves only ~1/N of the tenants (bounded
  reshuffle) instead of rehashing the world;
* :class:`ReadReplica` — a follower that tails its primary's
  write-ahead log, applies every *committed* transaction to a local
  MVCC engine via :meth:`~repro.engine.database.Database.apply_committed`,
  and falls back to a snapshot resync when the primary has
  checkpointed past it.  ``replica_lag`` is measured in MVCC commit
  numbers — the same clock the WAL stamps — so "how stale is this
  read" has an exact, testable answer.  A replica the anti-entropy
  auditor caught diverging is *quarantined*: it serves no routed read
  until a forced snapshot resync heals it;
* :class:`Shard` — one primary engine plus its replicas, with failover
  that fences the old primary (closing its log turns a straggler
  commit into a typed :class:`~repro.errors.WalError`), trips its
  circuit breaker, and promotes the most caught-up healthy replica
  onto the log's committed prefix — exactly the prefix crash recovery
  would keep.  Every promotion bumps the shard ``generation`` (its
  *epoch*); routed dispatches carry the epoch they were resolved at
  and are re-checked at execute time, so a straggler racing the
  promotion window gets a typed, retryable
  :class:`~repro.errors.StaleEpochError` instead of an incidental
  log-level failure;
* :class:`ShardMap` — the tenant-facing façade: ``place`` a tenant,
  ``primary_for`` writes, ``route_read`` to a replica when a staleness
  budget allows, ``read_handle``/``write_handle`` +
  ``dispatch_read``/``dispatch_write`` for epoch-fenced serving,
  ``failover`` a shard, ``add_shard``/``remove_shard`` to rescale.

Replication is pull-based and synchronous-on-demand: a replica applies
frames when polled, so tests and benchmarks control exactly how far it
lags.  The map's ``_lock`` guards only membership (ring + shard
registry); each shard and each replica has its own lock, and WAL disk
I/O (``poll``) always runs *outside* any of them — one shard's slow
disk can never stall routing for the rest of the fleet.  The contract
for what a replica may serve is DESIGN.md §6; the supervision layer on
top (failure detection, auto-failover, anti-entropy audit) is §7.
"""

from __future__ import annotations

import bisect
import pickle
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.resilience import CircuitBreaker, Clock, MonotonicClock
from repro.engine.database import Database
from repro.engine.wal import WriteAheadLog, committed_prefix
from repro.errors import InjectedFault, ShardError, StaleEpochError, WalError

#: Virtual nodes per shard on the hash ring.  More vnodes smooth the
#: tenant distribution; 64 keeps the worst shard within ~2x of the
#: mean for realistic tenant counts.
DEFAULT_VNODES = 64

#: Read replicas created per shard.
DEFAULT_REPLICAS = 1

#: Commit numbers a replica may trail the primary by and still serve
#: a routed read.  0 = only a fully caught-up replica.
DEFAULT_STALENESS_BUDGET = 0


def content_checksum(database: Database) -> int:
    """Order-independent digest of a database's committed content.

    Built on :meth:`~repro.engine.database.Database.state_fingerprint`
    (rows, rowid watermarks, indexes, views — not the engine name), so
    a primary and its replica agree exactly when their durable state
    does.  The anti-entropy auditor compares these at a common commit
    number; a mismatch there is silent divergence by definition.
    """
    return zlib.crc32(pickle.dumps(database.state_fingerprint()))


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node owns ``vnodes`` points on a 32-bit ring (CRC32, the same
    hash the WAL frames use); a key belongs to the owner of the first
    point at or after its own hash.  The ring is rebuilt from the full
    node set on every membership change, so point ownership is a pure
    function of the membership — placement never depends on the order
    shards were added or removed in.

    Not thread-safe on its own: :class:`ShardMap` serializes access.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ShardError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}

    @staticmethod
    def _hash(key: str) -> int:
        return zlib.crc32(key.encode("utf-8"))

    def _rebuild(self) -> None:
        self._points = []
        self._owners = {}
        # Sorted iteration + first-wins makes collisions (different
        # nodes hashing onto one point) deterministic.
        for node in sorted(self._nodes):
            for index in range(self.vnodes):
                point = self._hash(f"{node}#{index}")
                if point not in self._owners:
                    self._owners[point] = node
        self._points = sorted(self._owners)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ShardError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        self._rebuild()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ShardError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._rebuild()

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def node_for(self, key: str) -> str:
        if not self._points:
            raise ShardError("the hash ring has no nodes")
        index = bisect.bisect_right(self._points, self._hash(key))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[self._points[index]]

    def __len__(self) -> int:
        return len(self._nodes)


@dataclass
class RouteHandle:
    """One resolved dispatch target, pinned to a shard epoch.

    The handle is the *fence token*: ``generation`` is the shard epoch
    the route was resolved at, and every
    :meth:`ShardMap.dispatch_read` / :meth:`ShardMap.dispatch_write`
    re-checks it, so a handle that outlives a promotion fails with a
    typed, retryable :class:`~repro.errors.StaleEpochError` instead of
    executing against a fenced engine.
    """

    shard: str
    generation: int
    database: Database
    served_by: str = "primary"
    replica_lag: int = 0

    @property
    def route(self) -> Dict[str, Any]:
        """The routing record returned alongside a served read."""
        return {
            "shard": self.shard,
            "generation": self.generation,
            "served_by": self.served_by,
            "replica_lag": self.replica_lag,
        }


class ReadReplica:
    """A follower database fed by its primary's write-ahead log.

    ``poll`` reads the log file's committed prefix and applies every
    transaction numbered past what the replica already holds.  When
    the primary has checkpointed (snapshot + log reset) past the
    replica's position, the needed transactions are gone from the log
    — the replica reloads the primary's snapshot instead (cheap
    detection via the snapshot file's stat signature) and continues
    tailing from there.  Dangling ops and torn tails are invisible by
    construction: only committed transactions ship.

    Two :class:`~repro.core.resilience.FaultInjector` sites model the
    infrastructure failures the supervision battery injects, both
    scoped per replica:

    * ``replica.partition.<replica_id>`` — the poll raises
      :class:`~repro.errors.InjectedFault` (the replica is
      unreachable; callers treat it as a failed shipment);
    * ``replica.divergence.<replica_id>`` — the poll *succeeds* but
      silently corrupts one applied row in place, leaving every commit
      number intact.  Only a content checksum (the anti-entropy
      auditor) can see it — exactly the bit-rot shape the quarantine
      machinery exists for.
    """

    def __init__(self, shard_id: str, replica_id: str,
                 wal_path: Union[str, Path],
                 snapshot_path: Union[str, Path],
                 faults=None):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.wal_path = Path(wal_path)
        self.snapshot_path = Path(snapshot_path)
        self._faults = faults
        self._lock = threading.Lock()
        self.database = Database(replica_id)  # guarded-by: _lock
        self.polls = 0  # guarded-by: _lock
        self.resyncs = 0  # guarded-by: _lock
        self.quarantined: Optional[Dict[str, Any]] = None  # guarded-by: _lock
        self.closed = False  # guarded-by: _lock
        self._snapshot_signature: Optional[Tuple[int, int]] \
            = None  # guarded-by: _lock

    def __repr__(self) -> str:
        return (f"<ReadReplica {self.replica_id!r} "
                f"applied_cn={self.applied_cn}>")

    @property
    def applied_cn(self) -> int:
        """Highest primary commit number applied locally."""
        return self.database.committed_cn

    def _snapshot_stat(self) -> Optional[Tuple[int, int]]:
        try:
            stat = self.snapshot_path.stat()
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _resync_from_snapshot(self, force: bool = False) -> None:  # requires: _lock
        signature = self._snapshot_stat()
        if signature is None:
            raise ShardError(
                f"replica {self.replica_id!r} has a replication gap "
                f"and {str(self.snapshot_path)!r} does not exist to "
                f"resync from")
        loaded = Database.load(self.snapshot_path)
        loaded.name = self.replica_id
        # A checkpoint can land while the replica is already current;
        # only swap engines when the snapshot is genuinely ahead —
        # unless the caller *forces* the swap (quarantine healing must
        # discard diverged state even at an equal commit number).
        if force or loaded.committed_cn > self.applied_cn:
            retired = self.database
            self.database = loaded
            self.resyncs += 1
            retired.close()
        self._snapshot_signature = signature

    def resync(self, force: bool = False) -> None:  # blocking: loads the primary's snapshot from disk
        """Reload from the primary's snapshot (``force`` discards the
        local engine even when commit numbers say it is current)."""
        with self._lock:
            self._resync_from_snapshot(force=force)

    def poll(self) -> int:  # blocking: tails the primary's on-disk WAL
        """Ship newly committed primary transactions; returns count."""
        with self._lock:
            return self._poll_locked()

    def _poll_locked(self) -> int:  # requires: _lock
        self.polls += 1
        if self._faults is not None:
            self._faults.fire(f"replica.partition.{self.replica_id}")
        transactions, _, _, _ = committed_prefix(self.wal_path)
        fresh = [(number, ops) for number, ops in transactions
                 if number > self.applied_cn]
        gap = fresh and fresh[0][0] != self.applied_cn + 1
        behind_snapshot = False
        if not fresh:
            # Stat once: two stats here is a TOCTOU — a checkpoint
            # landing between them makes the comparison incoherent.
            signature = self._snapshot_stat()
            behind_snapshot = (signature is not None
                               and signature != self._snapshot_signature)
        if gap or behind_snapshot:
            self._resync_from_snapshot()
            fresh = [(number, ops) for number, ops in transactions
                     if number > self.applied_cn]
        applied = self.database.apply_committed(fresh)
        if self._faults is not None:
            try:
                self._faults.fire(
                    f"replica.divergence.{self.replica_id}")
            except InjectedFault:
                self._corrupt_silently()
        return applied

    def _corrupt_silently(self) -> None:  # requires: _lock
        """Flip one applied row in place without touching any commit
        number — the silent-divergence shape only a content checksum
        (the anti-entropy audit) can detect."""
        for name in sorted(self.database.table_names()):
            storage = self.database.storage(name)
            for rowid in sorted(storage.rows):
                row = storage.rows[rowid]
                if row:
                    row[-1] = "\x00bitrot"
                    return

    def quarantine(self, reason: str, at: float) -> None:
        """Pull the replica out of routing until it is healed."""
        with self._lock:
            if self.quarantined is None:
                self.quarantined = {"reason": reason, "since": at}

    def release_quarantine(self) -> None:
        with self._lock:
            self.quarantined = None

    def close(self) -> None:
        """Release the follower engine (idempotent)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            database = self.database
        database.close()


class Shard:
    """One engine instance of the shard map: primary + replicas.

    The primary is built with
    :meth:`~repro.engine.database.Database.recover`, so constructing a
    shard over an existing directory IS crash recovery.  Every replica
    tails the primary's log file directly — there is no second copy of
    the log to diverge from the one the primary fsyncs.

    ``generation`` is the shard's *epoch*: it advances exactly once
    per promotion, never backwards.  Routing resolves handles at an
    epoch; :meth:`check_epoch` is the fence every dispatch runs
    through.  ``_lock`` (reentrant) guards the mutable identity of the
    shard — who is primary, which replicas exist, what epoch we are
    in — and is never held across disk I/O: polls, log truncation and
    WAL reopening all happen between lock sections, with the
    ``_promoting`` flag fencing routing for the duration.
    """

    def __init__(self, shard_id: str, directory: Union[str, Path],
                 replicas: int = DEFAULT_REPLICAS,
                 fsync: str = "always",
                 clock: Optional[Clock] = None,
                 faults=None):
        self.shard_id = shard_id
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._clock = clock or MonotonicClock()
        self._faults = faults
        self._lock = threading.RLock()
        self.generation = 0  # guarded-by: _lock
        self.primary = Database.recover(
            self.directory, shard_id, fsync=fsync,
            faults=faults)  # guarded-by: _lock
        self.breaker = self._new_breaker()  # guarded-by: _lock
        self.fenced_breaker: Optional[CircuitBreaker] \
            = None  # guarded-by: _lock
        self.replicas: List[ReadReplica] = [
            ReadReplica(shard_id, f"{shard_id}-replica-{index}",
                        self.wal_path, self.snapshot_path,
                        faults=faults)
            for index in range(replicas)
        ]  # guarded-by: _lock
        self._retired: List[Database] = []  # guarded-by: _lock
        self._promoting = False  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def __repr__(self) -> str:
        return (f"<Shard {self.shard_id!r} gen={self.generation} "
                f"replicas={len(self.replicas)}>")

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=1, clock=self._clock,
            name=f"shard:{self.shard_id}:gen{self.generation}")

    @property
    def wal_path(self) -> Path:
        return self.directory / f"{self.shard_id}.wal"

    @property
    def snapshot_path(self) -> Path:
        return self.directory / f"{self.shard_id}.snapshot"

    # -- epoch fencing ------------------------------------------------------------

    def check_epoch(self, generation: int) -> None:
        """The dispatch-time fence: raise when ``generation`` is no
        longer the shard's current epoch (or a promotion is mid-
        flight, in which case *no* epoch is safe to execute under)."""
        with self._lock:
            current = self.generation
            promoting = self._promoting
        if promoting:
            raise StaleEpochError(self.shard_id, generation, current,
                                  "a promotion is in flight")
        if generation != current:
            raise StaleEpochError(self.shard_id, generation, current,
                                  "the primary changed")

    def write_handle(self) -> RouteHandle:
        """The epoch-pinned write target (always the primary)."""
        with self._lock:
            if self._promoting:
                raise StaleEpochError(
                    self.shard_id, self.generation, self.generation,
                    "a promotion is in flight")
            return RouteHandle(self.shard_id, self.generation,
                               self.primary)

    def read_handle(self, staleness_budget: int) -> RouteHandle:
        """The epoch-pinned read target: freshest healthy replica
        within budget, else the primary (never a wrong-er answer,
        just no offload)."""
        with self._lock:
            if self._promoting:
                raise StaleEpochError(
                    self.shard_id, self.generation, self.generation,
                    "a promotion is in flight")
            generation = self.generation
            primary = self.primary
            replicas = list(self.replicas)
        primary_cn = primary.committed_cn
        best: Optional[Tuple[int, ReadReplica]] = None
        for replica in replicas:
            if replica.quarantined is not None:
                continue
            lag = max(0, primary_cn - replica.applied_cn)
            if lag <= staleness_budget and \
                    (best is None or lag < best[0]):
                best = (lag, replica)
        if best is not None:
            return RouteHandle(self.shard_id, generation,
                               best[1].database, best[1].replica_id,
                               best[0])
        return RouteHandle(self.shard_id, generation, primary)

    # -- liveness and replication -------------------------------------------------

    def probe(self) -> Dict[str, Any]:
        """A cheap liveness probe of the primary (no write, no disk).

        Raises :class:`~repro.errors.ShardError` when the primary
        cannot accept commits — fenced (attached-but-closed log),
        detached, or mid-promotion.  The supervisor counts a raise or
        a deadline miss as one detector miss.
        """
        with self._lock:
            primary = self.primary
            promoting = self._promoting
            generation = self.generation
        if promoting:
            raise ShardError(
                f"shard {self.shard_id!r} is mid-promotion")
        wal = primary.wal
        if wal is None or wal.closed:
            raise ShardError(
                f"shard {self.shard_id!r} primary {primary.name!r} "
                f"has no live write-ahead log")
        return {"generation": generation,
                "committed_cn": primary.committed_cn}

    def poll_replicas(self) -> Dict[str, int]:  # blocking: ships WAL frames to replicas (disk reads)
        """Ship pending commits to every replica; returns lag map.

        Partitioned replicas (injected faults) are skipped, not
        escalated — an unreachable follower just stays behind."""
        with self._lock:
            replicas = list(self.replicas)
        for replica in replicas:
            self._safe_poll(replica)
        return self.replica_lag()

    @staticmethod
    def _safe_poll(replica: ReadReplica) -> bool:
        try:
            replica.poll()
            return True
        except InjectedFault:
            return False

    def replica_lag(self) -> Dict[str, int]:
        """Commit numbers each replica trails the primary by."""
        with self._lock:
            primary_cn = self.primary.committed_cn
            replicas = list(self.replicas)
        return {replica.replica_id:
                max(0, primary_cn - replica.applied_cn)
                for replica in replicas}

    def best_replica(self, staleness_budget: int) \
            -> Optional[ReadReplica]:
        """The freshest healthy replica within budget, or None."""
        with self._lock:
            primary_cn = self.primary.committed_cn
            replicas = list(self.replicas)
        best: Optional[Tuple[int, ReadReplica]] = None
        for replica in replicas:
            if replica.quarantined is not None:
                continue
            lag = max(0, primary_cn - replica.applied_cn)
            if lag <= staleness_budget and \
                    (best is None or lag < best[0]):
                best = (lag, replica)
        return None if best is None else best[1]

    # -- failover -----------------------------------------------------------------

    def failover(self) -> str:
        """Fence the primary and promote the most caught-up replica.

        The sequence is the correctness argument:

        1. *Fence*: close the old primary's log.  A straggler writer
           still holding the old primary gets a typed ``WalError``
           instead of a commit the promoted side would never see —
           and a straggler holding a routed handle gets the friendlier
           :class:`~repro.errors.StaleEpochError` from the dispatch
           fence, because ``_promoting`` is up for the whole window
           and the generation moves at the end of it.
        2. *Trip*: the shard's breaker opens (threshold 1), so the
           resilience layer reports the old primary as down.
        3. *Catch up*: every healthy replica polls the fenced log one
           last time — the committed prefix is complete and final now.
        4. *Promote*: the replica with the highest applied commit
           number takes over.  The log is truncated to its committed
           prefix (dropping dangling ops and any torn tail, exactly
           as crash recovery would) and reopened as the promoted
           engine's live WAL, numbering onward from the commit number
           the replica actually holds.  The generation advances and a
           fresh breaker represents the new primary; the fenced
           engine is retired (released at :meth:`close`).

        Returns the promoted replica's id.
        """
        with self._lock:
            if self._promoting:
                raise ShardError(
                    f"shard {self.shard_id!r} already has a "
                    f"promotion in flight")
            if not self.replicas:
                raise ShardError(
                    f"shard {self.shard_id!r} has no replica to "
                    f"promote")
            candidates = [replica for replica in self.replicas
                          if replica.quarantined is None]
            if not candidates:
                raise ShardError(
                    f"shard {self.shard_id!r} has no healthy replica "
                    f"to promote (all quarantined)")
            self._promoting = True
            old_primary = self.primary
        try:
            # Close the log but leave it *attached*: detaching (what
            # Database.close does) would let a straggler commit
            # succeed silently in memory — attached-but-closed makes
            # it raise.
            if old_primary.wal is not None:
                old_primary.wal.close()
            self.breaker.record_failure()
            for replica in candidates:
                self._safe_poll(replica)
            promoted = max(candidates,
                           key=lambda replica: replica.applied_cn)
            _, committed_length, _, _ = committed_prefix(self.wal_path)
            if self.wal_path.exists() and \
                    self.wal_path.stat().st_size > committed_length:
                with open(self.wal_path, "r+b") as handle:
                    handle.truncate(committed_length)
            wal = WriteAheadLog(self.wal_path, fsync=self.fsync,
                                faults=self._faults)
            wal.last_number = max(wal.last_number,
                                  promoted.database.committed_cn)
            promoted.database.attach_wal(wal, self.snapshot_path)
            with self._lock:
                self.fenced_breaker = self.breaker
                self.replicas.remove(promoted)
                self._retired.append(old_primary)
                self.primary = promoted.database
                self.generation += 1
                self.breaker = self._new_breaker()
            return promoted.replica_id
        finally:
            with self._lock:
                self._promoting = False

    # -- observability and shutdown -----------------------------------------------

    def health(self) -> Dict[str, Any]:
        with self._lock:
            primary = self.primary
            generation = self.generation
            breaker = self.breaker.state
            fenced = (None if self.fenced_breaker is None
                      else self.fenced_breaker.state)
            replicas = list(self.replicas)
            promoting = self._promoting
        return {
            "primary": primary.name,
            "generation": generation,
            "promoting": promoting,
            "breaker": breaker,
            "fenced_breaker": fenced,
            "committed_cn": primary.committed_cn,
            "replica_lag": {replica.replica_id:
                            max(0, primary.committed_cn
                                - replica.applied_cn)
                            for replica in replicas},
            "quarantined_replicas": {
                replica.replica_id: dict(replica.quarantined)
                for replica in replicas
                if replica.quarantined is not None},
        }

    def close(self) -> None:
        """Release the primary, every replica engine and every fenced
        ex-primary (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            primary = self.primary
            replicas = list(self.replicas)
            retired = list(self._retired)
        for replica in replicas:
            replica.close()
        for database in retired:
            database.close()
        primary.close()


class ShardMap:
    """Consistent-hash placement of tenants across engine shards.

    The map's lock guards *membership only* (the ring and the shard
    registry); per-shard state has per-shard locks, and replica disk
    I/O always runs outside both — a routed read on one shard never
    waits behind another shard's WAL scan.  A read routed mid-
    promotion does not observe a half-promoted shard either: the
    shard's ``_promoting`` fence turns it into a typed, retryable
    :class:`~repro.errors.StaleEpochError`.

    ``route_polling`` is the shipment policy for routed reads: True
    (default) polls the shard's replicas on every ``route_read`` /
    ``read_handle`` (synchronous-on-demand, always freshest); the
    supervision layer's background pump sets it False and ships
    frames once per supervision tick instead, taking the WAL scan off
    the read path entirely.
    """

    def __init__(self, directory: Union[str, Path],
                 shards: int = 1,
                 replicas: int = DEFAULT_REPLICAS,
                 vnodes: int = DEFAULT_VNODES,
                 fsync: str = "always",
                 clock: Optional[Clock] = None,
                 faults=None,
                 staleness_budget: int = DEFAULT_STALENESS_BUDGET):
        if shards < 1:
            raise ShardError("a shard map needs at least one shard")
        if staleness_budget < 0:
            raise ShardError("staleness_budget must be >= 0")
        self.directory = Path(directory)
        self.replicas_per_shard = replicas
        self.fsync = fsync
        self.staleness_budget = staleness_budget
        self.route_polling = True
        self._clock = clock or MonotonicClock()
        self._faults = faults
        self._ring = HashRing(vnodes)  # guarded-by: _lock
        self._shards: Dict[str, Shard] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        for index in range(shards):
            self.add_shard(f"shard-{index}")

    # -- membership -------------------------------------------------------------

    def add_shard(self, shard_id: str) -> Shard:
        """Bring up a new shard (recovering its directory if present)
        and claim its ring points.  Only ~1/N of tenants move to it."""
        with self._lock:
            if shard_id in self._shards:
                raise ShardError(
                    f"shard {shard_id!r} already exists")
            shard = Shard(shard_id, self.directory / shard_id,
                          replicas=self.replicas_per_shard,
                          fsync=self.fsync, clock=self._clock,
                          faults=self._faults)
            self._shards[shard_id] = shard
            self._ring.add_node(shard_id)
            return shard

    def remove_shard(self, shard_id: str) -> List[str]:
        """Retire a shard; its tenants re-place onto the survivors.

        Returns the surviving shard ids.  Data migration is the
        caller's concern — the shard's directory stays on disk, so
        re-adding the same id recovers it.
        """
        with self._lock:
            shard = self._shards.pop(shard_id, None)
            if shard is None:
                raise ShardError(f"unknown shard {shard_id!r}")
            self._ring.remove_node(shard_id)
            survivors = sorted(self._shards)
        shard.close()  # engine shutdown fsyncs — not under the map lock
        return survivors

    def shard_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._shards)

    def all_shards(self) -> List[Shard]:
        with self._lock:
            return [self._shards[shard_id]
                    for shard_id in sorted(self._shards)]

    def shard(self, shard_id: str) -> Shard:
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                raise ShardError(f"unknown shard {shard_id!r}")
            return shard

    # -- placement and routing --------------------------------------------------

    def place(self, tenant_id: str) -> str:
        """The shard id the tenant's operational data lives on."""
        with self._lock:
            return self._ring.node_for(tenant_id)

    def shard_for(self, tenant_id: str) -> Shard:
        with self._lock:
            return self._shards[self._ring.node_for(tenant_id)]

    def primary_for(self, tenant_id: str) -> Database:
        """The write target for a tenant (its shard's primary)."""
        return self.shard_for(tenant_id).primary

    def write_handle(self, tenant_id: str) -> RouteHandle:
        """Resolve the epoch-pinned write target for a tenant."""
        return self.shard_for(tenant_id).write_handle()

    def read_handle(self, tenant_id: str,
                    max_staleness: Optional[int] = None,
                    poll: Optional[bool] = None) -> RouteHandle:
        """Resolve the epoch-pinned read target for a tenant.

        ``poll`` overrides :attr:`route_polling` for this call; the
        shipment (WAL disk I/O) runs outside every lock.
        """
        budget = (self.staleness_budget if max_staleness is None
                  else max_staleness)
        if budget < 0:
            raise ShardError("max_staleness must be >= 0")
        shard = self.shard_for(tenant_id)
        should_poll = self.route_polling if poll is None else poll
        if should_poll:
            shard.poll_replicas()
        return shard.read_handle(budget)

    def route_read(self, tenant_id: str,
                   max_staleness: Optional[int] = None,
                   poll: Optional[bool] = None) \
            -> Tuple[Database, Dict[str, Any]]:
        """Pick the engine a read-only statement should run on.

        Ships pending commits to the tenant's shard replicas first
        (unless background pumping is on), then serves from the
        freshest healthy replica whose lag fits the budget; when none
        qualifies the primary serves.  Returns the database and a
        routing record: shard id, generation, who served, and the lag
        in commit numbers the caller accepted.
        """
        handle = self.read_handle(tenant_id, max_staleness, poll=poll)
        return handle.database, handle.route

    # -- epoch-fenced dispatch ----------------------------------------------------

    def dispatch_read(self, handle: RouteHandle, sql: str,
                      params: Tuple[Any, ...] = ()) -> Any:
        """Run a read on a resolved handle, re-checking its epoch."""
        shard = self.shard(handle.shard)
        shard.check_epoch(handle.generation)
        return handle.database.query(sql, params)

    def dispatch_read_hedged(self, handle: RouteHandle,
                             backup: RouteHandle, sql: str,
                             params: Tuple[Any, ...] = (),
                             hedge_after: float = 0.05,
                             budget: Any = None) \
            -> Tuple[Any, Dict[str, Any]]:
        """A replica read with a tail-latency hedge to the primary.

        Runs the read on ``handle`` (normally a replica); if it has
        not answered within ``hedge_after`` seconds — the caller
        passes its observed p95 — a backup read fires on ``backup``
        (normally the primary's epoch-pinned handle) and the first
        completion wins, with the loser cancelled where possible.
        The hedge spends a token from ``budget`` (a duck-typed
        :class:`~repro.core.overload.RetryBudget`) before launching,
        so speculative reads stay inside the tenant's retry budget
        and can never become their own storm.

        Both attempts are epoch-fenced exactly like
        :meth:`dispatch_read`.  Returns ``(rows, route)`` where the
        route records who actually served (``hedged`` / ``winner``
        fields added).
        """
        from repro.core.overload import hedged_call

        def read_primary_handle() -> Any:
            return self.dispatch_read(handle, sql, params)

        def read_backup_handle() -> Any:
            return self.dispatch_read(backup, sql, params)

        rows, info = hedged_call(read_primary_handle,
                                 read_backup_handle,
                                 hedge_after=hedge_after,
                                 budget=budget)
        winner = handle if info["winner"] == "primary" else backup
        route = dict(winner.route)
        route["hedged"] = info["hedged"]
        route["winner"] = info["winner"]
        return rows, route

    def dispatch_write(self, handle: RouteHandle, sql: str,
                       params: Tuple[Any, ...] = ()) -> Any:
        """Run a write on a resolved handle, re-checking its epoch.

        A write that loses the race anyway — the fence closed the log
        between the epoch check and the commit — comes back as the
        same typed :class:`~repro.errors.StaleEpochError`, not a
        log-level ``WalError``: the epoch is re-checked on failure so
        the straggler learns *why* its commit could not land.
        """
        shard = self.shard(handle.shard)
        shard.check_epoch(handle.generation)
        try:
            return handle.database.execute(sql, params)
        except WalError as exc:
            try:
                shard.check_epoch(handle.generation)
            except StaleEpochError as stale:
                raise stale from exc
            raise

    # -- failover and observability ---------------------------------------------

    def failover(self, shard_id: str) -> str:
        """Fence the shard's primary and promote a replica.

        Returns the promoted replica's id; the caller re-points
        whatever held the old primary (the platform re-points tenant
        contexts).
        """
        return self.shard(shard_id).failover()

    def poll(self) -> Dict[str, Dict[str, int]]:
        """Ship pending commits everywhere; lag map per shard."""
        return {shard.shard_id: shard.poll_replicas()
                for shard in self.all_shards()}

    def health(self) -> Dict[str, Dict[str, Any]]:
        return {shard.shard_id: shard.health()
                for shard in self.all_shards()}

    def close(self) -> None:
        for shard in self.all_shards():
            shard.close()
