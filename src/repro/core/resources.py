"""The technical-resources layer (deployment layer).

"Contains the data warehousing tools (e.g., database, ETL engine,
analysis server, etc.) used to deploy and to execute the designed DW
models ... interoperability between all of these tools and APIs can be
ensured using an Enterprise Service Bus" (paper §3.1).

This layer owns the per-tenant named databases and the platform ESB;
every core service resolves physical resources through it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.resilience import Clock, FaultInjector, RetryPolicy
from repro.engine.database import Database
from repro.errors import EsbError, TenantError
from repro.esb import MessageBus

#: Channel carrying resource-level events (deploys, loads, queries).
EVENTS_CHANNEL = "platform-events"

#: Endpoint/publish retries before a message dead-letters.  Zero base
#: delay: the bus is synchronous and in-process, so backoff buys
#: nothing but latency — the retry *count* is what absorbs transient
#: (injected) faults.
DEFAULT_BUS_RETRIES = 3


class TechnicalResourcesLayer:
    """Named databases per tenant plus the integration bus.

    The bus ships with a retry-then-dead-letter policy wired in:
    transient endpoint failures (including injected chaos at the
    ``esb.*`` sites) are retried ``DEFAULT_BUS_RETRIES`` times and
    then parked on the dead-letter channel with correlation intact —
    a flaky subscriber can never fail the platform operation that
    published the event.
    """

    def __init__(self, faults: Optional[FaultInjector] = None,
                 clock: Optional[Clock] = None,
                 bus_journal=None) -> None:
        self._databases: Dict[Tuple[str, str], Database] = {}
        self.faults = faults or FaultInjector()
        self.bus = MessageBus(
            retry_policy=RetryPolicy(
                attempts=DEFAULT_BUS_RETRIES, base_delay=0.0,
                non_retryable=(EsbError,)),
            clock=clock, faults=self.faults, journal=bus_journal)
        self.bus.create_channel(EVENTS_CHANNEL)

    # -- databases -----------------------------------------------------------------

    def register_database(self, tenant_id: str, name: str,
                          database: Database) -> None:
        key = (tenant_id, name)
        if key in self._databases:
            raise TenantError(
                f"tenant {tenant_id!r} already has a database "
                f"named {name!r}")
        self._databases[key] = database

    def database(self, tenant_id: str, name: str) -> Database:
        database = self._databases.get((tenant_id, name))
        if database is None:
            raise TenantError(
                f"tenant {tenant_id!r} has no database named {name!r}")
        return database

    def database_names(self, tenant_id: str) -> List[str]:
        return sorted(name for (tenant, name) in self._databases
                      if tenant == tenant_id)

    # -- events ---------------------------------------------------------------------

    def publish_event(self, tenant_id: str, kind: str,
                      detail: str = "") -> None:
        """Announce a resource-level event on the bus."""
        self.bus.send(EVENTS_CHANNEL, {
            "tenant": tenant_id, "kind": kind, "detail": detail,
        })
