"""The technical-resources layer (deployment layer).

"Contains the data warehousing tools (e.g., database, ETL engine,
analysis server, etc.) used to deploy and to execute the designed DW
models ... interoperability between all of these tools and APIs can be
ensured using an Enterprise Service Bus" (paper §3.1).

This layer owns the per-tenant named databases and the platform ESB;
every core service resolves physical resources through it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.database import Database
from repro.errors import TenantError
from repro.esb import MessageBus

#: Channel carrying resource-level events (deploys, loads, queries).
EVENTS_CHANNEL = "platform-events"


class TechnicalResourcesLayer:
    """Named databases per tenant plus the integration bus."""

    def __init__(self) -> None:
        self._databases: Dict[Tuple[str, str], Database] = {}
        self.bus = MessageBus()
        self.bus.create_channel(EVENTS_CHANNEL)

    # -- databases -----------------------------------------------------------------

    def register_database(self, tenant_id: str, name: str,
                          database: Database) -> None:
        key = (tenant_id, name)
        if key in self._databases:
            raise TenantError(
                f"tenant {tenant_id!r} already has a database "
                f"named {name!r}")
        self._databases[key] = database

    def database(self, tenant_id: str, name: str) -> Database:
        database = self._databases.get((tenant_id, name))
        if database is None:
            raise TenantError(
                f"tenant {tenant_id!r} has no database named {name!r}")
        return database

    def database_names(self, tenant_id: str) -> List[str]:
        return sorted(name for (tenant, name) in self._databases
                      if tenant == tenant_id)

    # -- events ---------------------------------------------------------------------

    def publish_event(self, tenant_id: str, kind: str,
                      detail: str = "") -> None:
        """Announce a resource-level event on the bus."""
        self.bus.send(EVENTS_CHANNEL, {
            "tenant": tenant_id, "kind": kind, "detail": detail,
        })
