"""Shard supervision: failure detection, auto-failover, anti-entropy.

PR 8 gave the platform the *mechanisms* of fault tolerance — fencing,
promotion, WAL-shipped replicas — but a human had to call them.  This
module is the layer that notices, decides and heals on its own, built
entirely on the injectable :class:`~repro.core.resilience.Clock` /
:class:`~repro.core.resilience.FaultInjector` substrate so every
behaviour is deterministic under test:

* **Failure detector** — each supervision ``tick`` probes every shard
  primary (:meth:`~repro.core.sharding.Shard.probe`: no write, no
  disk).  A probe that raises, exceeds the ``probe_timeout`` deadline
  on the supervisor's clock, or hits the injected
  ``supervision.probe.<shard>`` fault site counts as one *miss*;
  ``miss_threshold`` consecutive misses — or the shard's breaker
  standing open — makes the shard *suspect*.

* **Failover orchestration** — a suspect shard is failed over through
  the PR 8 sequence (fence → trip → catch up → promote) via the
  injected ``failover`` callable (the platform's, which also re-points
  tenant contexts), and every attempt is recorded as a structured
  :class:`Incident`.  *Flap damping* bounds the blast radius of a
  noisy detector: at least ``min_failover_interval`` between attempts
  per shard and at most ``max_failovers_per_window`` attempts per
  ``failover_window``; a damped attempt raises a typed
  :class:`~repro.errors.SupervisionError` (recorded, never escaped,
  when the detector itself asked).

* **Anti-entropy audit** — every ``audit_every`` ticks each replica is
  polled to the primary's committed prefix and, once both stand at a
  common commit number, their :func:`~repro.core.sharding.content_checksum`
  digests are compared.  A mismatch is *silent divergence* (commit
  numbers agree, content does not): the replica is quarantined —
  visible in :class:`~repro.core.resilience.HealthReport` and excluded
  from routing — and healed on a later pass by checkpointing the
  primary and forcing a snapshot resync, then re-verified before the
  quarantine lifts.  Corrupt/unpollable replicas (replication gap with
  no snapshot) take the same quarantine-and-heal path; partitioned
  replicas (injected ``replica.partition.<replica>``) are recorded and
  retried, never escalated.

MTTR is measured on the supervisor's clock: an incident's
``detected_at`` is the first miss, ``resolved_at`` the promotion — so
a :class:`~repro.core.resilience.FakeClock` chaos run asserts exact
fake-second recovery times.  The supervision contract is DESIGN.md §7;
E18 prices MTTR against the probe interval.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.resilience import Clock, FaultInjector, MonotonicClock
from repro.core.sharding import ReadReplica, Shard, ShardMap, \
    content_checksum
from repro.errors import EngineError, InjectedFault, ShardError, \
    SupervisionError

#: Seconds between supervision cycles (what :meth:`ShardSupervisor.run`
#: sleeps on the injected clock between ticks).
DEFAULT_PROBE_INTERVAL = 1.0

#: A probe slower than this (on the supervisor's clock) is a miss even
#: if it eventually returned — a deadline-miss detector, not an
#: exception counter.
DEFAULT_PROBE_TIMEOUT = 0.5

#: Consecutive misses before a shard is suspect.
DEFAULT_MISS_THRESHOLD = 3

#: Flap damping: minimum seconds between failover attempts per shard.
DEFAULT_MIN_FAILOVER_INTERVAL = 30.0

#: Flap damping: the sliding window and the attempts it admits.
DEFAULT_FAILOVER_WINDOW = 300.0
DEFAULT_MAX_FAILOVERS_PER_WINDOW = 2

#: Anti-entropy: run the audit every N ticks (0 disables).
DEFAULT_AUDIT_EVERY = 5


@dataclass
class Incident:
    """One structured failover record (the supervisor's flight log).

    ``detected_at`` is the clock time of the *first* miss of the
    episode, ``resolved_at`` the completed promotion; their difference
    is the measured MTTR.  ``outcome`` is ``promoted`` (a replica took
    over), ``damped`` (flap damping refused the attempt) or ``failed``
    (the promotion itself raised — e.g. no healthy replica).
    """

    shard: str
    reason: str
    detected_at: float
    outcome: str
    resolved_at: Optional[float] = None
    promoted: Optional[str] = None
    from_generation: Optional[int] = None
    to_generation: Optional[int] = None
    misses: int = 0
    error: Optional[str] = None

    @property
    def mttr(self) -> Optional[float]:
        """Detection-to-promotion time in clock seconds."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.detected_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "reason": self.reason,
            "outcome": self.outcome,
            "detected_at": self.detected_at,
            "resolved_at": self.resolved_at,
            "mttr": self.mttr,
            "promoted": self.promoted,
            "from_generation": self.from_generation,
            "to_generation": self.to_generation,
            "misses": self.misses,
            "error": self.error,
        }


@dataclass
class _ShardWatch:
    """Per-shard detector state (owned by the supervisor)."""

    misses: int = 0
    suspected_at: Optional[float] = None
    attempts: List[float] = field(default_factory=list)
    status: str = "healthy"
    last_error: Optional[str] = None


class ShardSupervisor:
    """Watches a :class:`~repro.core.sharding.ShardMap` and keeps it
    serving through primary failure and replica divergence.

    ``failover`` is the promotion callable — ``shard_id -> promoted``
    — defaulting to the shard map's own; the platform passes its
    :meth:`~repro.core.platform.OdbisPlatform.failover`, which also
    re-points tenant contexts.  ``pump=True`` turns the supervisor
    into the replication pump: routed reads stop polling
    (``shards.route_polling = False``) and every tick ships pending
    frames instead, trading bounded staleness (one probe interval)
    for a WAL-scan-free read path.

    Single-threaded by design — ticks are *driven* (by a scheduler,
    a test loop or :meth:`run`), never self-timed — so determinism is
    the default: same seed, same fault schedule, same tick cadence ⇒
    identical incident log, promotion order and health report.
    """

    def __init__(self, shards: ShardMap,
                 clock: Optional[Clock] = None,
                 faults: Optional[FaultInjector] = None,
                 failover: Optional[Callable[[str], Any]] = None,
                 probe_interval: float = DEFAULT_PROBE_INTERVAL,
                 probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
                 miss_threshold: int = DEFAULT_MISS_THRESHOLD,
                 min_failover_interval: float
                 = DEFAULT_MIN_FAILOVER_INTERVAL,
                 failover_window: float = DEFAULT_FAILOVER_WINDOW,
                 max_failovers_per_window: int
                 = DEFAULT_MAX_FAILOVERS_PER_WINDOW,
                 audit_every: int = DEFAULT_AUDIT_EVERY,
                 pump: bool = False):
        if probe_interval <= 0:
            raise SupervisionError("probe_interval must be > 0")
        if miss_threshold < 1:
            raise SupervisionError("miss_threshold must be >= 1")
        if max_failovers_per_window < 1:
            raise SupervisionError(
                "max_failovers_per_window must be >= 1")
        self.shards = shards
        self.clock = clock or MonotonicClock()
        self.faults = faults or FaultInjector()
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.miss_threshold = miss_threshold
        self.min_failover_interval = min_failover_interval
        self.failover_window = failover_window
        self.max_failovers_per_window = max_failovers_per_window
        self.audit_every = audit_every
        self.pump = pump
        self._failover = failover if failover is not None \
            else shards.failover
        self._lock = threading.Lock()
        self.incidents: List[Incident] = []  # guarded-by: _lock
        self.audit_log: List[Dict[str, Any]] = []  # guarded-by: _lock
        self._watches: Dict[str, _ShardWatch] = {}  # guarded-by: _lock
        self._ticks = 0  # guarded-by: _lock
        if pump:
            shards.route_polling = False

    # -- the supervision cycle ----------------------------------------------------

    def tick(self) -> Dict[str, Any]:
        """One supervision cycle over every shard.

        Probes each primary, escalates suspects through damped
        failover, pumps replication when configured, and runs the
        anti-entropy audit on its cadence.  Nothing escapes: every
        failure mode resolves to detector state, an
        :class:`Incident`, or an audit-log entry.
        """
        report: Dict[str, Any] = {"probes": {}, "incidents": [],
                                  "audited": False}
        for shard_id in self.shards.shard_ids():
            shard = self.shards.shard(shard_id)
            watch = self._watch(shard_id)
            if self.pump:
                shard.poll_replicas()
            report["probes"][shard_id] = \
                self._probe(shard_id, shard, watch)
            if self._is_suspect(shard, watch):
                incident = self._respond(shard_id, shard, watch)
                report["incidents"].append(incident.to_dict())
        with self._lock:
            self._ticks += 1
            ticks = self._ticks
        if self.audit_every and ticks % self.audit_every == 0:
            report["audit"] = self.audit()
            report["audited"] = True
        return report

    def run(self, cycles: int) -> List[Dict[str, Any]]:
        """Drive ``cycles`` ticks, sleeping ``probe_interval`` on the
        supervisor's clock between them (a FakeClock advances
        deterministically; wall time actually waits)."""
        reports = []
        for _ in range(cycles):
            reports.append(self.tick())
            self.clock.sleep(self.probe_interval)
        return reports

    def _watch(self, shard_id: str) -> _ShardWatch:
        with self._lock:
            watch = self._watches.get(shard_id)
            if watch is None:
                watch = _ShardWatch()
                self._watches[shard_id] = watch
            return watch

    # -- failure detection --------------------------------------------------------

    def _probe(self, shard_id: str, shard: Shard,
               watch: _ShardWatch) -> Dict[str, Any]:
        started = self.clock.now()
        try:
            self.faults.fire(f"supervision.probe.{shard_id}")
            probed = shard.probe()
        except (InjectedFault, ShardError, EngineError) as exc:
            return self._miss(watch, started, str(exc))
        elapsed = self.clock.now() - started
        if elapsed > self.probe_timeout:
            return self._miss(
                watch, started,
                f"probe took {elapsed:.3f}s against a "
                f"{self.probe_timeout:.3f}s deadline")
        watch.misses = 0
        watch.suspected_at = None
        watch.last_error = None
        if watch.status == "suspect":
            watch.status = "healthy"
        return {"ok": True, "generation": probed["generation"],
                "committed_cn": probed["committed_cn"]}

    def _miss(self, watch: _ShardWatch, at: float,
              error: str) -> Dict[str, Any]:
        watch.misses += 1
        watch.last_error = error
        if watch.suspected_at is None:
            watch.suspected_at = at
        if watch.misses >= self.miss_threshold:
            watch.status = "suspect"
        return {"ok": False, "misses": watch.misses, "error": error}

    def _is_suspect(self, shard: Shard, watch: _ShardWatch) -> bool:
        if watch.misses >= self.miss_threshold:
            return True
        # An open breaker means the resilience layer already declared
        # this primary down — suspect immediately, no miss counting.
        return shard.breaker.state == "open"

    # -- failover orchestration ---------------------------------------------------

    def _respond(self, shard_id: str, shard: Shard,
                 watch: _ShardWatch) -> Incident:
        """Escalate a suspect shard; damping never escapes a tick."""
        now = self.clock.now()
        detected = watch.suspected_at \
            if watch.suspected_at is not None else now
        reason = ("probe-misses"
                  if watch.misses >= self.miss_threshold
                  else "breaker-open")
        try:
            return self._attempt_failover(shard_id, shard, watch,
                                          reason, detected)
        except SupervisionError as exc:
            watch.status = "damped"
            incident = Incident(
                shard=shard_id, reason=reason, detected_at=detected,
                outcome="damped", misses=watch.misses,
                error=str(exc))
            self._record(incident)
            return incident

    def failover(self, shard_id: str,
                 reason: str = "manual") -> Incident:
        """Orchestrate a failover now (flap damping still applies —
        raises :class:`~repro.errors.SupervisionError` when it says
        no, because a *caller* can retry later; the detector path
        records the refusal instead)."""
        shard = self.shards.shard(shard_id)
        watch = self._watch(shard_id)
        detected = watch.suspected_at \
            if watch.suspected_at is not None else self.clock.now()
        return self._attempt_failover(shard_id, shard, watch,
                                      reason, detected)

    def _attempt_failover(self, shard_id: str, shard: Shard,
                          watch: _ShardWatch, reason: str,
                          detected: float) -> Incident:
        now = self.clock.now()
        self._admit(shard_id, watch, now)
        watch.attempts.append(now)
        from_generation = shard.generation
        try:
            promoted = self._failover(shard_id)
        except (ShardError, EngineError) as exc:
            watch.status = "failed"
            watch.last_error = str(exc)
            incident = Incident(
                shard=shard_id, reason=reason, detected_at=detected,
                outcome="failed", misses=watch.misses,
                from_generation=from_generation, error=str(exc))
            self._record(incident)
            return incident
        if isinstance(promoted, dict):
            promoted = promoted.get("promoted")
        incident = Incident(
            shard=shard_id, reason=reason, detected_at=detected,
            outcome="promoted", resolved_at=self.clock.now(),
            promoted=promoted, misses=watch.misses,
            from_generation=from_generation,
            to_generation=shard.generation)
        watch.misses = 0
        watch.suspected_at = None
        watch.status = "healthy"
        watch.last_error = None
        self._record(incident)
        return incident

    def _admit(self, shard_id: str, watch: _ShardWatch,
               now: float) -> None:
        """Flap damping: refuse attempts that come too hot."""
        if watch.attempts:
            since_last = now - watch.attempts[-1]
            if since_last < self.min_failover_interval:
                raise SupervisionError(
                    f"shard {shard_id!r} attempted a failover "
                    f"{since_last:.3f}s ago; damping requires "
                    f"{self.min_failover_interval:.3f}s between "
                    f"attempts",
                    shard=shard_id, reason="flap-damped",
                    retry_after=self.min_failover_interval
                    - since_last)
        recent = [moment for moment in watch.attempts
                  if now - moment <= self.failover_window]
        if len(recent) >= self.max_failovers_per_window:
            raise SupervisionError(
                f"shard {shard_id!r} already attempted "
                f"{len(recent)} failovers inside the "
                f"{self.failover_window:.0f}s window (max "
                f"{self.max_failovers_per_window})",
                shard=shard_id, reason="window-exhausted",
                retry_after=self.failover_window - (now - recent[0]))

    def _record(self, incident: Incident) -> None:
        with self._lock:
            self.incidents.append(incident)

    # -- anti-entropy audit -------------------------------------------------------

    def audit(self) -> Dict[str, Dict[str, Dict[str, Any]]]:
        """One anti-entropy pass over every replica of every shard.

        Healthy replicas are content-verified against their primary
        at a common commit number; quarantined replicas are healed
        (checkpoint → forced snapshot resync → re-verify).  Returns
        ``{shard: {replica: verdict-entry}}``; every non-``consistent``
        verdict is also appended to :attr:`audit_log`.
        """
        report: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for shard in self.shards.all_shards():
            entries: Dict[str, Dict[str, Any]] = {}
            for replica in list(shard.replicas):
                if replica.quarantined is not None:
                    entries[replica.replica_id] = \
                        self._heal(shard, replica)
                else:
                    entries[replica.replica_id] = \
                        self._audit_replica(shard, replica)
            report[shard.shard_id] = entries
        return report

    def _audit_replica(self, shard: Shard,
                       replica: ReadReplica) -> Dict[str, Any]:
        now = self.clock.now()
        entry = {"shard": shard.shard_id,
                 "replica": replica.replica_id, "at": now}
        try:
            replica.poll()
        except InjectedFault as exc:
            entry.update(verdict="unreachable", error=str(exc))
            return self._log_audit(entry)
        except (ShardError, EngineError) as exc:
            # The replica cannot even apply the log (gap with no
            # snapshot, corrupt frames): quarantine; the heal pass
            # checkpoints the primary, which mints the snapshot the
            # resync needs.
            replica.quarantine(f"corrupt: {exc}", now)
            entry.update(verdict="quarantined",
                         reason="corrupt", error=str(exc))
            return self._log_audit(entry)
        primary_cn = shard.primary.committed_cn
        lag = primary_cn - replica.applied_cn
        if lag != 0:
            # No common commit number to compare at; the next pass
            # (or the next poll) converges first.
            entry.update(verdict="lagging", lag=lag)
            return self._log_audit(entry)
        if content_checksum(replica.database) \
                != content_checksum(shard.primary):
            replica.quarantine(
                f"divergence: content checksum mismatch at "
                f"cn {primary_cn}", now)
            entry.update(verdict="quarantined", reason="divergence",
                         checksum_cn=primary_cn)
            return self._log_audit(entry)
        entry.update(verdict="consistent", checksum_cn=primary_cn)
        return entry

    def _heal(self, shard: Shard,
              replica: ReadReplica) -> Dict[str, Any]:
        """Self-heal a quarantined replica via snapshot resync."""
        now = self.clock.now()
        entry = {"shard": shard.shard_id,
                 "replica": replica.replica_id, "at": now}
        quarantined = dict(replica.quarantined or {})
        try:
            # A fresh checkpoint puts the primary's exact current
            # state on disk; the forced resync discards whatever the
            # replica diverged into.
            shard.primary.checkpoint()
            replica.resync(force=True)
            replica.poll()
        except (InjectedFault, ShardError, EngineError) as exc:
            entry.update(verdict="heal-deferred", error=str(exc),
                         reason=quarantined.get("reason"))
            return self._log_audit(entry)
        if content_checksum(replica.database) \
                != content_checksum(shard.primary):
            entry.update(verdict="heal-failed",
                         reason=quarantined.get("reason"))
            return self._log_audit(entry)
        replica.release_quarantine()
        entry.update(
            verdict="healed", reason=quarantined.get("reason"),
            quarantined_for=now - quarantined.get("since", now))
        return self._log_audit(entry)

    def _log_audit(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.audit_log.append(entry)
        return entry

    # -- observability ------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The supervisor's posture for ``HealthReport.supervision``."""
        with self._lock:
            watches = {
                shard_id: {
                    "status": watch.status,
                    "misses": watch.misses,
                    "suspected_at": watch.suspected_at,
                    "failover_attempts": len(watch.attempts),
                    "last_error": watch.last_error,
                }
                for shard_id, watch in sorted(self._watches.items())
            }
            incidents = [incident.to_dict()
                         for incident in self.incidents]
            ticks = self._ticks
        quarantined: Dict[str, Dict[str, Any]] = {}
        for shard in self.shards.all_shards():
            for replica in list(shard.replicas):
                if replica.quarantined is not None:
                    quarantined[replica.replica_id] = \
                        dict(replica.quarantined)
        return {
            "ticks": ticks,
            "watches": watches,
            "incidents": incidents,
            "quarantined_replicas": quarantined,
            "config": {
                "probe_interval": self.probe_interval,
                "probe_timeout": self.probe_timeout,
                "miss_threshold": self.miss_threshold,
                "min_failover_interval": self.min_failover_interval,
                "failover_window": self.failover_window,
                "max_failovers_per_window":
                    self.max_failovers_per_window,
                "audit_every": self.audit_every,
                "pump": self.pump,
            },
        }
