"""MDS — the meta-data service.

"The meta-data service allows meta-data and business information
definition to facilitate information sharing and exchange between all
services.  DataSource objects provide a set of information (URL, User,
Password, etc.) used to connect to database servers.  DataSet objects
are a SQL query abstraction used by charts, data-tables and
dashboards" (paper §3.1/§3.3).

Data sources use ``repro://<database-name>`` URLs resolved through the
technical-resources layer.  Each tenant also gets a CWM business
glossary extent for its business vocabulary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis import SqlAnalyzer
from repro.cwm import BusinessBuilder, OdmBuilder, SemanticMatcher, cwm_metamodel
from repro.cwm.relational import reflect_physical_table
from repro.engine.database import Database
from repro.errors import ServiceError
from repro.mof.kernel import ModelExtent
from repro.mof.xmi import read_xmi, write_xmi
from repro.core.resources import TechnicalResourcesLayer
from repro.core.tenancy import TenantManager

_URL_PREFIX = "repro://"


class MetadataService:
    """Per-tenant data sources, data sets and business glossaries."""

    def __init__(self, tenants: TenantManager,
                 resources: TechnicalResourcesLayer):
        self.tenants = tenants
        self.resources = resources
        self._glossaries: Dict[str, ModelExtent] = {}
        self._metamodel = cwm_metamodel()

    def _db(self, tenant_id: str) -> Database:
        context = self.tenants.require_active(tenant_id)
        database = context.operational_db
        database.execute(
            "CREATE TABLE IF NOT EXISTS mds_datasources ("
            "tenant TEXT NOT NULL, name TEXT NOT NULL, "
            "url TEXT NOT NULL, username TEXT, password TEXT)")
        database.execute(
            "CREATE TABLE IF NOT EXISTS mds_datasets ("
            "tenant TEXT NOT NULL, name TEXT NOT NULL, "
            "datasource TEXT NOT NULL, sql TEXT NOT NULL)")
        return database

    # -- data sources -----------------------------------------------------------------

    def create_datasource(self, tenant_id: str, name: str, url: str,
                          username: Optional[str] = None,
                          password: Optional[str] = None) -> None:
        if not url.startswith(_URL_PREFIX):
            raise ServiceError(
                f"data source URLs must start with {_URL_PREFIX!r}, "
                f"got {url!r}")
        database = self._db(tenant_id)
        existing = database.query(
            "SELECT name FROM mds_datasources "
            "WHERE tenant = ? AND name = ?", (tenant_id, name))
        if existing:
            raise ServiceError(
                f"tenant {tenant_id!r} already has data source "
                f"{name!r}")
        database.execute(
            "INSERT INTO mds_datasources VALUES (?, ?, ?, ?, ?)",
            (tenant_id, name, url, username, password))

    def datasources(self, tenant_id: str) -> List[Dict[str, Any]]:
        database = self._db(tenant_id)
        return database.query(
            "SELECT name, url, username FROM mds_datasources "
            "WHERE tenant = ? ORDER BY name", (tenant_id,))

    def resolve_datasource(self, tenant_id: str,
                           name: str) -> Database:
        """The physical database behind a data source."""
        database = self._db(tenant_id)
        rows = database.query(
            "SELECT url FROM mds_datasources "
            "WHERE tenant = ? AND name = ?", (tenant_id, name))
        if not rows:
            raise ServiceError(
                f"tenant {tenant_id!r} has no data source {name!r}")
        target = rows[0]["url"][len(_URL_PREFIX):]
        return self.resources.database(tenant_id, target)

    # -- data sets ---------------------------------------------------------------------

    def create_dataset(self, tenant_id: str, name: str,
                       datasource: str, sql: str,
                       validate: bool = True) -> None:
        target = self.resolve_datasource(tenant_id, datasource)
        if validate:
            collector = SqlAnalyzer.for_database(target).analyze(
                sql, source=name)
            if collector.has_errors():
                collector.raise_if_errors(
                    ServiceError,
                    prefix=f"data set {name!r} rejected")
        database = self._db(tenant_id)
        existing = database.query(
            "SELECT name FROM mds_datasets "
            "WHERE tenant = ? AND name = ?", (tenant_id, name))
        if existing:
            raise ServiceError(
                f"tenant {tenant_id!r} already has data set {name!r}")
        database.execute(
            "INSERT INTO mds_datasets VALUES (?, ?, ?, ?)",
            (tenant_id, name, datasource, sql))

    def datasets(self, tenant_id: str) -> List[Dict[str, Any]]:
        database = self._db(tenant_id)
        return database.query(
            "SELECT name, datasource, sql FROM mds_datasets "
            "WHERE tenant = ? ORDER BY name", (tenant_id,))

    def dataset_rows(self, tenant_id: str, name: str,
                     params: tuple = ()) -> List[Dict[str, Any]]:
        """Execute a data set's SQL and return its rows."""
        database = self._db(tenant_id)
        rows = database.query(
            "SELECT datasource, sql FROM mds_datasets "
            "WHERE tenant = ? AND name = ?", (tenant_id, name))
        if not rows:
            raise ServiceError(
                f"tenant {tenant_id!r} has no data set {name!r}")
        target = self.resolve_datasource(
            tenant_id, rows[0]["datasource"])
        return target.query(rows[0]["sql"], params)

    # -- business glossary ----------------------------------------------------------------

    def glossary(self, tenant_id: str) -> BusinessBuilder:
        """The tenant's business-nomenclature builder (CWM extent)."""
        self.tenants.require_active(tenant_id)
        extent = self._glossaries.get(tenant_id)
        if extent is None:
            extent = ModelExtent(
                self._metamodel, f"glossary-{tenant_id}")
            self._glossaries[tenant_id] = extent
        return BusinessBuilder(extent)

    def ontology(self, tenant_id: str) -> OdmBuilder:
        """The tenant's ODM ontology builder (same extent as glossary).

        The paper plans ODM "to solve the semantic schemas integration"
        — concepts defined here drive suggest_column_mapping().
        """
        return OdmBuilder(self.glossary(tenant_id).extent)

    def suggest_column_mapping(self, tenant_id: str,
                               source_datasource: str,
                               source_table: str,
                               target_datasource: str,
                               target_table: str):
        """Semantic column-mapping proposals between two live tables.

        Both tables are reverse-engineered into CWM and matched using
        the tenant's ontology (names, synonyms, equivalences).
        Returns a list of :class:`repro.cwm.odm.ColumnMatch`.
        """
        odm = self.ontology(tenant_id)
        source_db = self.resolve_datasource(tenant_id,
                                            source_datasource)
        target_db = self.resolve_datasource(tenant_id,
                                            target_datasource)
        scratch = ModelExtent(self._metamodel,
                              f"mapping-{tenant_id}")
        source = reflect_physical_table(scratch, source_db,
                                        source_table)
        target = reflect_physical_table(scratch, target_db,
                                        target_table)
        return SemanticMatcher(odm).match_tables(source, target)

    def export_glossary_xmi(self, tenant_id: str) -> str:
        """Serialize the tenant's glossary/ontology extent to XMI.

        The paper: "JMI allows also metamodel and metadata interchange
        via XML by using the industry standard XMI specification."
        """
        return write_xmi(self.glossary(tenant_id).extent)

    def import_glossary_xmi(self, tenant_id: str,
                            document: str) -> int:
        """Replace the tenant's glossary extent from an XMI document.

        Returns the number of imported model elements.
        """
        self.tenants.require_active(tenant_id)
        extent = read_xmi(document, self._metamodel)
        self._glossaries[tenant_id] = extent
        return len(extent)

    def glossary_terms(self, tenant_id: str) -> List[str]:
        extent = self._glossaries.get(tenant_id)
        if extent is None:
            return []
        return sorted(element.name
                      for element in extent.instances_of("Term"))
