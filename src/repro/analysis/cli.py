"""Lint a directory of tenant artifacts from the command line.

Usage::

    python -m repro.analysis.cli <directory> [--no-warnings]
    python -m repro.analysis.cli concurrency <path> [--no-warnings]

The second form runs the lock-discipline analyzer
(:mod:`repro.analysis.concurrency`) over a Python source tree (or a
single ``.py`` file) instead of linting tenant artifacts; the repo
keeps itself honest with ``concurrency src/repro``.

File handling, by extension:

* ``*.sql`` — multi-statement SQL scripts.  ``schema.sql`` (when
  present) is linted first and its DDL seeds the catalog every other
  script is checked against; remaining scripts are processed in sorted
  order and may add their own DDL.
* ``*.rules`` — rule-DSL text.
* ``*.json`` — dashboard definitions.  The payload is either a plain
  serialized dashboard dict or ``{"dashboard": {...}, "datasets":
  {name: sql, ...}}``; dataset SQL is validated and its output shape
  drives the column checks.

Prints one ``path:line:col severity [CODE] message`` line per finding
plus a summary; exits 1 when any *error* was found, 0 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.reports import (
    dataset_columns_from_sql,
    lint_dashboard,
)
from repro.analysis.rules import lint_rules
from repro.analysis.sql import (
    SqlAnalyzer,
    analyze_script,
    apply_ddl,
    split_statements,
)
from repro.engine.parser import parse_sql
from repro.engine.schema import Catalog
from repro.errors import EngineError


def _sql_files(directory: Path) -> List[Path]:
    """All .sql files, schema.sql first, the rest in sorted order."""
    files = sorted(directory.rglob("*.sql"))
    schemas = [path for path in files if path.name == "schema.sql"]
    others = [path for path in files if path.name != "schema.sql"]
    return schemas + others


def lint_directory(directory: Path,
                   collector: Optional[DiagnosticCollector] = None
                   ) -> DiagnosticCollector:
    """Lint every artifact under ``directory``; returns the findings."""
    collector = collector if collector is not None \
        else DiagnosticCollector()
    catalog = Catalog()
    views: Dict[str, object] = {}

    for path in _sql_files(directory):
        text = path.read_text()
        label = str(path.relative_to(directory))
        analyze_script(text, catalog, collector, source=label,
                       views=views)
        # Fold this script's DDL into the shared catalog so later
        # artifacts (and dashboards) see the tables it defines.
        for statement_text, _offset in split_statements(text):
            try:
                statement = parse_sql(statement_text)
                apply_ddl(statement, catalog, views)
            except EngineError:
                continue  # already reported by analyze_script

    for path in sorted(directory.rglob("*.rules")):
        label = str(path.relative_to(directory))
        lint_rules(path.read_text(), collector, source=label)

    for path in sorted(directory.rglob("*.json")):
        label = str(path.relative_to(directory))
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            collector.error("ODB404",
                            f"not valid JSON: {exc}", source=label)
            continue
        if not isinstance(payload, dict):
            collector.error("ODB404",
                            "expected a JSON object", source=label)
            continue
        if "dashboard" in payload:
            dashboard = payload["dashboard"]
            dataset_sql = payload.get("datasets", {})
        else:
            dashboard = payload
            dataset_sql = {}
        for name, sql in dataset_sql.items():
            SqlAnalyzer(catalog, views).analyze(
                sql, collector, source=f"{label}[{name}]")
        shapes = dataset_columns_from_sql(dataset_sql, catalog, views)
        lint_dashboard(dashboard, shapes, collector, source=label)

    return collector


def render_report(collector: DiagnosticCollector,
                  show_warnings: bool = True) -> str:
    lines: List[str] = []
    for diagnostic in collector.sorted():
        if not show_warnings \
                and diagnostic.severity.value != "error":
            continue
        lines.append(str(diagnostic))
    lines.append(f"{len(collector.errors)} error(s), "
                 f"{len(collector.warnings)} warning(s)")
    return "\n".join(lines)


def main(argv: Optional[Iterable[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    show_warnings = True
    if "--no-warnings" in args:
        show_warnings = False
        args.remove("--no-warnings")

    if args and args[0] == "concurrency":
        if len(args) != 2:
            print("usage: python -m repro.analysis.cli concurrency "
                  "<path> [--no-warnings]", file=sys.stderr)
            return 2
        target = Path(args[1])
        if not target.exists():
            print(f"no such path: {target}", file=sys.stderr)
            return 2
        collector = analyze_concurrency(target)
        print(render_report(collector, show_warnings))
        return 1 if collector.has_errors() else 0

    if len(args) != 1:
        print("usage: python -m repro.analysis.cli <directory> "
              "[--no-warnings]", file=sys.stderr)
        return 2
    directory = Path(args[0])
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2
    collector = lint_directory(directory)
    print(render_report(collector, show_warnings))
    return 1 if collector.has_errors() else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
