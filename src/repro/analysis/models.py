"""Model linting for CWM/MDA artifacts (ODB2xx diagnostics).

Checks a :class:`~repro.mof.kernel.ModelExtent` for structural
problems the transformation engine would otherwise hit at runtime:
dangling references, orphan composite children, unset required slots,
conflicting composite owners and cycles through CWM Transformation
chains.  Cube/dimension resolution — both the CWM OLAP shape inside an
extent and a code-generated :class:`~repro.olap.model.CubeSchema`
against a relational catalog — is covered as well.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticCollector
from repro.errors import MofError
from repro.mof.kernel import ModelExtent, MofElement


def _label(element: MofElement) -> str:
    name = element.name
    if name:
        return f"{element.class_name} {name!r}"
    return f"{element.class_name} #{element.element_id}"


def _find_cycle(nodes: Sequence[str],
                edges: Dict[str, List[str]]) -> Optional[List[str]]:
    """One cycle (as a node path) in a directed graph, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in nodes}
    parent: Dict[str, Optional[str]] = {}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        color[root] = GREY
        parent[root] = None
        while stack:
            node, cursor = stack[-1]
            successors = edges.get(node, [])
            if cursor < len(successors):
                stack[-1] = (node, cursor + 1)
                successor = successors[cursor]
                if successor not in color:
                    continue
                if color[successor] == GREY:
                    cycle = [successor, node]
                    walker = parent.get(node)
                    while walker is not None and walker != successor:
                        cycle.append(walker)
                        walker = parent.get(walker)
                    cycle.reverse()
                    return cycle
                if color[successor] == WHITE:
                    color[successor] = GREY
                    parent[successor] = node
                    stack.append((successor, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return None


class ModelLinter:
    """Static checks over one model extent."""

    def lint(self, extent: ModelExtent,
             collector: Optional[DiagnosticCollector] = None,
             source: Optional[str] = None) -> DiagnosticCollector:
        collector = collector if collector is not None \
            else DiagnosticCollector(source)
        self._out = collector
        self._source = source
        elements = list(extent)
        metamodel = extent.metamodel

        # Orphan detection only considers composite references whose
        # target class is concrete: broad abstract targets such as
        # Namespace.ownedElement -> ModelElement would otherwise flag
        # every legitimately top-level element.
        composite_targets = set()
        for class_name in metamodel.class_names():
            for reference in metamodel.metaclass(class_name).references:
                if reference.composite \
                        and not metamodel.metaclass(
                            reference.target).abstract:
                    composite_targets.add(reference.target)

        owned: Dict[str, str] = {}  # child id -> owner id
        for element in elements:
            references = metamodel.all_references(element.class_name)
            attributes = metamodel.all_attributes(element.class_name)
            for attribute in attributes.values():
                if attribute.required \
                        and element.get(attribute.name) is None:
                    collector.error(
                        "ODB205",
                        f"{_label(element)}: required attribute "
                        f"{attribute.name!r} is unset", source=source)
            for reference in references.values():
                targets = element.refs(reference.name)
                if reference.required and not targets:
                    collector.error(
                        "ODB205",
                        f"{_label(element)}: required reference "
                        f"{reference.name!r} is empty", source=source)
                for target in targets:
                    if not self._in_extent(extent, target):
                        collector.error(
                            "ODB201",
                            f"{_label(element)}.{reference.name} "
                            f"dangles: {_label(target)} is not in "
                            f"extent {extent.name!r}", source=source)
                    if reference.composite:
                        owner = owned.get(target.element_id)
                        if owner is not None \
                                and owner != element.element_id:
                            collector.error(
                                "ODB206",
                                f"{_label(target)} has two composite "
                                f"owners", source=source)
                        owned[target.element_id] = element.element_id

        for element in elements:
            if element.element_id in owned:
                continue
            if any(metamodel.is_kind_of(element.class_name, target)
                   for target in composite_targets
                   if target in metamodel):
                collector.warning(
                    "ODB202",
                    f"{_label(element)} is an orphan: its class is "
                    f"composite-owned but no element owns it",
                    source=source)

        self._lint_transformation_cycles(extent, collector, source)
        if "Cube" in metamodel:
            self._lint_cubes(extent, collector, source)
        return collector

    @staticmethod
    def _in_extent(extent: ModelExtent, target: MofElement) -> bool:
        if target.extent is not extent:
            return False
        try:
            return extent.element(target.element_id) is target
        except MofError:
            return False

    # -- CWM Transformation cycles -------------------------------------------

    def _lint_transformation_cycles(
            self, extent: ModelExtent,
            collector: DiagnosticCollector,
            source: Optional[str]) -> None:
        metamodel = extent.metamodel

        if "TransformationStep" in metamodel:
            steps = extent.instances_of("TransformationStep")
            nodes = [step.element_id for step in steps]
            by_id = {step.element_id: step for step in steps}
            edges = {
                step.element_id: [
                    predecessor.element_id
                    for predecessor in step.refs("precedence")
                    if predecessor.element_id in by_id
                ]
                for step in steps
            }
            cycle = _find_cycle(nodes, edges)
            if cycle is not None:
                path = " -> ".join(_label(by_id[node])
                                   for node in cycle)
                collector.error(
                    "ODB203",
                    f"transformation step precedence cycle: {path}",
                    source=source)

        if "Transformation" in metamodel:
            # Chained transformations: an element produced by one
            # transformation feeding another.  A cycle means no valid
            # execution order exists.
            transformations = extent.instances_of("Transformation")
            edges: Dict[str, List[str]] = {}
            nodes: List[str] = []
            labels: Dict[str, MofElement] = {}
            for transformation in transformations:
                for item in (transformation.refs("source")
                             + transformation.refs("target")):
                    if item.element_id not in labels:
                        labels[item.element_id] = item
                        nodes.append(item.element_id)
                for source_element in transformation.refs("source"):
                    bucket = edges.setdefault(
                        source_element.element_id, [])
                    for target_element in transformation.refs("target"):
                        bucket.append(target_element.element_id)
            cycle = _find_cycle(nodes, edges)
            if cycle is not None:
                path = " -> ".join(_label(labels[node])
                                   for node in cycle)
                collector.error(
                    "ODB203",
                    f"transformation chain cycle: {path}",
                    source=source)

    # -- CWM OLAP cube resolution --------------------------------------------

    def _lint_cubes(self, extent: ModelExtent,
                    collector: DiagnosticCollector,
                    source: Optional[str]) -> None:
        for cube in extent.instances_of("Cube"):
            fact = cube.ref("factTable")
            if fact is None:
                collector.error(
                    "ODB204",
                    f"{_label(cube)} has no factTable", source=source)
            fact_columns = set()
            if fact is not None:
                try:
                    fact_columns = {column.element_id
                                    for column in fact.refs("feature")}
                except MofError:
                    fact_columns = set()
            for association in cube.refs("cubeDimensionAssociation"):
                dimension = association.ref("dimension")
                if dimension is None:
                    continue  # ODB205 already flags the required ref
                if dimension.ref("dimensionTable") is None:
                    collector.error(
                        "ODB204",
                        f"{_label(cube)}: {_label(dimension)} has no "
                        f"dimensionTable", source=source)
                foreign_key = association.ref("foreignKeyColumn")
                if foreign_key is not None and fact is not None \
                        and foreign_key.element_id not in fact_columns:
                    collector.error(
                        "ODB204",
                        f"{_label(cube)}: foreign key "
                        f"{_label(foreign_key)} is not a column of "
                        f"fact table {_label(fact)}", source=source)
            for feature in cube.refs("feature"):
                if feature.class_name != "Measure":
                    continue
                column = feature.ref("column")
                if column is not None and fact is not None \
                        and column.element_id not in fact_columns:
                    collector.error(
                        "ODB204",
                        f"{_label(cube)}: measure column "
                        f"{_label(column)} is not a column of fact "
                        f"table {_label(fact)}", source=source)


def lint_model(extent: ModelExtent,
               collector: Optional[DiagnosticCollector] = None,
               source: Optional[str] = None) -> DiagnosticCollector:
    """Lint one model extent (convenience wrapper)."""
    return ModelLinter().lint(extent, collector, source)


def lint_cube_schema(definition: Any, catalog: Any,
                     collector: Optional[DiagnosticCollector] = None,
                     source: Optional[str] = None) -> DiagnosticCollector:
    """Validate a cube definition against a relational catalog.

    ``definition`` is a :class:`~repro.olap.model.CubeSchema` or the
    plain dict the MDA code generator emits; ``catalog`` is an
    :class:`~repro.engine.schema.Catalog`.  Every resolution failure is
    an ODB204.
    """
    from repro.errors import CubeDefinitionError
    from repro.olap.model import CubeSchema

    collector = collector if collector is not None \
        else DiagnosticCollector(source)
    if isinstance(definition, dict):
        try:
            definition = CubeSchema.from_definition(definition)
        except CubeDefinitionError as exc:
            collector.error("ODB204", str(exc), source=source)
            return collector
    if not catalog.has_table(definition.fact_table):
        collector.error(
            "ODB204",
            f"cube {definition.name!r}: missing fact table "
            f"{definition.fact_table!r}", source=source)
        return collector
    fact_schema = catalog.table(definition.fact_table)
    for measure in definition.measures:
        if not fact_schema.has_column(measure.column):
            collector.error(
                "ODB204",
                f"cube {definition.name!r}: fact table lacks measure "
                f"column {measure.column!r}", source=source)
    for dimension in definition.dimensions:
        if not fact_schema.has_column(dimension.key):
            collector.error(
                "ODB204",
                f"cube {definition.name!r}: fact table lacks key "
                f"column {dimension.key!r} for dimension "
                f"{dimension.name!r}", source=source)
        if not catalog.has_table(dimension.table):
            collector.error(
                "ODB204",
                f"cube {definition.name!r}: missing dimension table "
                f"{dimension.table!r}", source=source)
            continue
        dim_schema = catalog.table(dimension.table)
        if not dim_schema.has_column(dimension.key):
            collector.error(
                "ODB204",
                f"cube {definition.name!r}: dimension table "
                f"{dimension.table!r} lacks key column "
                f"{dimension.key!r}", source=source)
        for level in dimension.levels:
            if not dim_schema.has_column(level):
                collector.error(
                    "ODB204",
                    f"cube {definition.name!r}: dimension table "
                    f"{dimension.table!r} lacks level column "
                    f"{level!r}", source=source)
    return collector
