"""Static analysis of tenant artifacts: SQL, models, rules, reports.

The analyzers in this package check artifacts *before* deployment —
the design-time validation the platform's administration layer applies
at provisioning time — and report findings as :class:`Diagnostic`
records with stable ``ODBnnn`` codes.

:mod:`repro.analysis.concurrency` additionally turns the lens on the
platform's own source: a lock-discipline static analyzer plus an
opt-in runtime race/deadlock sanitizer.
"""

from repro.analysis.concurrency import (
    ConcurrencyAnalyzer,
    ConcurrencySanitizer,
    SanitizerReport,
    analyze_concurrency,
    default_sanitizer,
    sanitize_enabled,
)
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticCollector,
    Severity,
    SourceSpan,
)
from repro.analysis.models import (
    ModelLinter,
    lint_cube_schema,
    lint_model,
)
from repro.analysis.reports import (
    ReportLinter,
    dataset_columns_from_sql,
    lint_dashboard,
)
from repro.analysis.rules import RuleLinter, lint_rules
from repro.analysis.sql import (
    SqlAnalyzer,
    analyze_script,
    catalog_from_script,
    split_statements,
)

__all__ = [
    "CODES",
    "ConcurrencyAnalyzer",
    "ConcurrencySanitizer",
    "Diagnostic",
    "DiagnosticCollector",
    "ModelLinter",
    "ReportLinter",
    "RuleLinter",
    "SanitizerReport",
    "Severity",
    "SourceSpan",
    "SqlAnalyzer",
    "analyze_concurrency",
    "analyze_script",
    "catalog_from_script",
    "dataset_columns_from_sql",
    "default_sanitizer",
    "sanitize_enabled",
    "lint_cube_schema",
    "lint_dashboard",
    "lint_model",
    "lint_rules",
    "split_statements",
]
