"""Static analysis of tenant artifacts: SQL, models, rules, reports.

The analyzers in this package check artifacts *before* deployment —
the design-time validation the platform's administration layer applies
at provisioning time — and report findings as :class:`Diagnostic`
records with stable ``ODBnnn`` codes.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticCollector,
    Severity,
    SourceSpan,
)
from repro.analysis.models import (
    ModelLinter,
    lint_cube_schema,
    lint_model,
)
from repro.analysis.reports import (
    ReportLinter,
    dataset_columns_from_sql,
    lint_dashboard,
)
from repro.analysis.rules import RuleLinter, lint_rules
from repro.analysis.sql import (
    SqlAnalyzer,
    analyze_script,
    catalog_from_script,
    split_statements,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticCollector",
    "ModelLinter",
    "ReportLinter",
    "RuleLinter",
    "Severity",
    "SourceSpan",
    "SqlAnalyzer",
    "analyze_script",
    "catalog_from_script",
    "dataset_columns_from_sql",
    "lint_cube_schema",
    "lint_dashboard",
    "lint_model",
    "lint_rules",
    "split_statements",
]
