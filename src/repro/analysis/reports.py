"""Report and dashboard validation (ODB4xx diagnostics).

Checks a :class:`~repro.reporting.definitions.DashboardDefinition`
against the columns its data sets actually produce: unknown data sets
(ODB401), chart/table specs referencing missing columns (ODB402), sort
keys outside the selected columns (ODB403), empty dashboards (ODB404)
and duplicate element names (ODB405).

Dataset shapes are described by a mapping ``dataset name -> column
names`` (``None`` marks a data set whose shape could not be inferred —
its columns are not checked).  :func:`dataset_columns_from_sql` derives
that mapping from dataset SQL via the semantic analyzer, which is how
the platform services feed this linter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.sql import SqlAnalyzer
from repro.engine.schema import Catalog
from repro.errors import EngineError
from repro.reporting.definitions import DashboardDefinition
from repro.reporting.model import ChartSpec, DataTableSpec

#: dataset name -> lowercased column names (None = shape unknown).
DatasetColumns = Dict[str, Optional[List[str]]]


def dataset_columns_from_sql(datasets: Dict[str, str],
                             catalog: Catalog,
                             views: Optional[Dict[str, Any]] = None
                             ) -> DatasetColumns:
    """Infer each dataset's output columns from its SQL.

    Queries that fail to parse or have an opaque shape map to ``None``
    — the dashboard linter then skips column-level checks for them
    (their SQL problems are reported separately by the SQL analyzer).
    """
    analyzer = SqlAnalyzer(catalog, views)
    shapes: DatasetColumns = {}
    for name, sql in datasets.items():
        try:
            from repro.engine.parser import parse_sql
            statement = parse_sql(sql)
            columns = analyzer.output_columns(statement)
        except EngineError:
            shapes[name] = None
            continue
        shapes[name] = [column for column, _type in columns] \
            if columns else None
    return shapes


class ReportLinter:
    """Static checks over one dashboard definition."""

    def lint(self, definition: DashboardDefinition,
             dataset_columns: DatasetColumns,
             collector: Optional[DiagnosticCollector] = None,
             source: Optional[str] = None) -> DiagnosticCollector:
        collector = collector if collector is not None \
            else DiagnosticCollector(source)
        rows = definition.rows
        if not rows:
            collector.warning(
                "ODB404",
                f"dashboard {definition.name!r} has no rows",
                source=source)
            return collector

        known = {name: ([column.lower() for column in columns]
                        if columns is not None else None)
                 for name, columns in dataset_columns.items()}
        seen_names: Dict[str, str] = {}
        for row in rows:
            for element in row:
                spec = element.spec
                label = getattr(spec, "name", "<unnamed>")
                if label in seen_names:
                    collector.warning(
                        "ODB405",
                        f"dashboard {definition.name!r}: duplicate "
                        f"element name {label!r}", source=source)
                else:
                    seen_names[label] = element.dataset
                if element.dataset not in known:
                    collector.error(
                        "ODB401",
                        f"element {label!r} reads unknown data set "
                        f"{element.dataset!r}", source=source)
                    continue
                columns = known[element.dataset]
                if columns is None:
                    continue  # shape unknown; skip column checks
                self._check_spec(spec, label, element.dataset,
                                 columns, collector, source)
        return collector

    def _check_spec(self, spec: Any, label: str, dataset: str,
                    columns: Sequence[str],
                    collector: DiagnosticCollector,
                    source: Optional[str]) -> None:
        def require(column: Optional[str], role: str) -> None:
            if column is None:
                return
            if column.lower() not in columns:
                collector.error(
                    "ODB402",
                    f"element {label!r}: {role} column {column!r} is "
                    f"not produced by data set {dataset!r} "
                    f"(columns: {', '.join(columns)})", source=source)

        if isinstance(spec, ChartSpec):
            require(spec.category, "category")
            require(spec.value, "value")
        elif isinstance(spec, DataTableSpec):
            for column in spec.columns:
                require(column, "table")
            if spec.sort_by is not None:
                if spec.sort_by.lower() not in [
                        column.lower() for column in spec.columns]:
                    collector.error(
                        "ODB403",
                        f"element {label!r}: sort column "
                        f"{spec.sort_by!r} is not among its table "
                        f"columns", source=source)


def lint_dashboard(definition: Any,
                   dataset_columns: DatasetColumns,
                   collector: Optional[DiagnosticCollector] = None,
                   source: Optional[str] = None) -> DiagnosticCollector:
    """Lint a dashboard definition (or its serialized dict form)."""
    collector = collector if collector is not None \
        else DiagnosticCollector(source)
    if isinstance(definition, dict):
        try:
            definition = DashboardDefinition.from_dict(definition)
        except Exception as exc:  # malformed payloads of any stripe
            collector.error("ODB404",
                            f"malformed dashboard definition: {exc}",
                            source=source)
            return collector
    return ReportLinter().lint(definition, dataset_columns,
                               collector, source)
