"""The shared diagnostics core of the static-analysis subsystem.

Every analyzer (SQL, model, rules, reporting) reports findings as
:class:`Diagnostic` records with a stable code, a severity and an
optional source span, accumulated in a :class:`DiagnosticCollector`.
Codes are grouped by artifact family:

* ``ODB1xx`` — SQL semantic analysis,
* ``ODB2xx`` — CWM/MDA model linting,
* ``ODB3xx`` — rule-DSL linting,
* ``ODB4xx`` — report/dashboard/cube validation,
* ``ODB5xx`` — concurrency / lock-discipline analysis.

Codes are *stable*: tooling and tests match on them, so a code is
never renumbered or reused for a different finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is; errors gate artifact registration."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class SourceSpan:
    """A 1-based position in the artifact's source text."""

    line: int
    column: int
    offset: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: The registry of stable diagnostic codes (code -> short title).
CODES: Dict[str, str] = {
    # -- SQL (ODB1xx) -------------------------------------------------------
    "ODB101": "unknown table",
    "ODB102": "unknown column",
    "ODB103": "ambiguous column reference",
    "ODB104": "type-mismatched comparison",
    "ODB105": "type-mismatched arithmetic",
    "ODB106": "aggregate not allowed here",
    "ODB107": "non-grouped column in aggregate query",
    "ODB108": "INSERT arity mismatch",
    "ODB109": "unknown function",
    "ODB110": "duplicate table alias",
    "ODB111": "SELECT * in a view definition",
    "ODB112": "constant predicate",
    "ODB113": "value does not fit column type",
    "ODB114": "UNION parts select different column counts",
    "ODB115": "SQL syntax error",
    # -- models (ODB2xx) ----------------------------------------------------
    "ODB201": "dangling model reference",
    "ODB202": "orphan model element",
    "ODB203": "transformation cycle",
    "ODB204": "unresolved cube/dimension reference",
    "ODB205": "required slot unset",
    "ODB206": "conflicting composite ownership",
    # -- rules (ODB3xx) -----------------------------------------------------
    "ODB301": "unbound rule variable",
    "ODB302": "duplicate rule name",
    "ODB303": "rule shadowed by identical conditions",
    "ODB304": "rule syntax error",
    # -- reporting (ODB4xx) -------------------------------------------------
    "ODB401": "unknown data set",
    "ODB402": "report references a missing column",
    "ODB403": "sort column not in report columns",
    "ODB404": "empty dashboard definition",
    "ODB405": "duplicate report element name",
    # -- concurrency (ODB5xx) ------------------------------------------------
    "ODB501": "lock-order inversion (potential deadlock)",
    "ODB502": "guarded state mutated without its lock",
    "ODB503": "blocking call while holding an exclusive lock",
    "ODB504": "non-reentrant lock re-acquired while held",
    "ODB505": "guarded-by annotation names an unknown lock",
}


@dataclass
class Diagnostic:
    """One finding of a static analyzer."""

    code: str
    severity: Severity
    message: str
    span: Optional[SourceSpan] = None
    #: The artifact the finding is about (file name, dataset name, ...).
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def __str__(self) -> str:
        where = ""
        if self.source:
            where += f"{self.source}:"
        if self.span is not None:
            where += f"{self.span}:"
        if where:
            where += " "
        return (f"{where}{self.severity.value} [{self.code}] "
                f"{self.message}")


class DiagnosticCollector:
    """Accumulates diagnostics across analyzers and artifacts."""

    def __init__(self, source: Optional[str] = None):
        #: Default artifact label stamped onto added diagnostics.
        self.source = source
        self.diagnostics: List[Diagnostic] = []

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def add(self, code: str, severity: Severity, message: str,
            span: Optional[SourceSpan] = None,
            source: Optional[str] = None) -> Diagnostic:
        diagnostic = Diagnostic(code, severity, message, span,
                                source if source is not None
                                else self.source)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def error(self, code: str, message: str,
              span: Optional[SourceSpan] = None,
              source: Optional[str] = None) -> Diagnostic:
        return self.add(code, Severity.ERROR, message, span, source)

    def warning(self, code: str, message: str,
                span: Optional[SourceSpan] = None,
                source: Optional[str] = None) -> Diagnostic:
        return self.add(code, Severity.WARNING, message, span, source)

    def info(self, code: str, message: str,
             span: Optional[SourceSpan] = None,
             source: Optional[str] = None) -> Diagnostic:
        return self.add(code, Severity.INFO, message, span, source)

    def extend(self, other: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(other)

    # -- queries ------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR
                   for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # -- rendering ----------------------------------------------------------

    def sorted(self) -> List[Diagnostic]:
        """Severity first, then source, then position."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.source or "",
                           d.span.line if d.span else 0,
                           d.span.column if d.span else 0, d.code))

    def render(self) -> str:
        """A human-readable multi-line report."""
        lines = [str(d) for d in self.sorted()]
        lines.append(f"{len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)

    def raise_if_errors(self, exception_type=None,
                        prefix: str = "artifact rejected") -> None:
        """Raise ``exception_type`` listing the errors, if any."""
        if not self.has_errors():
            return
        if exception_type is None:
            from repro.errors import AnalysisError
            exception_type = AnalysisError
        details = "; ".join(str(d) for d in self.errors)
        raise exception_type(f"{prefix}: {details}")
