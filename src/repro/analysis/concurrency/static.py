"""Lock-discipline static analysis over Python sources (ODB5xx).

The platform's serving layer promises a locking discipline — the
engine's reader-writer lock serializes mutations, short mutexes guard
caches and registries — but nothing used to *check* it.  This pass
parses a source tree with :mod:`ast` and enforces three contracts:

1. **Lock ordering** (``ODB501``).  Every lexical ``with lock:``
   nesting (plus one level of same-class method calls) contributes an
   edge to a lock-acquisition graph; a cycle in that graph is a
   potential deadlock.  Reentrant self-edges are exempt, but a plain
   ``threading.Lock`` re-acquired while held is its own finding
   (``ODB504``) — that deadlock needs no second thread.

2. **Guarded state** (``ODB502``).  Attribute assignments may carry a
   declarative ``# guarded-by: _lock`` comment.  Every mutation of an
   annotated attribute (assignment, augmented assignment, subscript
   store/delete, or a call of a known mutating method such as
   ``append``/``pop``/``clear``) must then be reached with the guard
   held: lexically inside a ``with`` over it, in a method that
   manually acquires/releases it (``BEGIN``/``COMMIT`` style), in a
   method that asserts it via ``require_exclusive``, or in a method
   whose ``def`` line declares ``# requires: _lock`` (the caller-must-
   hold contract).  ``__init__`` is exempt — the object is not shared
   yet.  An annotation naming a lock the class does not own is
   ``ODB505`` — unless it names a *virtual guard* (see
   ``VIRTUAL_GUARDS``): a discipline owned by another object, such as
   ``engine-exclusive``, the owning database's exclusive lock that
   every ``TableStorage`` mutation must run under.  The class cannot
   construct a virtual guard, so the only way a mutation site passes
   is the ``# requires:`` caller contract (or ``__init__``) — which
   is exactly the shape the MVCC storage layer promises, and what the
   runtime sanitizer's ``StorageMonitor`` checks dynamically.

3. **No blocking under an exclusive lock** (``ODB503``).  ``fsync``,
   ``sleep`` and thread/pool joins made lexically inside an
   exclusive-mode hold stall every waiter behind a syscall.  The check
   is lexical on purpose: the WAL deliberately fsyncs while the
   commit lock is held (that *is* write-ahead logging), and that call
   sits behind a function boundary — the analyzer flags the shape
   that is always avoidable, not the policy decision.  Beyond the
   built-in call shapes, a ``def`` line may carry a declarative
   ``# blocking: <reason>`` annotation (the dual of ``# requires:``):
   any call of that method name under an exclusive hold is then
   ODB503.  This is how domain-level blocking — a replica ``poll``
   that tails an on-disk WAL, a snapshot ``resync`` — gets the same
   protection as a raw ``fsync``; the regression that held the global
   shard-map lock across replica disk polls is exactly the shape this
   annotation now catches.  Matching is by name (the analysis is
   untyped), so annotate names that are unambiguous in the tree.

Findings are ordinary :class:`~repro.analysis.diagnostics.Diagnostic`
records, so they ride the same CLI and collector machinery as the
SQL/model/rule analyzers.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import (
    DiagnosticCollector,
    SourceSpan,
)

#: Constructor name -> (kind, reentrant).  ``Condition`` defaults to
#: an RLock underneath, so re-entry by the holder is safe.
LOCK_CONSTRUCTORS: Dict[str, Tuple[str, bool]] = {
    "Lock": ("lock", False),
    "RLock": ("rlock", True),
    "Condition": ("condition", True),
    "ReadWriteLock": ("rwlock", True),
    "SanitizedReadWriteLock": ("rwlock", True),
}

#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "remove", "reverse",
    "setdefault", "sort", "update",
}

#: Call shapes that block the calling thread.
BLOCKING_DOTTED = {"os.fsync", "time.sleep", "sleep"}
BLOCKING_ATTRS = {"fsync"}
#: ``.join()`` only counts when the receiver looks like a thread/pool.
JOIN_RECEIVER_HINTS = ("thread", "pool", "worker")

#: Lock methods that prove the function holds (or held) the guard.
MANUAL_HOLD_METHODS = {
    "acquire", "acquire_read", "acquire_write",
    "release", "release_read", "release_write",
    "require_exclusive",
}

#: Guard names that are disciplines, not locks the class constructs:
#: ``engine-exclusive`` means "the owning database's exclusive lock"
#: (a TableStorage never sees that lock; its methods inherit the hold
#: from Database via the ``# requires:`` caller contract).  Virtual
#: guards are exempt from ODB505 but fully enforced by ODB502.
VIRTUAL_GUARDS = {"engine-exclusive"}

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w-]*)")
_REQUIRES = re.compile(r"#\s*requires:\s*([A-Za-z_][\w-]*)")
_BLOCKING = re.compile(r"#\s*blocking:\s*(.+?)\s*$")


@dataclass(frozen=True)
class LockDecl:
    """One lock the analyzer knows about."""

    key: str          # "Class._lock" or "<module>.name"
    kind: str         # lock | rlock | condition | rwlock
    reentrant: bool
    source: str
    line: int


@dataclass(frozen=True)
class _Hold:
    """One entry of the lexical held-locks stack."""

    key: str
    exclusive: bool
    line: int


@dataclass
class _GuardNote:
    attr: str
    guard: str
    line: int


@dataclass
class _ClassInfo:
    name: str
    source: str
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    guards: List[_GuardNote] = field(default_factory=list)
    #: method name -> guard names its ``def`` line requires.
    requires: Dict[str, Set[str]] = field(default_factory=dict)
    #: method name -> the ``# blocking:`` reason its ``def`` declares.
    blocking: Dict[str, str] = field(default_factory=dict)
    #: method name -> lock keys it acquires lexically (any depth).
    acquires: Dict[str, Set[str]] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _constructor_kind(value: ast.AST) -> Optional[Tuple[str, bool]]:
    """(kind, reentrant) when ``value`` constructs a known lock."""
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted is None:
        return None
    return LOCK_CONSTRUCTORS.get(dotted.rsplit(".", 1)[-1])


class _ModuleScan:
    """Everything one file contributes to the analysis."""

    def __init__(self, path: Path, label: str):
        self.path = path
        self.label = label
        self.lines = path.read_text().splitlines()
        self.tree = ast.parse(path.read_text(), filename=str(path))
        self.classes: Dict[str, _ClassInfo] = {}
        #: module-level lock names -> LockDecl.
        self.module_locks: Dict[str, LockDecl] = {}
        #: module-level function name -> ``# blocking:`` reason.
        self.module_blocking: Dict[str, str] = {}
        self._collect()

    # -- collection ----------------------------------------------------------

    def _line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def _collect(self) -> None:
        stem = self.path.stem
        for node in self.tree.body:
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                made = _constructor_kind(node.value)
                if made is not None:
                    name = node.targets[0].id
                    self.module_locks[name] = LockDecl(
                        key=f"{stem}.{name}", kind=made[0],
                        reentrant=made[1], source=self.label,
                        line=node.lineno)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                match = _BLOCKING.search(self._line(node.lineno))
                if match:
                    self.module_blocking[node.name] = match.group(1)

    def _collect_class(self, node: ast.ClassDef) -> None:
        info = _ClassInfo(name=node.name, source=self.label)
        self.classes[node.name] = info
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            info.methods[item.name] = item
            required = set()
            match = _REQUIRES.search(self._line(item.lineno))
            if match:
                required.add(match.group(1))
            if required:
                info.requires[item.name] = required
            blocking = _BLOCKING.search(self._line(item.lineno))
            if blocking:
                info.blocking[item.name] = blocking.group(1)
            for statement in ast.walk(item):
                self._note_self_assign(info, statement)
            info.acquires[item.name] = {
                hold.key for hold in _iter_acquisitions(
                    item, self, info)}

    def _note_self_assign(self, info: _ClassInfo,
                          statement: ast.AST) -> None:
        """Record lock constructions and guarded-by annotations."""
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            return
        targets = statement.targets \
            if isinstance(statement, ast.Assign) \
            else [statement.target]
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            made = _constructor_kind(statement.value) \
                if statement.value is not None else None
            if made is not None:
                info.locks.setdefault(target.attr, LockDecl(
                    key=f"{info.name}.{target.attr}", kind=made[0],
                    reentrant=made[1], source=info.source,
                    line=statement.lineno))
            # The annotation may sit on any line of a multi-line
            # assignment (e.g. after a wrapped type annotation).
            last = getattr(statement, "end_lineno", statement.lineno) \
                or statement.lineno
            for lineno in range(statement.lineno, last + 1):
                match = _GUARDED_BY.search(self._line(lineno))
                if match:
                    info.guards.append(_GuardNote(
                        attr=target.attr, guard=match.group(1),
                        line=statement.lineno))
                    break


def _resolve_lock(expr: ast.AST, scan: _ModuleScan,
                  info: Optional[_ClassInfo]) \
        -> Optional[Tuple[LockDecl, bool]]:
    """(decl, exclusive) when a ``with`` item acquires a known lock.

    Recognized shapes: ``with self._lock:`` (mutex — exclusive),
    ``with lock:`` (module-level mutex), ``with x.shared():``,
    ``with x.exclusive():`` and ``with x.held(mode):`` (reader-writer;
    ``held`` is treated as exclusive — order edges do not depend on
    the mode and the conservative reading catches more hazards).
    """
    exclusive = True
    if isinstance(expr, ast.Call):
        dotted = _dotted(expr.func)
        if dotted is None or "." not in dotted:
            return None
        receiver, method = dotted.rsplit(".", 1)
        if method == "shared":
            exclusive = False
        elif method not in ("exclusive", "held"):
            return None
        expr_dotted = receiver
    else:
        expr_dotted = _dotted(expr)
        if expr_dotted is None:
            return None
    decl = _lookup_lock(expr_dotted, scan, info)
    if decl is None:
        return None
    return decl, exclusive


def _lookup_lock(dotted: str, scan: _ModuleScan,
                 info: Optional[_ClassInfo]) -> Optional[LockDecl]:
    if dotted.startswith("self.") and info is not None:
        return info.locks.get(dotted[len("self."):])
    if "." not in dotted:
        return scan.module_locks.get(dotted)
    return None


def _iter_acquisitions(func: ast.AST, scan: _ModuleScan,
                       info: Optional[_ClassInfo]) -> List[_Hold]:
    """Every lock acquisition lexically inside ``func``."""
    holds: List[_Hold] = []
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            resolved = _resolve_lock(item.context_expr, scan, info)
            if resolved is not None:
                decl, exclusive = resolved
                holds.append(_Hold(decl.key, exclusive, node.lineno))
    return holds


class ConcurrencyAnalyzer:
    """Runs the three lock-discipline checks over a set of files."""

    def __init__(self) -> None:
        self.locks: Dict[str, LockDecl] = {}
        #: (from, to) -> (source, line, description) first witness.
        self.edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        self._scans: List[_ModuleScan] = []
        #: ``# blocking:``-annotated callable name -> declared reason,
        #: gathered across every scanned file before the checks run.
        self._blocking_methods: Dict[str, str] = {}

    # -- entry points --------------------------------------------------------

    def add_file(self, path: Path, label: Optional[str] = None) -> None:
        self._scans.append(
            _ModuleScan(path, label or str(path)))

    def run(self, collector: Optional[DiagnosticCollector] = None) \
            -> DiagnosticCollector:
        collector = collector if collector is not None \
            else DiagnosticCollector()
        for scan in self._scans:
            for decl in scan.module_locks.values():
                self.locks[decl.key] = decl
            self._blocking_methods.update(scan.module_blocking)
            for info in scan.classes.values():
                for decl in info.locks.values():
                    self.locks[decl.key] = decl
                self._blocking_methods.update(info.blocking)
        for scan in self._scans:
            self._check_module(scan, collector)
        self._check_cycles(collector)
        return collector

    # -- per-module checks ---------------------------------------------------

    def _check_module(self, scan: _ModuleScan,
                      collector: DiagnosticCollector) -> None:
        for info in scan.classes.values():
            self._check_annotations(scan, info, collector)
            for name, func in info.methods.items():
                self._walk_function(scan, info, name, func, collector)
        # Module-level functions participate in ordering/blocking too.
        for node in scan.tree.body:
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                self._walk_function(scan, None, node.name, node,
                                    collector)

    def _check_annotations(self, scan: _ModuleScan, info: _ClassInfo,
                           collector: DiagnosticCollector) -> None:
        for note in info.guards:
            if note.guard not in info.locks \
                    and note.guard not in VIRTUAL_GUARDS:
                collector.warning(
                    "ODB505",
                    f"{info.name}.{note.attr} is guarded-by "
                    f"{note.guard!r}, but {info.name} constructs no "
                    f"such lock",
                    span=SourceSpan(note.line, 1),
                    source=info.source)
        for method, required in info.requires.items():
            for guard in required:
                if guard not in info.locks \
                        and guard not in VIRTUAL_GUARDS:
                    func = info.methods[method]
                    collector.warning(
                        "ODB505",
                        f"{info.name}.{method} requires {guard!r}, "
                        f"but {info.name} constructs no such lock",
                        span=SourceSpan(func.lineno, 1),
                        source=info.source)

    # -- the main walk -------------------------------------------------------

    def _walk_function(self, scan: _ModuleScan,
                       info: Optional[_ClassInfo], name: str,
                       func: ast.AST,
                       collector: DiagnosticCollector) -> None:
        guarded_attrs: Dict[str, str] = {}
        method_guards: Set[str] = set()
        if info is not None:
            guarded_attrs = {note.attr: note.guard
                             for note in info.guards
                             if note.guard in info.locks
                             or note.guard in VIRTUAL_GUARDS}
            method_guards = self._method_held_guards(info, name, func)
        self._walk_body(list(ast.iter_child_nodes(func)), [],
                        scan, info, name, guarded_attrs,
                        method_guards, collector)

    def _method_held_guards(self, info: _ClassInfo, name: str,
                            func: ast.AST) -> Set[str]:
        """Guards the whole method may assume held.

        ``__init__`` owns the object alone; a ``# requires:`` line is
        an explicit caller contract; and a manual
        acquire/release/require call on ``self.<guard>`` anywhere in
        the body proves the hold spans the method (the
        ``BEGIN``-acquires / ``COMMIT``-releases split).
        """
        held: Set[str] = set()
        if name == "__init__":
            held.update(info.locks)
            held.update(VIRTUAL_GUARDS)
        held.update(info.requires.get(name, ()))
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None or "." not in dotted:
                continue
            receiver, method = dotted.rsplit(".", 1)
            if method in MANUAL_HOLD_METHODS \
                    and receiver.startswith("self."):
                attr = receiver[len("self."):]
                if attr in info.locks:
                    held.add(attr)
        return held

    def _walk_body(self, nodes: Sequence[ast.AST], held: List[_Hold],
                   scan: _ModuleScan, info: Optional[_ClassInfo],
                   func_name: str, guarded_attrs: Dict[str, str],
                   method_guards: Set[str],
                   collector: DiagnosticCollector) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                # Nested defs run later, under whatever locks their
                # caller holds — a fresh lexical context.
                self._walk_body(list(ast.iter_child_nodes(node)), [],
                                scan, info, func_name, guarded_attrs,
                                method_guards, collector)
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: List[_Hold] = []
                for item in node.items:
                    resolved = _resolve_lock(item.context_expr, scan,
                                             info)
                    if resolved is None:
                        continue
                    decl, exclusive = resolved
                    hold = _Hold(decl.key, exclusive, node.lineno)
                    self._note_acquisition(hold, held, scan, func_name,
                                           collector)
                    acquired.append(hold)
                self._walk_body(node.body, held + acquired, scan,
                                info, func_name, guarded_attrs,
                                method_guards, collector)
                continue
            self._check_node(node, held, scan, info, func_name,
                             guarded_attrs, method_guards, collector)
            self._walk_body(list(ast.iter_child_nodes(node)), held,
                            scan, info, func_name, guarded_attrs,
                            method_guards, collector)

    def _note_acquisition(self, hold: _Hold, held: List[_Hold],
                          scan: _ModuleScan, func_name: str,
                          collector: DiagnosticCollector) -> None:
        decl = self.locks.get(hold.key)
        for outer in held:
            if outer.key == hold.key:
                if decl is not None and not decl.reentrant:
                    collector.error(
                        "ODB504",
                        f"{hold.key} is a non-reentrant lock "
                        f"acquired at line {hold.line} while already "
                        f"held since line {outer.line} "
                        f"(self-deadlock)",
                        span=SourceSpan(hold.line, 1),
                        source=scan.label)
                continue
            self.edges.setdefault(
                (outer.key, hold.key),
                (scan.label, hold.line,
                 f"{func_name} acquires {hold.key} while holding "
                 f"{outer.key}"))

    def _check_node(self, node: ast.AST, held: List[_Hold],
                    scan: _ModuleScan, info: Optional[_ClassInfo],
                    func_name: str, guarded_attrs: Dict[str, str],
                    method_guards: Set[str],
                    collector: DiagnosticCollector) -> None:
        # 1. Same-class call propagation: one level of ordering edges
        #    plus non-reentrant self-acquisition through a helper.
        if isinstance(node, ast.Call) and info is not None and held:
            dotted = _dotted(node.func)
            if dotted is not None and dotted.startswith("self.") \
                    and "." not in dotted[len("self."):]:
                callee = dotted[len("self."):]
                for key in sorted(
                        info.acquires.get(callee, ())):
                    for outer in held:
                        if outer.key == key:
                            decl = self.locks.get(key)
                            if decl is not None \
                                    and not decl.reentrant:
                                collector.error(
                                    "ODB504",
                                    f"{func_name} calls "
                                    f"self.{callee}() at line "
                                    f"{node.lineno} which re-acquires "
                                    f"non-reentrant {key} already "
                                    f"held (self-deadlock)",
                                    span=SourceSpan(node.lineno, 1),
                                    source=scan.label)
                            continue
                        self.edges.setdefault(
                            (outer.key, key),
                            (scan.label, node.lineno,
                             f"{func_name} calls self.{callee}() "
                             f"which acquires {key} while holding "
                             f"{outer.key}"))
        # 2. Blocking call under an exclusive hold.
        if isinstance(node, ast.Call):
            exclusive_holds = [hold for hold in held if hold.exclusive]
            if exclusive_holds:
                blocking = self._blocking_reason(node)
                if blocking is not None:
                    collector.warning(
                        "ODB503",
                        f"{func_name} makes blocking call "
                        f"{blocking} while holding exclusive "
                        f"{exclusive_holds[-1].key}",
                        span=SourceSpan(node.lineno, 1),
                        source=scan.label)
        # 3. Guarded-state mutations.
        if info is not None and guarded_attrs:
            for attr, line in self._mutated_attrs(node):
                guard = guarded_attrs.get(attr)
                if guard is None:
                    continue
                if guard in method_guards:
                    continue
                key = f"{info.name}.{guard}"
                if any(hold.key == key and hold.exclusive
                       for hold in held):
                    continue
                collector.error(
                    "ODB502",
                    f"{info.name}.{attr} is guarded-by {guard!r} "
                    f"but {func_name} mutates it without holding "
                    f"the lock",
                    span=SourceSpan(line, 1),
                    source=scan.label)

    def _blocking_reason(self, node: ast.Call) -> Optional[str]:
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        if dotted in BLOCKING_DOTTED:
            return f"{dotted}()"
        tail = dotted.rsplit(".", 1)[-1]
        if tail in BLOCKING_ATTRS:
            return f"{dotted}()"
        if tail == "join" and "." in dotted:
            receiver = dotted.rsplit(".", 1)[0].lower()
            if any(hint in receiver for hint in JOIN_RECEIVER_HINTS):
                return f"{dotted}()"
        declared = self._blocking_methods.get(tail)
        if declared is not None:
            return f"{dotted}() (# blocking: {declared})"
        return None

    @staticmethod
    def _mutated_attrs(node: ast.AST) -> List[Tuple[str, int]]:
        """``self.X`` attributes this one statement/expression mutates."""
        found: List[Tuple[str, int]] = []

        def self_attr(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Attribute) \
                    and isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self":
                return expr.attr
            return None

        def target_attrs(target: ast.AST) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    target_attrs(element)
                return
            attr = self_attr(target)
            if attr is not None:
                found.append((attr, target.lineno))
                return
            if isinstance(target, ast.Subscript):
                attr = self_attr(target.value)
                if attr is not None:
                    found.append((attr, target.lineno))

        if isinstance(node, ast.Assign):
            for target in node.targets:
                target_attrs(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target_attrs(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                target_attrs(target)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS:
            attr = self_attr(node.func.value)
            if attr is not None:
                found.append((attr, node.lineno))
        return found

    # -- cycle detection -----------------------------------------------------

    def _check_cycles(self, collector: DiagnosticCollector) -> None:
        """Tarjan over the acquisition graph; one ODB501 per SCC."""
        graph: Dict[str, Set[str]] = {}
        for source, target in self.edges:
            graph.setdefault(source, set()).add(target)
            graph.setdefault(target, set())
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for successor in sorted(graph[node]):
                if successor not in index:
                    strongconnect(successor)
                    low[node] = min(low[node], low[successor])
                elif successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)

        for component in components:
            if len(component) < 2:
                continue
            members = sorted(component)
            witnesses = []
            for pair, (source, line, description) in sorted(
                    self.edges.items()):
                if pair[0] in component and pair[1] in component:
                    witnesses.append(
                        f"{source}:{line} ({description})")
            first = sorted(
                (source, line) for pair, (source, line, _)
                in self.edges.items()
                if pair[0] in component and pair[1] in component)[0]
            collector.error(
                "ODB501",
                f"locks {', '.join(members)} are acquired in "
                f"conflicting orders: " + "; ".join(witnesses),
                span=SourceSpan(first[1], 1),
                source=first[0])


def analyze_concurrency(root: Path,
                        collector: Optional[DiagnosticCollector]
                        = None) -> DiagnosticCollector:
    """Run the lock-discipline pass over ``root``.

    ``root`` may be a single ``.py`` file or a directory (scanned
    recursively, sorted for determinism).  File labels in the
    diagnostics are relative to ``root``'s parent so they read like
    repository paths.
    """
    root = Path(root)
    analyzer = ConcurrencyAnalyzer()
    if root.is_file():
        analyzer.add_file(root, root.name)
    else:
        for path in sorted(root.rglob("*.py")):
            analyzer.add_file(path, str(path.relative_to(root)))
    return analyzer.run(collector)
