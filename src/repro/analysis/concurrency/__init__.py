"""Concurrency correctness tooling: static analysis + runtime sanitizer.

Two sides of one contract:

* :mod:`repro.analysis.concurrency.static` lints Python sources for
  lock-discipline violations (``ODB5xx`` diagnostics): lock-order
  inversions, mutations of ``# guarded-by:``-annotated state outside
  the guard, blocking calls under an exclusive lock, and non-reentrant
  self-acquisition.
* :mod:`repro.analysis.concurrency.sanitizer` watches live executions
  (``REPRO_SANITIZE=1`` / ``Database(sanitize=True)``): a runtime
  lock-order graph with cycle detection, and storage-access invariant
  checks against the engine's reader-writer lock.

The static pass runs over ``src/repro`` itself in the tier-1 suite
(``tests/test_analysis_concurrency_selfcheck.py``), so a refactor that
breaks the locking discipline fails the build before it races.
"""

from repro.analysis.concurrency.sanitizer import (
    SANITIZE_ENV,
    ConcurrencySanitizer,
    SanitizedReadWriteLock,
    SanitizerReport,
    StorageMonitor,
    default_sanitizer,
    reset_default_sanitizer,
    sanitize_enabled,
)
from repro.analysis.concurrency.static import (
    ConcurrencyAnalyzer,
    LockDecl,
    analyze_concurrency,
)

__all__ = [
    "SANITIZE_ENV",
    "ConcurrencyAnalyzer",
    "ConcurrencySanitizer",
    "LockDecl",
    "SanitizedReadWriteLock",
    "SanitizerReport",
    "StorageMonitor",
    "analyze_concurrency",
    "default_sanitizer",
    "reset_default_sanitizer",
    "sanitize_enabled",
]
