"""Opt-in runtime race/deadlock sanitizer for the serving stack.

The static pass (:mod:`repro.analysis.concurrency.static`) checks the
*source*; this module checks *executions*.  With ``REPRO_SANITIZE=1``
in the environment (or ``Database(sanitize=True)``), every engine
database swaps its :class:`~repro.engine.locking.ReadWriteLock` for a
:class:`SanitizedReadWriteLock` and attaches a
:class:`StorageMonitor` to its table storages.  The sanitizer then
watches three invariants while real workloads run:

* **lock ordering** — each successful acquisition made while other
  sanitized locks are held adds an edge to a process-wide runtime
  lock-order graph; a cycle means two threads can deadlock, even if
  this run happened to get away with it;
* **write-without-exclusive-lock** — every
  :class:`~repro.engine.storage.TableStorage` mutation must run on a
  thread that holds the exclusive side of its database's lock
  (recovery replay, which is single-threaded by construction, is
  exempt via the database's ``_suppress_redo`` flag);
* **reader-sees-writer** — a *raw* scan by a thread holding no side
  of the lock while *another* thread holds the exclusive side has
  observed state mid-mutation (MVCC snapshot reads are exempt: they
  read version chains, not the live rows);
* **snapshot-sees-future** — an MVCC snapshot read pinned at a commit
  number the database has not yet published would observe effects of
  an uncommitted (or unborn) transaction.

Violations never raise into the workload: they accumulate as
structured :class:`SanitizerReport` records on a
:class:`ConcurrencySanitizer`, and the test batteries assert the
report list is empty.  The lock state needed for the checks comes
from the public :meth:`~repro.engine.locking.ReadWriteLock.mode` /
:meth:`~repro.engine.locking.ReadWriteLock.holders` introspection API
— the sanitizer never reaches into lock privates.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.locking import EXCLUSIVE, SHARED, ReadWriteLock

#: Environment variable that turns the sanitizer on platform-wide.
SANITIZE_ENV = "REPRO_SANITIZE"
_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for sanitized databases."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class SanitizerReport:
    """One observed violation of a runtime concurrency invariant."""

    kind: str       # lock-order-inversion | unsynchronized-write |
                    # reader-sees-writer | snapshot-sees-future
    message: str
    thread: str
    #: Extra context: lock labels, table/database names.
    details: Tuple[Tuple[str, str], ...] = ()

    def __str__(self) -> str:
        extra = "".join(f" {key}={value}"
                        for key, value in self.details)
        return f"[{self.kind}] {self.message} (thread {self.thread}" \
               f"{extra})"


class ConcurrencySanitizer:
    """Collects acquisition history and invariant violations.

    One sanitizer spans every database opted into it (the module
    default spans the process), because deadlocks live *between*
    locks: a cycle across two databases' locks is exactly the bug a
    per-database view would miss.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.reports: List[SanitizerReport] = []   # guarded-by: _mutex
        #: Lock id -> human label for reports.
        self._labels: Dict[int, str] = {}          # guarded-by: _mutex
        #: Runtime lock-order edges with a first-witness description.
        self._edges: Dict[Tuple[int, int], str] = {}  # guarded-by: _mutex
        self._reported_cycles: Set[Tuple[int, ...]] = set()  # guarded-by: _mutex
        #: Thread ident -> stack of lock ids it holds (with reentry).
        self._held = threading.local()
        #: Total acquisitions observed (cheap liveness signal for
        #: "the battery really ran sanitized" assertions).
        self.acquisitions = 0                      # guarded-by: _mutex
        #: Total MVCC snapshot reads validated (liveness signal: under
        #: MVCC the read path takes no lock, so acquisitions alone
        #: would undercount how much the sanitizer actually watched).
        self.snapshot_reads = 0                    # guarded-by: _mutex

    # -- bookkeeping ---------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def register_lock(self, lock: "SanitizedReadWriteLock",
                      label: str) -> None:
        with self._mutex:
            self._labels[id(lock)] = label

    def _label(self, lock_id: int) -> str:
        return self._labels.get(lock_id, f"lock@{lock_id:#x}")

    def report(self, kind: str, message: str,
               **details: str) -> SanitizerReport:
        entry = SanitizerReport(
            kind=kind, message=message,
            thread=threading.current_thread().name,
            details=tuple(sorted(details.items())))
        with self._mutex:
            self.reports.append(entry)
        return entry

    # -- lock events ---------------------------------------------------------

    def before_acquire(self, lock: "SanitizedReadWriteLock",
                       mode: str) -> None:
        """Record order edges from every held lock to this one.

        Called *before* blocking: a pair of threads about to deadlock
        still contributes both edges, so the inversion is on record
        even when the run hangs (the batteries' join timeouts turn
        that into a failure with the graph available post-mortem).
        """
        stack = self._stack()
        if not stack:
            return
        target = id(lock)
        if target in stack:
            return  # reentrant re-acquisition, not an ordering event
        new_edges = []
        for source in dict.fromkeys(stack):
            if source != target:
                new_edges.append((source, target))
        with self._mutex:
            for edge in new_edges:
                if edge not in self._edges:
                    self._edges[edge] = (
                        f"{threading.current_thread().name} acquired "
                        f"{self._label(edge[1])} ({mode}) while "
                        f"holding {self._label(edge[0])}")
            cycle = self._find_cycle_locked()
        if cycle is not None:
            self._report_cycle(cycle)

    def after_acquire(self, lock: "SanitizedReadWriteLock",
                      mode: str) -> None:
        self._stack().append(id(lock))
        with self._mutex:
            self.acquisitions += 1

    def count_snapshot_read(self) -> None:
        with self._mutex:
            self.snapshot_reads += 1

    def after_release(self, lock: "SanitizedReadWriteLock",
                      mode: str) -> None:
        stack = self._stack()
        target = id(lock)
        # Pop the most recent hold of this lock (reentrant holds
        # release innermost-first).
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == target:
                del stack[position]
                return

    # -- cycle detection -----------------------------------------------------

    def _find_cycle_locked(self) -> Optional[List[int]]:  # requires: _mutex
        """A cycle in the edge graph, if any (mutex already held)."""
        graph: Dict[int, List[int]] = {}
        for source, target in self._edges:
            graph.setdefault(source, []).append(target)
            graph.setdefault(target, [])
        visiting: Set[int] = set()
        done: Set[int] = set()
        path: List[int] = []

        def visit(node: int) -> Optional[List[int]]:
            visiting.add(node)
            path.append(node)
            for successor in graph[node]:
                if successor in visiting:
                    return path[path.index(successor):]
                if successor not in done:
                    found = visit(successor)
                    if found is not None:
                        return found
            visiting.discard(node)
            done.add(node)
            path.pop()
            return None

        for node in graph:
            if node not in done:
                found = visit(node)
                if found is not None:
                    cycle = tuple(sorted(found))
                    if cycle in self._reported_cycles:
                        return None
                    self._reported_cycles.add(cycle)
                    return found
        return None

    def _report_cycle(self, cycle: List[int]) -> None:
        labels = [self._label(lock_id) for lock_id in cycle]
        with self._mutex:
            witnesses = [
                description
                for (source, target), description
                in sorted(self._edges.items())
                if source in cycle and target in cycle]
        self.report(
            "lock-order-inversion",
            f"cyclic acquisition order between "
            f"{', '.join(sorted(labels))}: " + "; ".join(witnesses),
            locks=",".join(sorted(labels)))

    # -- results -------------------------------------------------------------

    def render(self) -> str:
        with self._mutex:
            reports = list(self.reports)
        lines = [str(report) for report in reports]
        lines.append(f"{len(reports)} sanitizer report(s), "
                     f"{self.acquisitions} acquisition(s) observed")
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise AssertionError when any violation was recorded."""
        with self._mutex:
            count = len(self.reports)
        if count:
            raise AssertionError(self.render())


class SanitizedReadWriteLock(ReadWriteLock):
    """A :class:`ReadWriteLock` that narrates to a sanitizer.

    Same semantics, same fairness: only the acquisition/release
    events are mirrored into the sanitizer's per-thread history.
    """

    def __init__(self, label: str,
                 sanitizer: ConcurrencySanitizer) -> None:
        super().__init__()
        self.label = label
        self.sanitizer = sanitizer
        sanitizer.register_lock(self, label)

    def acquire_read(self) -> None:
        self.sanitizer.before_acquire(self, SHARED)
        super().acquire_read()
        self.sanitizer.after_acquire(self, SHARED)

    def release_read(self) -> None:
        super().release_read()
        self.sanitizer.after_release(self, SHARED)

    def acquire_write(self) -> None:
        self.sanitizer.before_acquire(self, EXCLUSIVE)
        super().acquire_write()
        self.sanitizer.after_acquire(self, EXCLUSIVE)

    def release_write(self) -> None:
        super().release_write()
        self.sanitizer.after_release(self, EXCLUSIVE)


class StorageMonitor:
    """Checks storage access against the owning database's lock."""

    def __init__(self, database, sanitizer: ConcurrencySanitizer):
        self._database = database
        self._sanitizer = sanitizer

    def on_write(self, table: str) -> None:
        database = self._database
        if database._suppress_redo:
            # Recovery replay runs single-threaded before the
            # database is shared; the lock contract starts after.
            return
        lock = database._lock
        if not lock.owned_exclusively():
            self._sanitizer.report(
                "unsynchronized-write",
                f"table {table!r} of database {database.name!r} "
                f"mutated without the exclusive lock "
                f"(lock mode: {lock.mode()})",
                database=database.name, table=table)

    def on_read(self, table: str) -> None:
        lock = self._database._lock
        if lock.mode() == EXCLUSIVE \
                and threading.get_ident() not in lock.holders():
            self._sanitizer.report(
                "reader-sees-writer",
                f"table {table!r} of database "
                f"{self._database.name!r} scanned while another "
                f"thread holds the exclusive lock",
                database=self._database.name, table=table)

    def on_snapshot_read(self, table: str, cn: int) -> None:
        """Validate an MVCC snapshot read against the commit horizon.

        Snapshot reads take no lock, so the pre-MVCC
        reader-sees-writer check does not apply; what must hold
        instead is that the snapshot is pinned at a commit number the
        database has actually published — a snapshot "from the
        future" would admit rows whose transaction has not committed.
        """
        self._sanitizer.count_snapshot_read()
        if cn > self._database.committed_cn:
            self._sanitizer.report(
                "snapshot-sees-future",
                f"table {table!r} of database "
                f"{self._database.name!r} read through a snapshot "
                f"pinned at cn={cn} beyond the committed horizon "
                f"cn={self._database.committed_cn}",
                database=self._database.name, table=table,
                cn=str(cn))


# -- the process-wide default sanitizer ----------------------------------------

_default: Optional[ConcurrencySanitizer] = None
_default_mutex = threading.Lock()


def default_sanitizer() -> ConcurrencySanitizer:
    """The process-wide sanitizer ``REPRO_SANITIZE=1`` databases use."""
    global _default
    with _default_mutex:
        if _default is None:
            _default = ConcurrencySanitizer()
        return _default


def reset_default_sanitizer() -> ConcurrencySanitizer:
    """Install (and return) a fresh default sanitizer.

    Tests call this between scenarios so one battery's acquisition
    graph cannot leak edges into the next.
    """
    global _default
    with _default_mutex:
        _default = ConcurrencySanitizer()
        return _default
