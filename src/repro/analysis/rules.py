"""Static lint for the rule DSL (ODB3xx diagnostics).

Re-scans rule text with the same grammar as
:func:`repro.rules.dsl.parse_rules` but without building executable
closures, so broken rules produce diagnostics instead of exceptions.
Checks: structural/expression syntax (ODB304), duplicate rule names
(ODB302), unbound variables in conditions and actions (ODB301), and
rules shadowed by an earlier rule with identical conditions (ODB303).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import DiagnosticCollector, SourceSpan
from repro.errors import RuleSyntaxError
from repro.rules.dsl import (
    _ACTION_LINE,
    _CONDITION_LINE,
    _INSERT_ARG,
    _RULE_HEADER,
    _SafeEvaluator,
    _split_kwargs,
)


@dataclass
class _Condition:
    variable: str
    fact_type: str
    expression: str
    line: int


@dataclass
class _Action:
    verb: str
    args: str
    line: int


@dataclass
class _ScannedRule:
    name: str
    line: int
    conditions: List[_Condition] = field(default_factory=list)
    actions: List[_Action] = field(default_factory=list)

    def signature(self) -> Tuple[Tuple[str, str, str], ...]:
        """A normalized key for shadowing detection: the conditions a
        fact set must satisfy, ignoring variable spelling."""
        normalized = []
        renames = {condition.variable: f"${index}"
                   for index, condition in enumerate(self.conditions)}
        for condition in self.conditions:
            expression = condition.expression
            for old, new in renames.items():
                expression = _rename_identifier(expression, old, new)
            normalized.append(
                (renames[condition.variable], condition.fact_type,
                 " ".join(expression.split())))
        return tuple(normalized)


def _rename_identifier(text: str, old: str, new: str) -> str:
    """Rename whole-word identifier occurrences (cheap, regex-free)."""
    out: List[str] = []
    index = 0
    length = len(text)
    while index < length:
        if text.startswith(old, index):
            before = text[index - 1] if index else ""
            after_index = index + len(old)
            after = text[after_index] if after_index < length else ""
            if not (before.isalnum() or before == "_") \
                    and not (after.isalnum() or after == "_"):
                out.append(new)
                index = after_index
                continue
        out.append(text[index])
        index += 1
    return "".join(out)


def _expression_names(expression: str) -> Tuple[Set[str], Set[str]]:
    """(bare names, attribute-access base names) of an expression.

    Raises RuleSyntaxError when the expression is not valid rule-DSL.
    """
    evaluator = _SafeEvaluator(expression)  # validates the whitelist
    tree = evaluator.tree
    bases: Set[str] = set()
    base_ids = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name):
            bases.add(node.value.id)
            base_ids.add(id(node.value))
    bare = {node.id for node in ast.walk(tree)
            if isinstance(node, ast.Name) and id(node) not in base_ids}
    return bare, bases


class RuleLinter:
    """Static analysis over rule-DSL source text."""

    def lint(self, text: str,
             collector: Optional[DiagnosticCollector] = None,
             source: Optional[str] = None) -> DiagnosticCollector:
        collector = collector if collector is not None \
            else DiagnosticCollector(source)
        scanned = self._scan(text, collector, source)
        if scanned is None:
            return collector

        seen_names: Dict[str, int] = {}
        seen_signatures: Dict[Tuple, _ScannedRule] = {}
        for rule in scanned:
            if rule.name in seen_names:
                collector.error(
                    "ODB302",
                    f"duplicate rule name {rule.name!r} (first defined "
                    f"on line {seen_names[rule.name]})",
                    SourceSpan(rule.line, 1), source)
            else:
                seen_names[rule.name] = rule.line
            self._check_bindings(rule, collector, source)
            signature = rule.signature()
            earlier = seen_signatures.get(signature)
            if earlier is not None:
                collector.warning(
                    "ODB303",
                    f"rule {rule.name!r} has the same conditions as "
                    f"earlier rule {earlier.name!r} (line "
                    f"{earlier.line}) and is shadowed by it",
                    SourceSpan(rule.line, 1), source)
            else:
                seen_signatures[signature] = rule
        return collector

    # -- structural scan ------------------------------------------------------

    def _scan(self, text: str, collector: DiagnosticCollector,
              source: Optional[str]) -> Optional[List[_ScannedRule]]:
        lines = [line.strip() for line in text.splitlines()]
        rules: List[_ScannedRule] = []
        index = 0

        def syntax_error(message: str, line_index: int) -> None:
            collector.error("ODB304", message,
                            SourceSpan(line_index + 1, 1), source)

        def next_meaningful(position: int) -> int:
            while position < len(lines) \
                    and (not lines[position]
                         or lines[position].startswith("#")):
                position += 1
            return position

        while True:
            index = next_meaningful(index)
            if index >= len(lines):
                break
            header = _RULE_HEADER.match(lines[index])
            if header is None:
                syntax_error(
                    f"expected rule header, got {lines[index]!r}", index)
                return None
            rule = _ScannedRule(header.group("name"), index + 1)
            index = next_meaningful(index + 1)
            if index >= len(lines) or lines[index] != "when":
                syntax_error(
                    f"rule {rule.name!r}: expected 'when'",
                    min(index, len(lines) - 1))
                return None
            index += 1
            while True:
                index = next_meaningful(index)
                if index >= len(lines):
                    syntax_error(
                        f"rule {rule.name!r}: missing 'then'",
                        len(lines) - 1)
                    return None
                if lines[index] == "then":
                    index += 1
                    break
                match = _CONDITION_LINE.match(lines[index])
                if match is None:
                    syntax_error(
                        f"rule {rule.name!r}: bad condition "
                        f"{lines[index]!r}", index)
                    return None
                rule.conditions.append(_Condition(
                    match.group("var"), match.group("type"),
                    match.group("expr").strip(), index + 1))
                index += 1
            while True:
                index = next_meaningful(index)
                if index >= len(lines):
                    syntax_error(
                        f"rule {rule.name!r}: missing 'end'",
                        len(lines) - 1)
                    return None
                if lines[index] == "end":
                    index += 1
                    break
                match = _ACTION_LINE.match(lines[index])
                if match is None:
                    syntax_error(
                        f"rule {rule.name!r}: cannot parse action "
                        f"line {lines[index]!r}", index)
                    return None
                rule.actions.append(_Action(
                    match.group("verb"),
                    match.group("args").strip(), index + 1))
                index += 1
            if not rule.actions:
                syntax_error(f"rule {rule.name!r} has no actions",
                             rule.line - 1)
            rules.append(rule)
        if not rules:
            collector.error("ODB304", "no rules found in source text",
                            None, source)
            return None
        return rules

    # -- binding analysis -----------------------------------------------------

    def _check_bindings(self, rule: _ScannedRule,
                        collector: DiagnosticCollector,
                        source: Optional[str]) -> None:
        bound: Set[str] = set()
        for condition in rule.conditions:
            available = bound | {condition.variable}
            if condition.expression:
                self._check_expression(
                    condition.expression, available, condition.line,
                    rule, collector, source, conditions_scope=True)
            bound.add(condition.variable)

        for action in rule.actions:
            self._check_action(action, bound, rule, collector, source)

    def _check_expression(self, expression: str, bound: Set[str],
                          line: int, rule: _ScannedRule,
                          collector: DiagnosticCollector,
                          source: Optional[str],
                          conditions_scope: bool = False) -> None:
        try:
            bare, bases = _expression_names(expression)
        except RuleSyntaxError as exc:
            collector.error("ODB304", f"rule {rule.name!r}: {exc}",
                            SourceSpan(line, 1), source)
            return
        # Attribute-access bases must always be bound fact variables.
        for name in sorted(bases - bound):
            collector.error(
                "ODB301",
                f"rule {rule.name!r}: variable {name!r} is not bound "
                f"by an earlier condition", SourceSpan(line, 1), source)
        if not conditions_scope:
            # Actions see only the bindings — bare names cannot be fact
            # attributes there, so every one must be a bound variable.
            for name in sorted(bare - bound):
                collector.error(
                    "ODB301",
                    f"rule {rule.name!r}: name {name!r} in action is "
                    f"not a bound variable", SourceSpan(line, 1), source)

    def _check_action(self, action: _Action, bound: Set[str],
                      rule: _ScannedRule,
                      collector: DiagnosticCollector,
                      source: Optional[str]) -> None:
        def check_kwargs(kwargs_text: str, context: str) -> None:
            for part in _split_kwargs(kwargs_text):
                if "=" not in part:
                    collector.error(
                        "ODB304",
                        f"rule {rule.name!r}: {context} expected "
                        f"name=expression, got {part!r}",
                        SourceSpan(action.line, 1), source)
                    continue
                name, expression = part.split("=", 1)
                if not name.strip().isidentifier():
                    collector.error(
                        "ODB304",
                        f"rule {rule.name!r}: bad attribute name "
                        f"{name.strip()!r}",
                        SourceSpan(action.line, 1), source)
                    continue
                self._check_expression(
                    expression.strip(), bound, action.line, rule,
                    collector, source)

        if action.verb == "log":
            self._check_expression(action.args, bound, action.line,
                                   rule, collector, source)
        elif action.verb == "retract":
            if not action.args.isidentifier():
                collector.error(
                    "ODB304",
                    f"rule {rule.name!r}: retract takes a bound "
                    f"variable, got {action.args!r}",
                    SourceSpan(action.line, 1), source)
            elif action.args not in bound:
                collector.error(
                    "ODB301",
                    f"rule {rule.name!r}: retract({action.args}) "
                    f"names an unbound variable",
                    SourceSpan(action.line, 1), source)
        elif action.verb == "modify":
            parts = _split_kwargs(action.args)
            if len(parts) < 2 or not parts[0].isidentifier():
                collector.error(
                    "ODB304",
                    f"rule {rule.name!r}: modify needs a variable "
                    f"and changes", SourceSpan(action.line, 1), source)
                return
            if parts[0] not in bound:
                collector.error(
                    "ODB301",
                    f"rule {rule.name!r}: modify({parts[0]}, ...) "
                    f"names an unbound variable",
                    SourceSpan(action.line, 1), source)
            check_kwargs(", ".join(parts[1:]), "modify")
        elif action.verb == "insert":
            inner = _INSERT_ARG.match(action.args)
            if inner is None:
                collector.error(
                    "ODB304",
                    f"rule {rule.name!r}: insert takes "
                    f"Type(attr=expr, ...)",
                    SourceSpan(action.line, 1), source)
                return
            if inner.group("kwargs").strip():
                check_kwargs(inner.group("kwargs"), "insert")


def lint_rules(text: str,
               collector: Optional[DiagnosticCollector] = None,
               source: Optional[str] = None) -> DiagnosticCollector:
    """Lint rule-DSL source text (convenience wrapper)."""
    return RuleLinter().lint(text, collector, source)
