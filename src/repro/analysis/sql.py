"""Schema-aware SQL semantic analysis (ODB1xx diagnostics).

The analyzer walks the parsed AST from :mod:`repro.engine.parser`
against a :class:`~repro.engine.schema.Catalog` without executing
anything.  It reports unknown tables/columns, ambiguous references,
type-mismatched comparisons and arithmetic, aggregate misuse, INSERT
arity/typing problems and a couple of stylistic warnings (``SELECT *``
in views, constant predicates).

Entry points:

* :class:`SqlAnalyzer` — analyze one statement (text or AST) against a
  fixed catalog plus view definitions;
* :func:`analyze_script` — lint a multi-statement script, applying DDL
  to an evolving copy of the catalog as it goes;
* :func:`split_statements` — the ``;`` splitter used by the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.diagnostics import (
    DiagnosticCollector,
    SourceSpan,
)
from repro.engine.expressions import (
    _SCALAR_FUNCTIONS,
    _expr_text,
    AggregateCall,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    EvalContext,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
    UnaryOp,
    find_aggregates,
)
from repro.engine.parser import (
    AlterTableAddColumn,
    CompoundSelect,
    CreateIndexStatement,
    CreateTableAsStatement,
    CreateTableStatement,
    CreateViewStatement,
    DeleteStatement,
    DropTableStatement,
    DropViewStatement,
    InsertStatement,
    Join,
    SelectStatement,
    TableRef,
    TransactionStatement,
    UpdateStatement,
    line_column,
    parse_sql,
)
from repro.engine.schema import Catalog, Column, TableSchema
from repro.engine.types import SqlType, coerce_value
from repro.errors import EngineError, TypeMismatch

_COMPARISONS = ("=", "!=", "<>", "<", "<=", ">", ">=")
_NUMERIC = {SqlType.INTEGER, SqlType.REAL}
_TEMPORAL = {SqlType.DATE, SqlType.TIMESTAMP}


def _comparable_types(left: SqlType, right: SqlType) -> bool:
    if left == right:
        return True
    if left in _NUMERIC and right in _NUMERIC:
        return True
    if left in _TEMPORAL and right in _TEMPORAL:
        return True
    # ISO text literals coerce into temporals at the storage layer, so
    # TEXT-vs-DATE comparisons are common and tolerated.
    if {left, right} & _TEMPORAL and SqlType.TEXT in (left, right):
        return True
    return False


def _assignable(source: SqlType, target: SqlType) -> bool:
    """Could a value of ``source`` type land in a ``target`` column?"""
    if source == target:
        return True
    if source in _NUMERIC and target in _NUMERIC:
        return True
    if source is SqlType.BOOLEAN and target is SqlType.INTEGER:
        return True
    if source is SqlType.INTEGER and target is SqlType.BOOLEAN:
        return True
    if source is SqlType.TEXT and target in _TEMPORAL:
        return True
    if source in _TEMPORAL and target in _TEMPORAL:
        return True
    return False


def _literal_type(value: Any) -> Optional[SqlType]:
    if value is None:
        return None
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.TEXT
    return None


def _column_nodes(expr: Expression,
                  include_aggregates: bool = True) -> List[ColumnRef]:
    """All ColumnRef nodes under ``expr`` (optionally skipping those
    that only appear inside aggregate arguments)."""
    out: List[ColumnRef] = []

    def walk(node: Expression) -> None:
        if isinstance(node, AggregateCall):
            if include_aggregates and not isinstance(node.argument, Star):
                walk(node.argument)
            return
        if isinstance(node, ColumnRef):
            out.append(node)
            return
        if isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, FunctionCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, CaseExpr):
            for condition, result in node.branches:
                walk(condition)
                walk(result)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, InList):
            walk(node.operand)
            for option in node.options:
                walk(option)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Like):
            walk(node.operand)
            walk(node.pattern)

    walk(expr)
    return out


def _first_position(expr: Expression) -> Optional[int]:
    for ref in _column_nodes(expr):
        if ref.position is not None:
            return ref.position
    return None


class _Relation:
    """A named tuple source: ordered columns with optional types."""

    def __init__(self, name: str,
                 columns: Iterable[Tuple[str, Optional[SqlType]]]):
        self.name = name
        self.columns: List[Tuple[str, Optional[SqlType]]] = [
            (col.lower(), sql_type) for col, sql_type in columns
        ]
        self._types = dict(self.columns)

    def has(self, column: str) -> bool:
        return column.lower() in self._types

    def type_of(self, column: str) -> Optional[SqlType]:
        return self._types.get(column.lower())


class _Scope:
    """The relations visible to a statement, keyed by alias."""

    def __init__(self) -> None:
        self.entries: List[Tuple[str, _Relation]] = []
        #: True when a FROM table failed to resolve — suppresses the
        #: cascade of bogus unknown-column errors that would follow.
        self.incomplete = False

    def add(self, alias: str, relation: _Relation) -> None:
        self.entries.append((alias.lower(), relation))

    def relation(self, alias: str) -> Optional[_Relation]:
        for name, relation in self.entries:
            if name == alias.lower():
                return relation
        return None


class SqlAnalyzer:
    """Semantic analysis of one SQL statement against a catalog."""

    def __init__(self, catalog: Catalog,
                 views: Optional[Dict[str, SelectStatement]] = None):
        self.catalog = catalog
        self.views = {name.lower(): select
                      for name, select in (views or {}).items()}
        self._out: Optional[DiagnosticCollector] = None
        self._sql: Optional[str] = None
        self._base = 0
        self._source: Optional[str] = None
        self._view_stack: List[str] = []

    @classmethod
    def for_database(cls, database: Any) -> "SqlAnalyzer":
        """Analyzer over a live Database's catalog and views."""
        return cls(database.catalog, getattr(database, "views", None))

    # -- public API -----------------------------------------------------------

    def analyze(self, statement: Any,
                collector: Optional[DiagnosticCollector] = None,
                source: Optional[str] = None,
                sql_text: Optional[str] = None,
                base_offset: int = 0) -> DiagnosticCollector:
        """Analyze SQL text or an already-parsed statement.

        ``sql_text``/``base_offset`` let script linters map statement
        offsets back into the enclosing file for accurate spans.
        """
        collector = collector if collector is not None \
            else DiagnosticCollector(source)
        if isinstance(statement, str):
            if sql_text is None:
                sql_text = statement
            try:
                statement = parse_sql(statement)
            except EngineError as exc:
                span = None
                offset = getattr(exc, "offset", None)
                if offset is not None:
                    line, column = line_column(sql_text,
                                               base_offset + offset)
                    span = SourceSpan(line, column, base_offset + offset)
                collector.error("ODB115", str(exc), span, source)
                return collector
        self._out = collector
        self._sql = sql_text
        self._base = base_offset
        self._source = source
        self._dispatch(statement)
        return collector

    def output_columns(
            self, select: Any) -> List[Tuple[str, Optional[SqlType]]]:
        """The (name, type) shape a SELECT produces, inferred silently."""
        if isinstance(select, CompoundSelect):
            select = select.parts[0]
        saved = (self._out, self._sql, self._base)
        self._out = DiagnosticCollector()
        self._sql = None
        self._base = 0
        try:
            scope = self._build_scope(select.from_clause)
            return self._item_columns(select, scope)
        finally:
            self._out, self._sql, self._base = saved

    # -- reporting helpers ----------------------------------------------------

    def _span(self, position: Optional[int]) -> Optional[SourceSpan]:
        if position is None or self._sql is None:
            return None
        offset = self._base + position
        line, column = line_column(self._sql, offset)
        return SourceSpan(line, column, offset)

    def _error(self, code: str, message: str,
               position: Optional[int] = None) -> None:
        self._out.error(code, message, self._span(position),
                        self._source)

    def _warning(self, code: str, message: str,
                 position: Optional[int] = None) -> None:
        self._out.warning(code, message, self._span(position),
                          self._source)

    # -- scope ----------------------------------------------------------------

    def _relation_for(self, name: str) -> Optional[_Relation]:
        if self.catalog.has_table(name):
            schema = self.catalog.table(name)
            return _Relation(schema.name,
                             [(col.name, col.type)
                              for col in schema.columns])
        view = self.views.get(name.lower())
        if view is not None:
            if name.lower() in self._view_stack:
                return _Relation(name, [])
            self._view_stack.append(name.lower())
            try:
                return _Relation(name, self.output_columns(view))
            finally:
                self._view_stack.pop()
        return None

    def _build_scope(self, from_clause: Any) -> _Scope:
        scope = _Scope()
        conditions: List[Expression] = []

        def add(node: Any) -> None:
            if node is None:
                return
            if isinstance(node, TableRef):
                relation = self._relation_for(node.name)
                if relation is None:
                    self._error("ODB101",
                                f"unknown table {node.name!r}",
                                node.position)
                    scope.incomplete = True
                    return
                if scope.relation(node.alias) is not None:
                    self._error("ODB110",
                                f"duplicate table alias {node.alias!r}",
                                node.position)
                    return
                scope.add(node.alias, relation)
            elif isinstance(node, Join):
                add(node.left)
                add(node.right)
                if node.condition is not None:
                    conditions.append(node.condition)

        add(from_clause)
        for condition in conditions:
            for aggregate in find_aggregates(condition):
                self._error(
                    "ODB106",
                    f"aggregate {aggregate.name} is not allowed in a "
                    f"JOIN condition", _first_position(condition))
            self._infer(condition, scope)
        return scope

    def _resolve_column(self, ref: ColumnRef, scope: _Scope,
                        extra: frozenset = frozenset(),
                        silent: bool = False
                        ) -> Tuple[Optional[str], Optional[SqlType]]:
        """Resolve a column reference to (canonical key, type)."""
        lower = ref.name.lower()
        if "." in lower:
            alias, column = lower.split(".", 1)
            relation = scope.relation(alias)
            if relation is None:
                if not scope.incomplete and not silent:
                    self._error(
                        "ODB102",
                        f"unknown table or alias {alias!r} in column "
                        f"reference {ref.name!r}", ref.position)
                return None, None
            if not relation.has(column):
                if not silent:
                    self._error(
                        "ODB102",
                        f"table {relation.name!r} (alias {alias!r}) has "
                        f"no column {column!r}", ref.position)
                return None, None
            return f"{alias}.{column}", relation.type_of(column)
        if lower in extra:
            return None, None  # a select-list alias; always in scope
        matches = [(alias, relation) for alias, relation in scope.entries
                   if relation.has(lower)]
        if not matches:
            if not scope.incomplete and not silent:
                self._error("ODB102", f"unknown column {ref.name!r}",
                            ref.position)
            return None, None
        if len(matches) > 1:
            if not silent:
                tables = ", ".join(sorted(alias for alias, _ in matches))
                self._error(
                    "ODB103",
                    f"column {ref.name!r} is ambiguous "
                    f"(matches {tables})", ref.position)
            return None, None
        alias, relation = matches[0]
        return f"{alias}.{lower}", relation.type_of(lower)

    # -- type inference -------------------------------------------------------

    def _infer(self, expr: Expression, scope: _Scope,
               extra: frozenset = frozenset()) -> Optional[SqlType]:
        """Infer an expression's type, reporting semantic problems.

        ``None`` means *unknown* (parameters, NULL, unresolved refs) —
        unknown types opt out of every compatibility check.
        """
        if isinstance(expr, Literal):
            return _literal_type(expr.value)
        if isinstance(expr, Parameter):
            return None
        if isinstance(expr, ColumnRef):
            _key, sql_type = self._resolve_column(expr, scope, extra)
            return sql_type
        if isinstance(expr, Star):
            return None
        if isinstance(expr, BinaryOp):
            return self._infer_binary(expr, scope, extra)
        if isinstance(expr, UnaryOp):
            operand = self._infer(expr.operand, scope, extra)
            if expr.op == "NOT":
                return SqlType.BOOLEAN
            if operand is not None and operand not in _NUMERIC:
                self._error(
                    "ODB105",
                    f"unary {expr.op!r} requires a numeric operand, "
                    f"got {operand.value}", _first_position(expr))
                return None
            return operand
        if isinstance(expr, IsNull):
            self._infer(expr.operand, scope, extra)
            return SqlType.BOOLEAN
        if isinstance(expr, InList):
            operand = self._infer(expr.operand, scope, extra)
            for option in expr.options:
                candidate = self._infer(option, scope, extra)
                if operand is not None and candidate is not None \
                        and not _comparable_types(operand, candidate):
                    self._error(
                        "ODB104",
                        f"IN list mixes {operand.value} with "
                        f"{candidate.value}", _first_position(expr))
            return SqlType.BOOLEAN
        if isinstance(expr, Between):
            operand = self._infer(expr.operand, scope, extra)
            for bound in (expr.low, expr.high):
                candidate = self._infer(bound, scope, extra)
                if operand is not None and candidate is not None \
                        and not _comparable_types(operand, candidate):
                    self._error(
                        "ODB104",
                        f"BETWEEN compares {operand.value} with "
                        f"{candidate.value}", _first_position(expr))
            return SqlType.BOOLEAN
        if isinstance(expr, Like):
            operand = self._infer(expr.operand, scope, extra)
            pattern = self._infer(expr.pattern, scope, extra)
            for side, sql_type in (("operand", operand),
                                   ("pattern", pattern)):
                if sql_type is not None and sql_type is not SqlType.TEXT:
                    self._error(
                        "ODB104",
                        f"LIKE {side} must be TEXT, got {sql_type.value}",
                        _first_position(expr))
            return SqlType.BOOLEAN
        if isinstance(expr, CaseExpr):
            result_type: Optional[SqlType] = None
            for condition, result in expr.branches:
                self._infer(condition, scope, extra)
                branch = self._infer(result, scope, extra)
                if result_type is None:
                    result_type = branch
            if expr.default is not None:
                branch = self._infer(expr.default, scope, extra)
                if result_type is None:
                    result_type = branch
            return result_type
        if isinstance(expr, FunctionCall):
            return self._infer_function(expr, scope, extra)
        if isinstance(expr, AggregateCall):
            return self._infer_aggregate(expr, scope, extra)
        return None

    def _infer_binary(self, expr: BinaryOp, scope: _Scope,
                      extra: frozenset) -> Optional[SqlType]:
        left = self._infer(expr.left, scope, extra)
        right = self._infer(expr.right, scope, extra)
        position = _first_position(expr)
        if expr.op in ("AND", "OR"):
            return SqlType.BOOLEAN
        if expr.op in _COMPARISONS:
            if left is not None and right is not None \
                    and not _comparable_types(left, right):
                self._error(
                    "ODB104",
                    f"cannot compare {left.value} with {right.value} "
                    f"using {expr.op!r}", position)
            return SqlType.BOOLEAN
        if expr.op == "||":
            for sql_type in (left, right):
                if sql_type is not None and sql_type is not SqlType.TEXT:
                    self._error(
                        "ODB105",
                        f"'||' requires TEXT operands, "
                        f"got {sql_type.value}", position)
            return SqlType.TEXT
        # numeric arithmetic
        for sql_type in (left, right):
            if sql_type is not None and sql_type not in _NUMERIC:
                self._error(
                    "ODB105",
                    f"arithmetic {expr.op!r} requires numeric operands, "
                    f"got {sql_type.value}", position)
                return None
        if expr.op == "/":
            return SqlType.REAL
        if SqlType.REAL in (left, right):
            return SqlType.REAL
        if left is None or right is None:
            return None
        return SqlType.INTEGER

    def _infer_function(self, expr: FunctionCall, scope: _Scope,
                        extra: frozenset) -> Optional[SqlType]:
        name = expr.name.upper()
        arg_types = [self._infer(arg, scope, extra) for arg in expr.args]
        if name not in _SCALAR_FUNCTIONS:
            self._error("ODB109", f"unknown function {expr.name!r}",
                        _first_position(expr))
            return None
        if name in ("UPPER", "LOWER", "TRIM", "SUBSTR"):
            return SqlType.TEXT
        if name in ("LENGTH", "YEAR", "MONTH", "DAY"):
            return SqlType.INTEGER
        if name == "DATE":
            return SqlType.DATE
        if name in ("ABS", "ROUND"):
            return arg_types[0] if arg_types else None
        if name == "COALESCE":
            for sql_type in arg_types:
                if sql_type is not None:
                    return sql_type
            return None
        if name == "NULLIF":
            return arg_types[0] if arg_types else None
        return None

    def _infer_aggregate(self, expr: AggregateCall, scope: _Scope,
                         extra: frozenset) -> Optional[SqlType]:
        if isinstance(expr.argument, Star):
            return SqlType.INTEGER  # COUNT(*)
        argument = self._infer(expr.argument, scope, extra)
        if expr.name == "COUNT":
            return SqlType.INTEGER
        if expr.name in ("SUM", "AVG"):
            if argument is not None and argument not in _NUMERIC:
                self._error(
                    "ODB105",
                    f"{expr.name} requires a numeric argument, "
                    f"got {argument.value}",
                    _first_position(expr))
                return None
            if expr.name == "AVG":
                return SqlType.REAL
            return argument
        return argument  # MIN / MAX preserve the argument type

    # -- statement dispatch ---------------------------------------------------

    def _dispatch(self, statement: Any) -> None:
        if isinstance(statement, SelectStatement):
            self._analyze_select(statement)
        elif isinstance(statement, CompoundSelect):
            self._analyze_compound(statement)
        elif isinstance(statement, InsertStatement):
            self._analyze_insert(statement)
        elif isinstance(statement, UpdateStatement):
            self._analyze_update(statement)
        elif isinstance(statement, DeleteStatement):
            self._analyze_delete(statement)
        elif isinstance(statement, CreateViewStatement):
            self._analyze_create_view(statement)
        elif isinstance(statement, CreateTableAsStatement):
            self._analyze_select(statement.select)
        elif isinstance(statement, CreateTableStatement):
            self._analyze_create_table(statement)
        elif isinstance(statement, CreateIndexStatement):
            self._analyze_create_index(statement)
        elif isinstance(statement, AlterTableAddColumn):
            if not self.catalog.has_table(statement.table):
                self._error("ODB101",
                            f"unknown table {statement.table!r}")
        elif isinstance(statement, (DropTableStatement,
                                    DropViewStatement,
                                    TransactionStatement)):
            pass

    # -- SELECT ---------------------------------------------------------------

    def _analyze_select(self, select: SelectStatement) -> None:
        scope = self._build_scope(select.from_clause)

        aliases: Dict[str, Expression] = {}
        for item in select.items:
            if item.alias and not isinstance(item.expression, Star):
                aliases[item.alias.lower()] = item.expression
        alias_names = frozenset(aliases)

        if select.where is not None:
            for aggregate in find_aggregates(select.where):
                self._error(
                    "ODB106",
                    f"aggregate {aggregate.name} is not allowed in "
                    f"WHERE (use HAVING)",
                    _first_position(select.where))
            self._infer(select.where, scope)
            self._check_constant_predicate(select.where)

        for item in select.items:
            if isinstance(item.expression, Star):
                if item.alias and item.alias.endswith(".*"):
                    qualifier = item.alias[:-2]
                    if scope.relation(qualifier) is None \
                            and not scope.incomplete:
                        self._error(
                            "ODB102",
                            f"unknown table or alias {qualifier!r} "
                            f"in {item.alias!r}")
                elif select.from_clause is None:
                    self._error("ODB102", "'*' requires a FROM clause")
                continue
            self._infer(item.expression, scope)

        grouped_texts: set = set()
        grouped_keys: set = set()
        for expr in select.group_by:
            for aggregate in find_aggregates(expr):
                self._error(
                    "ODB106",
                    f"aggregate {aggregate.name} is not allowed in "
                    f"GROUP BY", _first_position(expr))
            grouped_texts.add(_expr_text(expr))
            if isinstance(expr, ColumnRef):
                lower = expr.name.lower()
                if "." not in lower and lower in aliases:
                    # GROUP BY a select alias groups its expression.
                    grouped_texts.add(_expr_text(aliases[lower]))
                    continue
                key, _ = self._resolve_column(expr, scope)
                if key is not None:
                    grouped_keys.add(key)
            else:
                self._infer(expr, scope)

        has_aggregate = any(
            find_aggregates(item.expression)
            for item in select.items
            if not isinstance(item.expression, Star))
        if select.having is not None:
            has_aggregate = has_aggregate \
                or bool(find_aggregates(select.having))

        if select.group_by or has_aggregate:
            for item in select.items:
                expr = item.expression
                if isinstance(expr, Star):
                    if scope.entries:
                        self._error(
                            "ODB107",
                            "'*' cannot be selected in an "
                            "aggregate/grouped query")
                    continue
                self._check_grouped(expr, scope, grouped_texts,
                                    grouped_keys, "the select list")

        if select.having is not None:
            self._infer(select.having, scope, alias_names)
            if select.group_by or has_aggregate:
                self._check_grouped(select.having, scope, grouped_texts,
                                    grouped_keys, "HAVING",
                                    skip=alias_names)

        for expr, _ascending in select.order_by:
            self._infer(expr, scope, alias_names)
        if select.limit is not None:
            self._infer(select.limit, scope)
        if select.offset is not None:
            self._infer(select.offset, scope)

    def _check_grouped(self, expr: Expression, scope: _Scope,
                       grouped_texts: set, grouped_keys: set,
                       where: str, skip: frozenset = frozenset()) -> None:
        if _expr_text(expr) in grouped_texts:
            return
        for ref in _column_nodes(expr, include_aggregates=False):
            if ref.name.lower() in skip:
                continue
            if _expr_text(ref) in grouped_texts:
                continue
            key, _ = self._resolve_column(ref, scope, silent=True)
            if key is not None and key not in grouped_keys:
                self._error(
                    "ODB107",
                    f"column {ref.name!r} in {where} must appear in "
                    f"GROUP BY or inside an aggregate", ref.position)

    def _check_constant_predicate(self, where: Expression) -> None:
        if isinstance(where, Literal):
            if where.value in (True, False):
                verdict = "true" if where.value else "false"
                self._warning("ODB112",
                              f"WHERE clause is always {verdict}")
            return

        def walk(node: Expression) -> None:
            if isinstance(node, BinaryOp):
                if node.op in ("AND", "OR"):
                    walk(node.left)
                    walk(node.right)
                    return
                if node.op in _COMPARISONS \
                        and isinstance(node.left, Literal) \
                        and isinstance(node.right, Literal):
                    try:
                        result = node.evaluate(EvalContext({}, ()))
                    except EngineError:
                        return
                    verdict = "true" if result is True else "false"
                    self._warning(
                        "ODB112",
                        f"predicate compares two constants "
                        f"(always {verdict})")
            elif isinstance(node, UnaryOp) and node.op == "NOT":
                walk(node.operand)

        walk(where)

    def _analyze_compound(self, compound: CompoundSelect) -> None:
        counts = []
        for part in compound.parts:
            self._analyze_select(part)
            counts.append(len(self.output_columns(part)))
        if 0 not in counts and len(set(counts)) > 1:
            self._error(
                "ODB114",
                f"UNION parts select different column counts: "
                f"{', '.join(str(count) for count in counts)}")

    def _item_columns(
            self, select: SelectStatement,
            scope: _Scope) -> List[Tuple[str, Optional[SqlType]]]:
        columns: List[Tuple[str, Optional[SqlType]]] = []
        for item in select.items:
            if isinstance(item.expression, Star):
                if item.alias and item.alias.endswith(".*"):
                    relation = scope.relation(item.alias[:-2])
                    if relation is not None:
                        columns.extend(relation.columns)
                else:
                    for _alias, relation in scope.entries:
                        columns.extend(relation.columns)
                continue
            if item.alias:
                name = item.alias
            elif isinstance(item.expression, ColumnRef):
                name = item.expression.name.split(".")[-1]
            else:
                name = _expr_text(item.expression)
            columns.append(
                (name.lower(), self._infer(item.expression, scope)))
        return columns

    # -- DML ------------------------------------------------------------------

    def _check_target_table(self, table: str, verb: str,
                            position: Optional[int]) \
            -> Optional[TableSchema]:
        if self.catalog.has_table(table):
            return self.catalog.table(table)
        if table.lower() in self.views:
            self._error("ODB101",
                        f"cannot {verb} view {table!r}", position)
        else:
            self._error("ODB101", f"unknown table {table!r}", position)
        return None

    def _check_value(self, expr: Expression,
                     inferred: Optional[SqlType], column: Column,
                     fallback_position: Optional[int]) -> None:
        position = _first_position(expr)
        if position is None:
            position = fallback_position
        if isinstance(expr, Literal):
            if expr.value is None:
                if not column.nullable:
                    self._error(
                        "ODB113",
                        f"NULL value for NOT NULL column "
                        f"{column.name!r}", position)
                return
            try:
                coerce_value(expr.value, column.type)
            except TypeMismatch as exc:
                self._error("ODB113",
                            f"column {column.name!r}: {exc}", position)
            return
        if inferred is None:
            return
        if not _assignable(inferred, column.type):
            self._error(
                "ODB113",
                f"{inferred.value} value does not fit "
                f"{column.type.value} column {column.name!r}", position)

    def _analyze_insert(self, statement: InsertStatement) -> None:
        schema = self._check_target_table(statement.table, "INSERT into",
                                          statement.position)
        if schema is None:
            return
        targets: List[Optional[Column]] = []
        if statement.columns:
            for name in statement.columns:
                if schema.has_column(name):
                    targets.append(schema.column(name))
                else:
                    self._error(
                        "ODB102",
                        f"table {statement.table!r} has no column "
                        f"{name!r}", statement.position)
                    targets.append(None)
            provided = {name.lower() for name in statement.columns}
            for column in schema.columns:
                if column.name.lower() not in provided \
                        and not column.nullable \
                        and column.default is None:
                    self._error(
                        "ODB113",
                        f"NOT NULL column {column.name!r} has no value "
                        f"and no default", statement.position)
        else:
            targets = list(schema.columns)
        empty_scope = _Scope()
        for row in statement.rows:
            if len(row) != len(targets):
                self._error(
                    "ODB108",
                    f"INSERT into {statement.table!r} supplies "
                    f"{len(row)} values for {len(targets)} columns",
                    statement.position)
                continue
            for column, expr in zip(targets, row):
                inferred = self._infer(expr, empty_scope)
                if column is not None:
                    self._check_value(expr, inferred, column,
                                      statement.position)

    def _single_table_scope(self, schema: TableSchema) -> _Scope:
        scope = _Scope()
        scope.add(schema.name,
                  _Relation(schema.name,
                            [(col.name, col.type)
                             for col in schema.columns]))
        return scope

    def _analyze_update(self, statement: UpdateStatement) -> None:
        schema = self._check_target_table(statement.table, "UPDATE",
                                          statement.position)
        if schema is None:
            return
        scope = self._single_table_scope(schema)
        for name, expr in statement.assignments:
            for aggregate in find_aggregates(expr):
                self._error(
                    "ODB106",
                    f"aggregate {aggregate.name} is not allowed in an "
                    f"UPDATE assignment", statement.position)
            inferred = self._infer(expr, scope)
            if not schema.has_column(name):
                self._error(
                    "ODB102",
                    f"table {statement.table!r} has no column {name!r}",
                    statement.position)
                continue
            self._check_value(expr, inferred, schema.column(name),
                              statement.position)
        if statement.where is not None:
            for aggregate in find_aggregates(statement.where):
                self._error(
                    "ODB106",
                    f"aggregate {aggregate.name} is not allowed in "
                    f"WHERE", statement.position)
            self._infer(statement.where, scope)
            self._check_constant_predicate(statement.where)

    def _analyze_delete(self, statement: DeleteStatement) -> None:
        schema = self._check_target_table(statement.table, "DELETE from",
                                          statement.position)
        if schema is None:
            return
        if statement.where is not None:
            scope = self._single_table_scope(schema)
            for aggregate in find_aggregates(statement.where):
                self._error(
                    "ODB106",
                    f"aggregate {aggregate.name} is not allowed in "
                    f"WHERE", statement.position)
            self._infer(statement.where, scope)
            self._check_constant_predicate(statement.where)

    # -- DDL ------------------------------------------------------------------

    def _analyze_create_table(self,
                              statement: CreateTableStatement) -> None:
        try:
            TableSchema(statement.name, statement.columns)
        except EngineError as exc:
            self._error("ODB115", str(exc))

    def _analyze_create_view(self,
                             statement: CreateViewStatement) -> None:
        self._analyze_select(statement.select)
        for item in statement.select.items:
            if isinstance(item.expression, Star):
                self._warning(
                    "ODB111",
                    f"view {statement.name!r} uses SELECT *; its shape "
                    f"silently changes when base tables change")
                break

    def _analyze_create_index(self,
                              statement: CreateIndexStatement) -> None:
        if not self.catalog.has_table(statement.table):
            self._error("ODB101",
                        f"unknown table {statement.table!r}")
            return
        schema = self.catalog.table(statement.table)
        for name in statement.columns:
            if not schema.has_column(name):
                self._error(
                    "ODB102",
                    f"table {statement.table!r} has no column {name!r}")


# --- multi-statement scripts -------------------------------------------------

def split_statements(sql: str) -> List[Tuple[str, int]]:
    """Split a script on ``;`` into (statement text, start offset).

    String literals (with ``''`` escapes) and ``--`` comments are
    respected; whitespace-only fragments are dropped.
    """
    pieces: List[Tuple[str, int]] = []
    start = 0
    index = 0
    length = len(sql)
    in_string = False
    in_comment = False
    while index < length:
        char = sql[index]
        if in_comment:
            if char == "\n":
                in_comment = False
        elif in_string:
            if char == "'":
                if index + 1 < length and sql[index + 1] == "'":
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
        elif char == "-" and sql[index:index + 2] == "--":
            in_comment = True
        elif char == ";":
            pieces.append((sql[start:index], start))
            start = index + 1
        index += 1
    pieces.append((sql[start:], start))
    statements = []
    for text, offset in pieces:
        # Drop leading whitespace and comment lines (bumping the
        # offset equally) so spans point at the statement itself.
        lead = 0
        while lead < len(text):
            if text[lead].isspace():
                lead += 1
            elif text[lead:lead + 2] == "--":
                newline = text.find("\n", lead)
                if newline < 0:
                    lead = len(text)
                else:
                    lead = newline + 1
            else:
                break
        trimmed = text[lead:].rstrip()
        if not trimmed:
            continue
        statements.append((trimmed, offset + lead))
    return statements


def _copy_catalog(catalog: Optional[Catalog]) -> Catalog:
    copy = Catalog()
    if catalog is not None:
        for schema in catalog:
            copy.add_table(schema)
    return copy


def apply_ddl(statement: Any, catalog: Catalog,
              views: Dict[str, SelectStatement],
              analyzer: Optional[SqlAnalyzer] = None) -> None:
    """Fold one DDL statement into an evolving (catalog, views) pair.

    Shared :class:`TableSchema` objects from the source catalog are
    never mutated: ALTER builds a widened copy.
    """
    if isinstance(statement, CreateTableStatement):
        if catalog.has_table(statement.name):
            if not statement.if_not_exists:
                raise TypeMismatch(
                    f"table {statement.name!r} already exists")
            return
        catalog.add_table(TableSchema(statement.name, statement.columns))
    elif isinstance(statement, CreateTableAsStatement):
        if catalog.has_table(statement.name):
            return
        analyzer = analyzer or SqlAnalyzer(catalog, views)
        columns = [
            Column(name=name, type=sql_type or SqlType.TEXT)
            for name, sql_type in analyzer.output_columns(statement.select)
        ]
        if columns:
            catalog.add_table(TableSchema(statement.name, columns))
    elif isinstance(statement, CreateViewStatement):
        views[statement.name.lower()] = statement.select
    elif isinstance(statement, DropTableStatement):
        if catalog.has_table(statement.name):
            catalog.drop_table(statement.name)
    elif isinstance(statement, DropViewStatement):
        views.pop(statement.name.lower(), None)
    elif isinstance(statement, AlterTableAddColumn):
        if catalog.has_table(statement.table):
            schema = catalog.table(statement.table)
            widened = TableSchema(
                schema.name, list(schema.columns) + [statement.column])
            catalog.drop_table(schema.name)
            catalog.add_table(widened)


def analyze_script(sql: str, catalog: Optional[Catalog] = None,
                   collector: Optional[DiagnosticCollector] = None,
                   source: Optional[str] = None,
                   views: Optional[Dict[str, SelectStatement]] = None
                   ) -> DiagnosticCollector:
    """Lint a multi-statement SQL script.

    DDL statements are applied to a *copy* of ``catalog`` as analysis
    proceeds, so later statements see tables the script itself creates.
    """
    collector = collector if collector is not None \
        else DiagnosticCollector(source)
    working = _copy_catalog(catalog)
    working_views = dict(views or {})
    for text, offset in split_statements(sql):
        analyzer = SqlAnalyzer(working, working_views)
        try:
            statement = parse_sql(text)
        except EngineError as exc:
            span = None
            local = getattr(exc, "offset", None)
            if local is not None:
                line, column = line_column(sql, offset + local)
                span = SourceSpan(line, column, offset + local)
            collector.error("ODB115", str(exc), span, source)
            continue
        analyzer.analyze(statement, collector, source=source,
                         sql_text=sql, base_offset=offset)
        try:
            apply_ddl(statement, working, working_views, analyzer)
        except EngineError as exc:
            collector.error("ODB115", str(exc), None, source)
    return collector


def catalog_from_script(sql: str) -> Tuple[Catalog,
                                           Dict[str, SelectStatement]]:
    """Build (catalog, views) from just the DDL in a script, ignoring
    anything that fails to parse."""
    catalog = Catalog()
    views: Dict[str, SelectStatement] = {}
    for text, _offset in split_statements(sql):
        try:
            statement = parse_sql(text)
        except EngineError:
            continue
        try:
            apply_ddl(statement, catalog, views)
        except EngineError:
            continue
    return catalog, views
